"""Always-on flight recorder: bounded rings, self-contained postmortems.

The VDBMS bug studies are blunt about it: most production failures are
only diagnosable from evidence *recorded at the time*, not from attempts
to reproduce them later.  The :class:`FlightRecorder` is that evidence
channel -- a set of bounded, allocation-cheap ring buffers that are safe
to leave on in any deployment:

* **spans** -- every finished span, mirrored straight off the tracer's
  ``on_finish`` hook (the ring holds the same :class:`Span` objects; no
  dict conversion happens until a dump);
* **events** -- stage events, SLO burn alerts, and free-form notes
  (worker deaths, batch failures, replan decisions);
* **metric snapshots** -- periodic flat snapshots of the metrics
  registry, rate-limited by ``snapshot_interval_s``.

On a *trip* -- a worker death, a circuit-breaker open, an item exhausting
its retries, or an explicit :meth:`dump` -- the recorder writes a
self-contained postmortem bundle: a directory holding ``spans.jsonl``
(finished ring spans plus every span still open at dump time, marked
``"open": true``), ``events.jsonl``, ``metrics.json``, ``slo.json``, and
a ``manifest.json`` describing why the bundle exists.  Open spans matter:
the failed work item's span is usually still in flight when the failure
fires, and including it is what makes the bundle's span tree connect.

Two ways to wire it:

* ``Observability(recorder=FlightRecorder(...))`` -- full tracing plus
  recording (the tracer's finish hook feeds the span ring);
* :class:`RecorderObservability` -- the "always-on" budget mode: spans
  are created and recorded, but the metrics registry and stage-listener
  machinery are bypassed (instruments are shared no-ops), keeping the
  overhead near the disabled path (gated at <=3% wall by
  ``benchmarks/bench_obs.py``).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.obs.export import read_spans_jsonl
from repro.obs.metrics import StageEvent

__all__ = [
    "FlightRecorder",
    "PostmortemBundle",
    "load_postmortem",
]

#: Bundle schema version written to every manifest.
BUNDLE_SCHEMA_VERSION = 1


class FlightRecorder:
    """Bounded rings of recent spans/events/metric snapshots + dumps.

    Parameters
    ----------
    span_capacity / event_capacity / snapshot_capacity:
        Ring sizes.  Appends are O(1) deque operations; overflow silently
        drops the oldest entry (a flight recorder keeps the *recent* past).
    root:
        Directory postmortem bundles are dumped under.  When None,
        :meth:`trip` only records the trip event and :meth:`dump` requires
        an explicit path.
    snapshot_interval_s:
        Minimum seconds between automatic metric snapshots (taken on event
        traffic when a registry is attached).
    """

    def __init__(self, span_capacity: int = 8192,
                 event_capacity: int = 4096,
                 snapshot_capacity: int = 64,
                 root: str | Path | None = None,
                 snapshot_interval_s: float = 1.0) -> None:
        if min(span_capacity, event_capacity, snapshot_capacity) <= 0:
            raise ReproError("flight recorder capacities must be positive")
        self._spans: deque = deque(maxlen=span_capacity)
        self._events: deque = deque(maxlen=event_capacity)
        self._snapshots: deque = deque(maxlen=snapshot_capacity)
        self._root = Path(root) if root is not None else None
        self._snapshot_interval_s = snapshot_interval_s
        self._last_snapshot = 0.0
        self._dump_ids = itertools.count(1)
        self._dump_lock = threading.Lock()
        self._tracer = None
        self._metrics = None
        self._slo = None
        self._trips = 0
        self._dumps: list[Path] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer) -> None:
        """Let dumps capture the tracer's still-open spans."""
        self._tracer = tracer

    def attach_metrics(self, registry) -> None:
        """Snapshot ``registry`` periodically and at dump time."""
        self._metrics = registry

    def attach_slo(self, engine) -> None:
        """Include ``engine.state()`` (an SLO engine) in every bundle."""
        self._slo = engine

    @property
    def root(self) -> Path | None:
        """The auto-dump directory, if configured."""
        return self._root

    @property
    def trips(self) -> int:
        """Failure trips recorded so far."""
        return self._trips

    @property
    def dumps(self) -> list[Path]:
        """Paths of every bundle written by this recorder."""
        return list(self._dumps)

    def ring_spans(self) -> list:
        """Snapshot of the span ring (oldest first)."""
        return list(self._spans)

    def ring_events(self) -> list:
        """Snapshot of the event ring as ``(time, event)`` pairs."""
        return list(self._events)

    # ------------------------------------------------------------------
    # Hot-path recording (deque appends; no locks, no dict churn)
    # ------------------------------------------------------------------
    def record_span(self, span) -> None:
        """Mirror one finished span (a Span object or dict) into the ring."""
        self._spans.append(span)

    def record_event(self, event: StageEvent) -> None:
        """Append one stage event; may take a rate-limited metric snapshot."""
        now = time.time()
        self._events.append((now, event))
        if (self._metrics is not None
                and now - self._last_snapshot >= self._snapshot_interval_s):
            self._last_snapshot = now
            self._snapshots.append(
                {"time": now, "metrics": self._metrics.snapshot()}
            )

    def note(self, kind: str, /, **fields) -> None:
        """Append one free-form diagnostic event (failure, decision, ...).

        ``kind`` is positional-only and always wins the ``kind`` slot of
        the ring record, so postmortem filters can trust it even when a
        caller's fields happen to include a ``kind`` key.
        """
        self._events.append((time.time(), {**fields, "kind": kind}))

    # ------------------------------------------------------------------
    # Trips and dumps
    # ------------------------------------------------------------------
    def trip(self, reason: str, **context) -> Path | None:
        """Record a failure trip; auto-dump a bundle when ``root`` is set."""
        self._trips += 1
        self.note("trip", reason=reason, **context)
        if self._root is None:
            return None
        return self.dump(reason=reason, **context)

    def dump(self, path: str | Path | None = None, reason: str = "manual",
             **context) -> Path:
        """Write a self-contained postmortem bundle; returns its directory.

        The bundle is a directory: ``spans.jsonl`` (ring spans + open
        spans), ``events.jsonl``, ``metrics.json``, ``slo.json``,
        ``manifest.json``.  Ring contents are snapshotted under a lock so
        concurrent trips produce internally consistent bundles.
        """
        with self._dump_lock:
            if path is None:
                if self._root is None:
                    raise ReproError(
                        "no dump path: pass path= or construct the recorder "
                        "with root="
                    )
                path = self._root / f"postmortem-{next(self._dump_ids):04d}"
            target = Path(path)
            target.mkdir(parents=True, exist_ok=True)
            spans = list(self._spans)
            events = list(self._events)
            snapshots = list(self._snapshots)
        records = [span if isinstance(span, dict) else span.to_dict()
                   for span in spans]
        open_count = 0
        if self._tracer is not None:
            ids = {record["span_id"] for record in records}
            now = time.perf_counter()
            for span in self._tracer.open_spans():
                if span.span_id in ids:
                    continue
                record = span.to_dict()
                record["open"] = True
                # An open span has no duration yet; report elapsed-so-far
                # so the postmortem shows how long it had been in flight.
                record["duration_s"] = max(0.0, now - span.start_s)
                records.append(record)
                open_count += 1
        with open(target / "spans.jsonl", "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        with open(target / "events.jsonl", "w", encoding="utf-8") as handle:
            for when, event in events:
                if isinstance(event, StageEvent):
                    payload = {"kind": "stage", "stage": event.stage,
                               "subject": event.subject,
                               "images": event.images,
                               "seconds": event.seconds,
                               "source": event.source}
                else:
                    payload = dict(event)
                payload["time"] = when
                handle.write(json.dumps(payload, sort_keys=True) + "\n")
        metrics_payload = {
            "snapshots": snapshots,
            "current": (self._metrics.snapshot()
                        if self._metrics is not None else {}),
        }
        (target / "metrics.json").write_text(
            json.dumps(metrics_payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        slo_payload = self._slo.state() if self._slo is not None else {}
        (target / "slo.json").write_text(
            json.dumps(slo_payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        manifest = {
            "schema_version": BUNDLE_SCHEMA_VERSION,
            "reason": reason,
            "context": {key: value for key, value in context.items()
                        if _json_safe(value)},
            "time": time.time(),
            "spans": len(records),
            "open_spans": open_count,
            "events": len(events),
            "metric_snapshots": len(snapshots),
            "trips": self._trips,
        }
        (target / "manifest.json").write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        self._dumps.append(target)
        return target


def _json_safe(value) -> bool:
    try:
        json.dumps(value)
    except (TypeError, ValueError):
        return False
    return True


@dataclass(frozen=True)
class PostmortemBundle:
    """One loaded postmortem bundle (see :func:`load_postmortem`)."""

    path: Path
    manifest: dict
    spans: list[dict]
    events: list[dict]
    metrics: dict
    slo: dict = field(default_factory=dict)

    @property
    def reason(self) -> str:
        """Why the bundle was dumped."""
        return self.manifest.get("reason", "unknown")

    def trace_ids(self) -> list[int]:
        """Distinct trace ids present, largest span count first."""
        counts: dict[int, int] = {}
        for span in self.spans:
            counts[span["trace_id"]] = counts.get(span["trace_id"], 0) + 1
        return sorted(counts, key=lambda tid: (-counts[tid], tid))

    def trace_spans(self, trace_id: int | None = None) -> list[dict]:
        """Spans of one trace (default: the failure trace, else biggest).

        The failure trace is the ``trace_id`` recorded in the manifest's
        trip context when present.
        """
        if trace_id is None:
            trace_id = self.manifest.get("context", {}).get("trace_id")
        if trace_id is None:
            ids = self.trace_ids()
            if not ids:
                return []
            trace_id = ids[0]
        return [span for span in self.spans
                if span["trace_id"] == trace_id]

    def error_spans(self) -> list[dict]:
        """Spans carrying an ``error`` attribute (the blamed operations)."""
        return [span for span in self.spans
                if span.get("attrs", {}).get("error")]


def load_postmortem(path: str | Path) -> PostmortemBundle:
    """Load a bundle directory written by :meth:`FlightRecorder.dump`."""
    target = Path(path)
    manifest_path = target / "manifest.json"
    if not manifest_path.exists():
        raise ReproError(f"no postmortem bundle at {target}: "
                         "manifest.json missing")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ReproError(f"{manifest_path}: corrupt manifest: {exc}") from exc
    spans = read_spans_jsonl(str(target / "spans.jsonl"))
    events: list[dict] = []
    events_path = target / "events.jsonl"
    if events_path.exists():
        with open(events_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
    metrics: dict = {}
    metrics_path = target / "metrics.json"
    if metrics_path.exists():
        metrics = json.loads(metrics_path.read_text(encoding="utf-8"))
    slo: dict = {}
    slo_path = target / "slo.json"
    if slo_path.exists():
        slo = json.loads(slo_path.read_text(encoding="utf-8"))
    return PostmortemBundle(path=target, manifest=manifest, spans=spans,
                            events=events, metrics=metrics, slo=slo)
