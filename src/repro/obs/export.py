"""Exporters: JSONL span logs, Chrome ``trace_event`` JSON, Prometheus text.

All exporters consume plain span dicts (the :meth:`Span.to_dict` schema),
so a file written by one process can be re-exported or summarized by
another without the original :class:`~repro.obs.trace.Span` objects.

* :func:`write_spans_jsonl` / :func:`read_spans_jsonl` -- one JSON object
  per line; the durable, greppable format.
* :func:`chrome_trace` -- the Chrome ``trace_event`` "X" (complete-event)
  format; load the file at ``chrome://tracing`` or in Perfetto to get a
  flamegraph of a traced run.  Trace ids map to Chrome "process" lanes.
* :func:`prometheus_text` -- the text exposition format for a
  :class:`~repro.obs.metrics.MetricsRegistry`.
* :func:`validate_span_tree` -- the structural check behind the
  acceptance gate: every span's parent resolves, and the whole export is
  a single connected tree.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import ReproError
from repro.obs.metrics import Histogram, MetricsRegistry, percentile

__all__ = [
    "write_spans_jsonl",
    "read_spans_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "SpanTree",
    "validate_span_tree",
    "summarize_spans",
]


def write_spans_jsonl(spans, path: str) -> int:
    """Write spans (Span objects or dicts) as JSONL; returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for span in spans:
            record = span if isinstance(span, dict) else span.to_dict()
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
    return count


def read_spans_jsonl(path: str) -> list[dict]:
    """Read a JSONL span log back into a list of span dicts."""
    spans: list[dict] = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise ReproError(f"cannot read span log {path}: {exc}") from exc
    with handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"{path}:{line_number}: not a JSON span line: {exc}"
                ) from exc
            if "span_id" not in record or "name" not in record:
                raise ReproError(
                    f"{path}:{line_number}: missing span_id/name fields"
                )
            spans.append(record)
    return spans


def _as_dicts(spans) -> list[dict]:
    return [span if isinstance(span, dict) else span.to_dict()
            for span in spans]


def chrome_trace(spans) -> dict:
    """Convert spans to a Chrome ``trace_event`` JSON document.

    Each span becomes a complete ("X") event with microsecond timestamps;
    the trace id becomes the ``pid`` lane so concurrent traces stack into
    separate tracks in the viewer.
    """
    events = []
    for span in _as_dicts(spans):
        args = dict(span.get("attrs", {}))
        if span.get("parent_id") is not None:
            args["parent_id"] = span["parent_id"]
        args["span_id"] = span["span_id"]
        events.append({
            "name": span["name"],
            "ph": "X",
            "ts": span["start_s"] * 1e6,
            "dur": span["duration_s"] * 1e6,
            "pid": span["trace_id"],
            "tid": 1,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans, path: str) -> int:
    """Write the Chrome trace_event JSON file; returns the event count."""
    document = chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)
    return len(document["traceEvents"])


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for instrument in registry.instruments():
        name = instrument.name
        if name not in seen_types:
            lines.append(f"# TYPE {name} {instrument.kind}")
            seen_types.add(name)
        labels = _format_labels(dict(instrument.labels))
        if isinstance(instrument, Histogram):
            cumulative = 0
            counts = instrument.bucket_counts()
            for bound, bucket_count in zip(instrument.bounds, counts):
                cumulative += bucket_count
                bucket_labels = _format_labels(
                    dict(instrument.labels), le=repr(bound))
                lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
            bucket_labels = _format_labels(dict(instrument.labels), le="+Inf")
            lines.append(f"{name}_bucket{bucket_labels} {instrument.count}")
            lines.append(f"{name}_sum{labels} {instrument.sum}")
            lines.append(f"{name}_count{labels} {instrument.count}")
        else:
            lines.append(f"{name}{labels} {instrument.value}")
    return "\n".join(lines) + ("\n" if lines else "")


def _escape_label_value(value: str) -> str:
    # Prometheus text exposition: backslash, double-quote, and line feed
    # must be escaped inside quoted label values (escape backslash first,
    # or the other escapes' backslashes get doubled).
    return (str(value).replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_labels(labels: dict[str, str], **extra: str) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    inner = ",".join(f'{key}="{_escape_label_value(value)}"'
                     for key, value in sorted(merged.items()))
    return "{" + inner + "}"


@dataclass(frozen=True)
class SpanTree:
    """Structural summary of a span export.

    ``connected`` means: one trace id, exactly one root, every non-root
    parent id resolves to another span in the export.  ``problems`` lists
    every violated condition in human-readable form.
    """

    spans: int
    traces: int
    roots: tuple[int, ...]
    orphans: tuple[int, ...]
    names: frozenset[str]
    duplicates: tuple[int, ...] = ()

    @property
    def connected(self) -> bool:
        """True if the export forms a single connected span tree."""
        return (self.spans > 0 and self.traces == 1
                and len(self.roots) == 1 and not self.orphans
                and not self.duplicates)

    @property
    def problems(self) -> list[str]:
        """Human-readable list of violated single-tree conditions."""
        issues = []
        if self.spans == 0:
            issues.append("no spans")
        if self.traces > 1:
            issues.append(f"{self.traces} distinct trace ids")
        if len(self.roots) > 1:
            issues.append(f"{len(self.roots)} roots: {list(self.roots)}")
        if self.spans and not self.roots:
            issues.append("no root span")
        if self.orphans:
            issues.append(
                f"{len(self.orphans)} orphan spans (unresolvable parents): "
                f"{list(self.orphans)[:8]}"
            )
        if self.duplicates:
            issues.append(
                f"{len(self.duplicates)} duplicate span ids: "
                f"{list(self.duplicates)[:8]}"
            )
        return issues

    def covers(self, *prefixes: str) -> bool:
        """True if at least one span name starts with each prefix."""
        return all(any(name.startswith(prefix) for name in self.names)
                   for prefix in prefixes)


def validate_span_tree(spans) -> SpanTree:
    """Check that a span export forms a single connected tree."""
    records = _as_dicts(spans)
    ids = {span["span_id"] for span in records}
    roots = []
    orphans = []
    traces = set()
    seen: set[int] = set()
    duplicates = []
    for span in records:
        traces.add(span["trace_id"])
        span_id = span["span_id"]
        if span_id in seen:
            duplicates.append(span_id)
        seen.add(span_id)
        parent = span.get("parent_id")
        if parent is None:
            roots.append(span_id)
        elif parent not in ids:
            orphans.append(span_id)
    return SpanTree(
        spans=len(records),
        traces=len(traces),
        roots=tuple(roots),
        orphans=tuple(orphans),
        names=frozenset(span["name"] for span in records),
        duplicates=tuple(duplicates),
    )


def summarize_spans(spans) -> list[dict]:
    """Per-name duration summary rows (count, total/mean/p50/p95 ms).

    Percentiles use the canonical exact :func:`~repro.obs.metrics.percentile`
    -- the same implementation behind serving latency summaries.
    """
    by_name: dict[str, list[float]] = {}
    for span in _as_dicts(spans):
        by_name.setdefault(span["name"], []).append(
            span["duration_s"] * 1000.0)
    rows = []
    for name in sorted(by_name):
        ordered = sorted(by_name[name])
        rows.append({
            "name": name,
            "count": len(ordered),
            "total_ms": sum(ordered),
            "mean_ms": sum(ordered) / len(ordered),
            "p50_ms": percentile(ordered, 50.0),
            "p95_ms": percentile(ordered, 95.0),
            "max_ms": ordered[-1],
        })
    return rows
