"""Smol-Scope: end-to-end tracing, unified metrics, profiling export.

One :class:`Observability` object per deployment is threaded through the
stack (``SmolServer(obs=...)``, ``QueryEngine(obs=...)``,
``Dispatcher(obs=...)``, ``RenditionStore(obs=...)``,
``AdaptiveController(obs=...)``).  It bundles:

* a :class:`~repro.obs.trace.Tracer` (spans with trace/span/parent ids,
  ambient thread-local context, picklable ``(trace_id, span_id)`` contexts
  that ride requests and work items across thread and process hops);
* a :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
  fixed-bucket histograms);
* a **stage-event bus**: instrumented components call :meth:`emit_stage`
  with per-batch stage costs, and consumers such as
  ``adapt.TelemetryCollector.subscribe_to`` receive every event -- the
  adaptive loop and the metrics registry observe the same stream.
* optionally, a :class:`~repro.obs.recorder.FlightRecorder`
  (``Observability(recorder=...)``): finished spans and stage events are
  mirrored into bounded rings, and :meth:`trip` / :meth:`dump_postmortem`
  write self-contained postmortem bundles.

The default everywhere is :data:`NULL_OBS`, a null object whose ``enabled``
flag is False.  Hot loops either pre-bind instruments at construction time
(null instruments are no-ops) or guard span creation with
``if obs.enabled:``, so the disabled path allocates nothing per request.
Between the two extremes sits :class:`RecorderObservability`: real spans
feeding a flight recorder, but no metrics registry -- the "always-on"
black-box mode whose overhead is CI-gated at <=3% wall.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.errors import ReproError
from repro.obs.analyze import (
    CriticalPathReport,
    analyze_critical_path,
    bench_diff,
)
from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    read_spans_jsonl,
    summarize_spans,
    validate_span_tree,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StageEvent,
    percentile,
)
from repro.obs.recorder import (
    FlightRecorder,
    PostmortemBundle,
    load_postmortem,
)
from repro.obs.slo import SloEngine, SloSpec, SloWindow, replay_spans
from repro.obs.trace import Span, TraceContext, Tracer

__all__ = [
    "Observability",
    "RecorderObservability",
    "NullObservability",
    "NULL_OBS",
    "Tracer",
    "Span",
    "TraceContext",
    "StageEvent",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile",
    "chrome_trace",
    "write_chrome_trace",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "prometheus_text",
    "summarize_spans",
    "validate_span_tree",
    "analyze_critical_path",
    "CriticalPathReport",
    "bench_diff",
    "SloSpec",
    "SloWindow",
    "SloEngine",
    "replay_spans",
    "FlightRecorder",
    "PostmortemBundle",
    "load_postmortem",
]


class Observability:
    """Live tracing + metrics + stage events for one deployment.

    Pass ``recorder=`` (a :class:`~repro.obs.recorder.FlightRecorder`) to
    mirror every finished span and stage event into its bounded rings;
    :meth:`note`, :meth:`trip`, and :meth:`dump_postmortem` then become
    live, and subsystems use them to leave postmortem evidence.
    """

    enabled = True

    def __init__(self, max_spans: int = 65_536,
                 recorder: FlightRecorder | None = None):
        self.recorder = recorder
        on_finish = recorder.record_span if recorder is not None else None
        self.tracer = Tracer(max_spans=max_spans, on_finish=on_finish)
        self.metrics = MetricsRegistry()
        if recorder is not None:
            recorder.attach_tracer(self.tracer)
            recorder.attach_metrics(self.metrics)
        self._listeners: list[Callable[[StageEvent], None]] = []
        self._listener_lock = threading.Lock()

    # -- tracing --------------------------------------------------------
    def span(self, name: str, parent=None, **attrs) -> Span:
        """Open a wall-clock span (see :meth:`Tracer.start`)."""
        return self.tracer.start(name, parent=parent, **attrs)

    def record(self, name: str, seconds: float, parent=None,
               **attrs) -> Span:
        """Emit a finished span with a modelled duration."""
        return self.tracer.record(name, seconds, parent=parent, **attrs)

    def current(self) -> TraceContext | None:
        """The ambient trace context on this thread, if any."""
        return self.tracer.current()

    def activate(self, context):
        """Make ``context`` ambient on this thread (no-op for ``None``)."""
        return self.tracer.activate(context)

    def spans(self) -> list[Span]:
        """Snapshot of finished spans."""
        return self.tracer.spans()

    # -- metrics --------------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create a counter in the registry."""
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create a gauge in the registry."""
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        """Get or create a histogram in the registry."""
        return self.metrics.histogram(name, **labels)

    # -- stage-event bus ------------------------------------------------
    def emit_stage(self, stage: str, subject: str, images: int,
                   seconds: float, source: str = "") -> None:
        """Publish one batch's stage cost to the registry and listeners."""
        self.metrics.counter("stage_seconds_total", stage=stage,
                             source=source).inc(seconds)
        self.metrics.counter("stage_images_total", stage=stage,
                             source=source).inc(images)
        with self._listener_lock:
            listeners = list(self._listeners)
        if not listeners and self.recorder is None:
            return
        event = StageEvent(stage=stage, subject=subject, images=images,
                           seconds=seconds, source=source)
        if self.recorder is not None:
            self.recorder.record_event(event)
        for listener in listeners:
            listener(event)

    def add_stage_listener(
            self, listener: Callable[[StageEvent], None]) -> None:
        """Subscribe ``listener`` to every future stage event."""
        with self._listener_lock:
            self._listeners.append(listener)

    def remove_stage_listener(
            self, listener: Callable[[StageEvent], None]) -> None:
        """Unsubscribe a listener (no error if absent)."""
        with self._listener_lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    # -- flight recorder ------------------------------------------------
    def note(self, kind: str, /, **fields) -> None:
        """Leave a diagnostic breadcrumb in the flight recorder, if any."""
        if self.recorder is not None:
            self.recorder.note(kind, **fields)

    def trip(self, reason: str, **context):
        """Record a failure trip; auto-dumps a bundle when configured.

        Returns the bundle path, or None without a recorder / dump root.
        """
        if self.recorder is None:
            return None
        return self.recorder.trip(reason, **context)

    def dump_postmortem(self, path=None, reason: str = "manual",
                        **context):
        """Dump a postmortem bundle now; returns its directory."""
        if self.recorder is None:
            raise ReproError("no flight recorder attached: construct "
                             "Observability(recorder=FlightRecorder(...))")
        return self.recorder.dump(path, reason=reason, **context)

    # -- export ---------------------------------------------------------
    def export_jsonl(self, path: str) -> int:
        """Write all finished spans as JSONL; returns the span count."""
        return write_spans_jsonl(self.tracer.spans(), path)

    def export_chrome(self, path: str) -> int:
        """Write all finished spans as Chrome trace_event JSON."""
        return write_chrome_trace(self.tracer.spans(), path)

    def prometheus(self) -> str:
        """Render the metrics registry in Prometheus text format."""
        return prometheus_text(self.metrics)


class RecorderObservability(Observability):
    """Always-on black-box mode: spans + flight recorder, no metrics.

    For deployments that cannot afford full observability but must stay
    postmortem-able.  Spans are real (the recorder's ring and postmortem
    trees need them) but the metrics registry is bypassed -- instrument
    getters return the shared no-op -- and stage events skip the counter
    bookkeeping, going only to the ring and any registered listeners.
    ``benchmarks/bench_obs.py`` gates this mode at <=3% wall overhead
    over the fully disabled path.
    """

    def __init__(self, recorder: FlightRecorder | None = None,
                 max_spans: int = 8_192):
        super().__init__(max_spans=max_spans,
                         recorder=recorder or FlightRecorder())

    def counter(self, name: str, **labels: str):
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: str):
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: str):
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def emit_stage(self, stage: str, subject: str, images: int,
                   seconds: float, source: str = "") -> None:
        """Ring the event and notify listeners; no metrics bookkeeping."""
        with self._listener_lock:
            listeners = list(self._listeners)
        event = StageEvent(stage=stage, subject=subject, images=images,
                           seconds=seconds, source=source)
        self.recorder.record_event(event)
        for listener in listeners:
            listener(event)


class _NullInstrument:
    """Shared no-op counter/gauge/histogram; every reading is zero."""

    __slots__ = ()
    name = ""
    labels = ()
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass

    def add(self, delta: float) -> None:  # noqa: D102 - no-op
        pass

    def set(self, value: float) -> None:  # noqa: D102 - no-op
        pass

    def observe(self, value: float) -> None:  # noqa: D102 - no-op
        pass

    def quantile(self, q: float) -> float:  # noqa: D102 - no-op
        return 0.0

    def summary(self) -> dict[str, float]:  # noqa: D102 - no-op
        return {}


class _NullSpan:
    """Inert span: usable as a context manager, carries no context."""

    __slots__ = ()
    name = ""
    trace_id = 0
    span_id = 0
    parent_id = None
    context = None
    duration_s = 0.0
    attrs: dict = {}

    def set(self, **attrs) -> "_NullSpan":  # noqa: D102 - no-op
        return self

    def finish(self, end_s=None) -> None:  # noqa: D102 - no-op
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_INSTRUMENT = _NullInstrument()


class NullObservability:
    """Disabled observability: every operation is a shared-singleton no-op.

    Components default their ``obs`` parameter to :data:`NULL_OBS`, so the
    untraced hot path costs one attribute check (``obs.enabled``) or a
    no-op method call on a pre-bound null instrument -- no allocation.
    """

    __slots__ = ()
    enabled = False
    recorder = None

    def span(self, name: str, parent=None, **attrs) -> _NullSpan:
        """Return the shared inert span."""
        return _NULL_SPAN

    def record(self, name: str, seconds: float, parent=None,
               **attrs) -> _NullSpan:
        """Return the shared inert span."""
        return _NULL_SPAN

    def current(self) -> None:
        """No ambient context when disabled."""
        return None

    @contextmanager
    def activate(self, context) -> Iterator[None]:
        """No-op context manager."""
        yield

    def spans(self) -> list:
        """Always empty."""
        return []

    def counter(self, name: str, **labels: str) -> _NullInstrument:
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: str) -> _NullInstrument:
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: str) -> _NullInstrument:
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def emit_stage(self, stage: str, subject: str, images: int,
                   seconds: float, source: str = "") -> None:
        """Drop the event."""

    def add_stage_listener(self, listener) -> None:
        """Ignore the subscription (no events will ever fire)."""

    def remove_stage_listener(self, listener) -> None:
        """Nothing to remove."""

    def note(self, kind: str, /, **fields) -> None:
        """Drop the breadcrumb."""

    def trip(self, reason: str, **context) -> None:
        """Record nothing; no recorder to dump."""
        return None


#: The process-wide disabled-observability singleton (the default wiring).
NULL_OBS = NullObservability()
