"""Smol-Scope: end-to-end tracing, unified metrics, profiling export.

One :class:`Observability` object per deployment is threaded through the
stack (``SmolServer(obs=...)``, ``QueryEngine(obs=...)``,
``Dispatcher(obs=...)``, ``RenditionStore(obs=...)``,
``AdaptiveController(obs=...)``).  It bundles:

* a :class:`~repro.obs.trace.Tracer` (spans with trace/span/parent ids,
  ambient thread-local context, picklable ``(trace_id, span_id)`` contexts
  that ride requests and work items across thread and process hops);
* a :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
  fixed-bucket histograms);
* a **stage-event bus**: instrumented components call :meth:`emit_stage`
  with per-batch stage costs, and consumers such as
  ``adapt.TelemetryCollector.subscribe_to`` receive every event -- the
  adaptive loop and the metrics registry observe the same stream.

The default everywhere is :data:`NULL_OBS`, a null object whose ``enabled``
flag is False.  Hot loops either pre-bind instruments at construction time
(null instruments are no-ops) or guard span creation with
``if obs.enabled:``, so the disabled path allocates nothing per request.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    read_spans_jsonl,
    summarize_spans,
    validate_span_tree,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StageEvent,
    percentile,
)
from repro.obs.trace import Span, TraceContext, Tracer

__all__ = [
    "Observability",
    "NullObservability",
    "NULL_OBS",
    "Tracer",
    "Span",
    "TraceContext",
    "StageEvent",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile",
    "chrome_trace",
    "write_chrome_trace",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "prometheus_text",
    "summarize_spans",
    "validate_span_tree",
]


class Observability:
    """Live tracing + metrics + stage events for one deployment."""

    enabled = True

    def __init__(self, max_spans: int = 65_536):
        self.tracer = Tracer(max_spans=max_spans)
        self.metrics = MetricsRegistry()
        self._listeners: list[Callable[[StageEvent], None]] = []
        self._listener_lock = threading.Lock()

    # -- tracing --------------------------------------------------------
    def span(self, name: str, parent=None, **attrs) -> Span:
        """Open a wall-clock span (see :meth:`Tracer.start`)."""
        return self.tracer.start(name, parent=parent, **attrs)

    def record(self, name: str, seconds: float, parent=None,
               **attrs) -> Span:
        """Emit a finished span with a modelled duration."""
        return self.tracer.record(name, seconds, parent=parent, **attrs)

    def current(self) -> TraceContext | None:
        """The ambient trace context on this thread, if any."""
        return self.tracer.current()

    def activate(self, context):
        """Make ``context`` ambient on this thread (no-op for ``None``)."""
        return self.tracer.activate(context)

    def spans(self) -> list[Span]:
        """Snapshot of finished spans."""
        return self.tracer.spans()

    # -- metrics --------------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create a counter in the registry."""
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create a gauge in the registry."""
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        """Get or create a histogram in the registry."""
        return self.metrics.histogram(name, **labels)

    # -- stage-event bus ------------------------------------------------
    def emit_stage(self, stage: str, subject: str, images: int,
                   seconds: float, source: str = "") -> None:
        """Publish one batch's stage cost to the registry and listeners."""
        self.metrics.counter("stage_seconds_total", stage=stage,
                             source=source).inc(seconds)
        self.metrics.counter("stage_images_total", stage=stage,
                             source=source).inc(images)
        with self._listener_lock:
            listeners = list(self._listeners)
        if not listeners:
            return
        event = StageEvent(stage=stage, subject=subject, images=images,
                           seconds=seconds, source=source)
        for listener in listeners:
            listener(event)

    def add_stage_listener(
            self, listener: Callable[[StageEvent], None]) -> None:
        """Subscribe ``listener`` to every future stage event."""
        with self._listener_lock:
            self._listeners.append(listener)

    def remove_stage_listener(
            self, listener: Callable[[StageEvent], None]) -> None:
        """Unsubscribe a listener (no error if absent)."""
        with self._listener_lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    # -- export ---------------------------------------------------------
    def export_jsonl(self, path: str) -> int:
        """Write all finished spans as JSONL; returns the span count."""
        return write_spans_jsonl(self.tracer.spans(), path)

    def export_chrome(self, path: str) -> int:
        """Write all finished spans as Chrome trace_event JSON."""
        return write_chrome_trace(self.tracer.spans(), path)

    def prometheus(self) -> str:
        """Render the metrics registry in Prometheus text format."""
        return prometheus_text(self.metrics)


class _NullInstrument:
    """Shared no-op counter/gauge/histogram; every reading is zero."""

    __slots__ = ()
    name = ""
    labels = ()
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass

    def add(self, delta: float) -> None:  # noqa: D102 - no-op
        pass

    def set(self, value: float) -> None:  # noqa: D102 - no-op
        pass

    def observe(self, value: float) -> None:  # noqa: D102 - no-op
        pass

    def quantile(self, q: float) -> float:  # noqa: D102 - no-op
        return 0.0

    def summary(self) -> dict[str, float]:  # noqa: D102 - no-op
        return {}


class _NullSpan:
    """Inert span: usable as a context manager, carries no context."""

    __slots__ = ()
    name = ""
    trace_id = 0
    span_id = 0
    parent_id = None
    context = None
    duration_s = 0.0
    attrs: dict = {}

    def set(self, **attrs) -> "_NullSpan":  # noqa: D102 - no-op
        return self

    def finish(self, end_s=None) -> None:  # noqa: D102 - no-op
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_INSTRUMENT = _NullInstrument()


class NullObservability:
    """Disabled observability: every operation is a shared-singleton no-op.

    Components default their ``obs`` parameter to :data:`NULL_OBS`, so the
    untraced hot path costs one attribute check (``obs.enabled``) or a
    no-op method call on a pre-bound null instrument -- no allocation.
    """

    __slots__ = ()
    enabled = False

    def span(self, name: str, parent=None, **attrs) -> _NullSpan:
        """Return the shared inert span."""
        return _NULL_SPAN

    def record(self, name: str, seconds: float, parent=None,
               **attrs) -> _NullSpan:
        """Return the shared inert span."""
        return _NULL_SPAN

    def current(self) -> None:
        """No ambient context when disabled."""
        return None

    @contextmanager
    def activate(self, context) -> Iterator[None]:
        """No-op context manager."""
        yield

    def spans(self) -> list:
        """Always empty."""
        return []

    def counter(self, name: str, **labels: str) -> _NullInstrument:
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: str) -> _NullInstrument:
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: str) -> _NullInstrument:
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def emit_stage(self, stage: str, subject: str, images: int,
                   seconds: float, source: str = "") -> None:
        """Drop the event."""

    def add_stage_listener(self, listener) -> None:
        """Ignore the subscription (no events will ever fire)."""

    def remove_stage_listener(self, listener) -> None:
        """Nothing to remove."""


#: The process-wide disabled-observability singleton (the default wiring).
NULL_OBS = NullObservability()
