"""Unified metrics: counters, gauges, fixed-bucket histograms, percentiles.

This module is the single home of the stack's numeric instrumentation.  The
exact linear-interpolated :func:`percentile` used to live in
``repro.serving.metrics``; it moved here so serving summaries, benchmark
reports, and the ``obs`` CLI all share one implementation
(``repro.serving.metrics`` re-exports it for compatibility).

Three instrument kinds, deliberately Prometheus-shaped:

* :class:`Counter` -- monotonically increasing float total.
* :class:`Gauge` -- a value that goes up and down (queue depth, cache bytes).
* :class:`Histogram` -- fixed-bucket distribution with exact count/sum/min/max
  and bucket-interpolated quantiles.  Fixed buckets keep ``observe`` O(log b)
  and allocation-free, which matters on the serving hot loop.

Instruments are registered in a :class:`MetricsRegistry` keyed by
``(name, labels)``; the registry renders the Prometheus text exposition
format via :func:`repro.obs.export.prometheus_text`.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass

__all__ = [
    "percentile",
    "StageEvent",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]


def percentile(sorted_samples: list[float], q: float) -> float:
    """Exact linear-interpolated percentile ``q`` in [0, 100] of sorted data."""
    if not sorted_samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    rank = (len(sorted_samples) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(sorted_samples) - 1)
    frac = rank - low
    return sorted_samples[low] * (1 - frac) + sorted_samples[high] * frac


@dataclass(frozen=True)
class StageEvent:
    """One batch's worth of work attributed to a pipeline stage.

    The stage-event bus on :class:`repro.obs.Observability` carries these;
    ``adapt.TelemetryCollector.subscribe_to`` converts them into
    :class:`~repro.adapt.telemetry.StageObservation` records, making the
    adaptive loop one consumer of the same instrumentation events the
    metrics registry aggregates.
    """

    stage: str
    subject: str
    images: int
    seconds: float
    source: str = ""


#: Default latency buckets in seconds (1 ms .. 60 s), Prometheus-style.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing total.

    ``inc`` accepts floats so modelled-seconds totals can ride the same
    instrument as event counts.
    """

    __slots__ = ("name", "labels", "_value", "_lock")

    kind = "counter"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError("counter increments must be non-negative")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current total."""
        with self._lock:
            return self._value


class Gauge:
    """A value that can move in both directions (depth, bytes, ratio)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    kind = "gauge"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        """Move the gauge by ``delta`` (either sign)."""
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    Quantiles interpolate linearly within the bucket containing the target
    rank -- the standard Prometheus approximation.  Exact order statistics
    (when every sample is retained) stay with :func:`percentile`; this class
    trades exactness for O(1) memory on unbounded streams.
    """

    __slots__ = ("name", "labels", "bounds", "_counts", "_count", "_sum",
                 "_min", "_max", "_lock")

    kind = "histogram"

    def __init__(self, name: str,
                 labels: tuple[tuple[str, str], ...] = (),
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError("buckets must be sorted, unique, and non-empty")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in buckets)
        # One overflow bucket past the last bound (+Inf in Prometheus terms).
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample."""
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        """Number of samples observed."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed samples."""
        with self._lock:
            return self._sum

    def bucket_counts(self) -> list[int]:
        """Per-bucket sample counts (last entry is the overflow bucket)."""
        with self._lock:
            return list(self._counts)

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = self._count * q / 100.0
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                previous = cumulative
                cumulative += bucket_count
                if cumulative >= target and bucket_count:
                    low = self.bounds[index - 1] if index else min(
                        self._min, self.bounds[0])
                    high = (self.bounds[index]
                            if index < len(self.bounds) else self._max)
                    frac = (target - previous) / bucket_count
                    return min(low + (high - low) * frac, self._max)
            return self._max

    def summary(self) -> dict[str, float]:
        """Count, sum, mean, min/max and p50/p95/p99 in one dict."""
        with self._lock:
            count, total = self._count, self._sum
        if count == 0:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                    "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": count,
            "sum": total,
            "mean": total / count,
            "min": self._min,
            "max": self._max,
            "p50": self.quantile(50.0),
            "p95": self.quantile(95.0),
            "p99": self.quantile(99.0),
        }


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create registry of instruments keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple, object] = {}

    def _get(self, cls, name: str, labels: dict[str, str], **kwargs):
        key = (cls.kind, name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[2], **kwargs)
                self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: str) -> Histogram:
        """Get or create the histogram ``name`` with ``labels``."""
        return self._get(Histogram, name, labels, buckets=buckets)

    def instruments(self) -> list:
        """Stable snapshot of all registered instruments, sorted by key."""
        with self._lock:
            items = sorted(self._instruments.items())
        return [instrument for _, instrument in items]

    def snapshot(self) -> dict[str, float]:
        """Flat ``name{labels} -> value`` view (histograms report counts)."""
        result: dict[str, float] = {}
        for instrument in self.instruments():
            label_text = ",".join(f"{k}={v}" for k, v in instrument.labels)
            key = (f"{instrument.name}{{{label_text}}}"
                   if label_text else instrument.name)
            if isinstance(instrument, Histogram):
                result[key] = float(instrument.count)
            else:
                result[key] = instrument.value
        return result
