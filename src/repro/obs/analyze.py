"""Trace analytics: critical-path latency attribution and bench diffing.

Smol-Scope made every subsystem emit connected span trees; this module is
the layer that *interprets* them.

Critical-path analysis
----------------------
:func:`analyze_critical_path` walks an exported span log and attributes
each request's end-to-end latency to pipeline categories -- queueing,
batching, dispatch, decode, preprocess, inference, store, query, replan.
A *request* is a ``serving.request`` or ``cluster.item`` span with no
such span among its ancestors (a cluster item executing on behalf of a
serving request is accounted inside that request, not double-counted).

The attribution must satisfy one invariant: **every request's category
breakdown sums exactly to its span duration**.  That is non-trivial
because the stack mixes wall-clock spans with *modelled* spans
(``Tracer.record``) whose durations can legitimately exceed the parent's
wall time -- e.g. a ``serving.batch`` span carries the modelled cost of a
whole batch under a single request's wall interval.  The walk therefore
budget-scales: each span gets a time *budget* (the root's budget is its
duration); if its children's durations exceed the budget, every child is
scaled proportionally and the span keeps no self-time; otherwise children
keep their own durations and the remainder is the span's self-time,
attributed to the span's category.  Scaling preserves *proportions* --
which stage dominates -- which is the question the paper's joint
optimization actually needs answered.

Bench diffing
-------------
:func:`bench_diff` compares two ``BENCH_*.json`` payloads
(:mod:`repro.utils.benchio` schema) row by row and flags numeric fields
that moved beyond tolerance in the *bad* direction.  Direction is
inferred from the field name (throughput-like fields regress downward,
latency-like fields regress upward); unrecognized numeric fields are
reported as drift but never as regressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = [
    "CATEGORIES",
    "category_of",
    "RequestAttribution",
    "CriticalPathReport",
    "analyze_critical_path",
    "FieldDelta",
    "BenchDiff",
    "bench_diff",
]

#: Attribution categories, in report order.
CATEGORIES: tuple[str, ...] = (
    "queueing", "batching", "dispatch", "decode", "preprocess",
    "inference", "store", "query", "replan", "other",
)

#: Span names whose subtrees constitute one request.
REQUEST_ROOT_NAMES = frozenset({"serving.request", "cluster.item"})

_EXACT_CATEGORIES = {
    "stage.decode": "decode",
    "stage.preprocess": "preprocess",
    "stage.inference": "inference",
    "stage.read": "store",
    "serving.request": "queueing",
    "cluster.item": "queueing",
    "serving.batch": "batching",
    "cluster.execute": "batching",
    "cluster.dispatch": "dispatch",
    "cluster.retry": "dispatch",
    "cluster.failover": "dispatch",
    "serving.query": "query",
}

_PREFIX_CATEGORIES = (
    ("store.", "store"),
    ("query.", "query"),
    ("adapt.", "replan"),
    ("stage.", "other"),
)


def category_of(name: str) -> str:
    """Map a span name to its attribution category.

    The *self-time* of a request span is queueing (admission wait, batch
    formation wait); the self-time of a batch/execute span is batching
    overhead; modelled stage spans carry the pipeline's real work.
    """
    category = _EXACT_CATEGORIES.get(name)
    if category is not None:
        return category
    for prefix, prefixed in _PREFIX_CATEGORIES:
        if name.startswith(prefix):
            return prefixed
    return "other"


@dataclass(frozen=True)
class RequestAttribution:
    """One request's end-to-end latency split across categories."""

    trace_id: int
    span_id: int
    name: str
    duration_s: float
    breakdown: dict[str, float]
    spans: int

    @property
    def dominant(self) -> str:
        """The category blamed for the largest share of this request."""
        return max(CATEGORIES, key=lambda cat: self.breakdown.get(cat, 0.0))

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "name": self.name,
            "duration_ms": self.duration_s * 1000.0,
            "dominant": self.dominant,
            "spans": self.spans,
            "breakdown_ms": {cat: seconds * 1000.0
                             for cat, seconds in self.breakdown.items()
                             if seconds > 0.0},
        }


@dataclass(frozen=True)
class CriticalPathReport:
    """Fleet-level attribution: per-request rows plus aggregate blame."""

    requests: list[RequestAttribution]
    blame: dict[str, float]
    total_s: float
    spans_seen: int
    spans_attributed: int
    slowest: list[RequestAttribution] = field(default_factory=list)

    def blame_shares(self) -> dict[str, float]:
        """Per-category fraction of total attributed time (sums to 1)."""
        if self.total_s <= 0.0:
            return {cat: 0.0 for cat in CATEGORIES}
        return {cat: self.blame.get(cat, 0.0) / self.total_s
                for cat in CATEGORIES}

    def to_dict(self) -> dict:
        """JSON-ready representation (the ``obs analyze --json`` payload)."""
        return {
            "requests": len(self.requests),
            "spans_seen": self.spans_seen,
            "spans_attributed": self.spans_attributed,
            "total_ms": self.total_s * 1000.0,
            "blame_ms": {cat: self.blame.get(cat, 0.0) * 1000.0
                         for cat in CATEGORIES},
            "blame_share": self.blame_shares(),
            "slowest": [row.to_dict() for row in self.slowest],
        }


def _index_children(spans: list[dict]) -> dict[int | None, list[dict]]:
    children: dict[int | None, list[dict]] = {}
    for span in spans:
        children.setdefault(span.get("parent_id"), []).append(span)
    # Deterministic walk order regardless of export ordering.
    for siblings in children.values():
        siblings.sort(key=lambda span: span["span_id"])
    return children


def _attribute(span: dict, budget: float,
               children: dict[int | None, list[dict]],
               breakdown: dict[str, float]) -> int:
    """Recursively split ``budget`` seconds over ``span``'s subtree.

    Returns the number of spans visited.  Children whose durations total
    more than the budget are scaled proportionally (modelled spans may
    exceed wall time); otherwise the remainder is self-time.
    """
    kids = children.get(span["span_id"], ())
    visited = 1
    child_total = sum(max(0.0, kid["duration_s"]) for kid in kids)
    if child_total > budget and child_total > 0.0:
        scale = budget / child_total
        self_time = 0.0
    else:
        scale = 1.0
        self_time = budget - child_total
    if self_time > 0.0:
        category = category_of(span["name"])
        breakdown[category] = breakdown.get(category, 0.0) + self_time
    for kid in kids:
        visited += _attribute(kid, max(0.0, kid["duration_s"]) * scale,
                              children, breakdown)
    return visited


def _find_request_roots(spans: list[dict]) -> list[dict]:
    by_id = {span["span_id"]: span for span in spans}
    roots = []
    for span in spans:
        if span["name"] not in REQUEST_ROOT_NAMES:
            continue
        parent = span.get("parent_id")
        nested = False
        hops = 0
        while parent is not None and hops < len(by_id) + 1:
            ancestor = by_id.get(parent)
            if ancestor is None:
                break
            if ancestor["name"] in REQUEST_ROOT_NAMES:
                nested = True
                break
            parent = ancestor.get("parent_id")
            hops += 1
        if not nested:
            roots.append(span)
    roots.sort(key=lambda span: (span["trace_id"], span["span_id"]))
    return roots


def analyze_critical_path(spans, top_k: int = 10) -> CriticalPathReport:
    """Attribute request latency to pipeline categories across a span log.

    ``spans`` is a sequence of span dicts (the :meth:`Span.to_dict` /
    JSONL schema) or Span objects.  Each request's breakdown sums exactly
    to its span duration; spans outside any request subtree (adapt steps,
    standalone query runs, open spans) are not attributed.
    """
    if top_k < 0:
        raise ReproError("top_k must be non-negative")
    records = [span if isinstance(span, dict) else span.to_dict()
               for span in spans]
    children = _index_children(records)
    roots = _find_request_roots(records)
    requests: list[RequestAttribution] = []
    blame: dict[str, float] = {}
    attributed = 0
    for root in roots:
        breakdown: dict[str, float] = {}
        visited = _attribute(root, max(0.0, root["duration_s"]),
                             children, breakdown)
        attributed += visited
        requests.append(RequestAttribution(
            trace_id=root["trace_id"],
            span_id=root["span_id"],
            name=root["name"],
            duration_s=max(0.0, root["duration_s"]),
            breakdown=breakdown,
            spans=visited,
        ))
        for category, seconds in breakdown.items():
            blame[category] = blame.get(category, 0.0) + seconds
    slowest = sorted(requests, key=lambda row: -row.duration_s)[:top_k]
    return CriticalPathReport(
        requests=requests,
        blame=blame,
        total_s=sum(row.duration_s for row in requests),
        spans_seen=len(records),
        spans_attributed=attributed,
        slowest=slowest,
    )


# ----------------------------------------------------------------------
# BENCH_*.json regression diffing
# ----------------------------------------------------------------------

#: Name fragments marking fields where *lower* values are regressions.
LOWER_IS_REGRESSION = (
    "throughput", "speedup", "recovery", "accuracy", "hit_rate", "images",
)

#: Name fragments marking fields where *higher* values are regressions.
HIGHER_IS_REGRESSION = (
    "latency", "_ms", "wall", "seconds", "missed", "rejected",
    "failed", "dropped", "overhead",
)


def _direction(field_name: str) -> str:
    lowered = field_name.lower()
    for fragment in LOWER_IS_REGRESSION:
        if fragment in lowered:
            return "higher_is_better"
    for fragment in HIGHER_IS_REGRESSION:
        if fragment in lowered:
            return "lower_is_better"
    return "unknown"


@dataclass(frozen=True)
class FieldDelta:
    """One numeric field's movement between baseline and candidate."""

    row: int
    field: str
    baseline: float
    candidate: float
    rel_change: float
    direction: str
    regression: bool

    def describe(self) -> str:
        """One-line human rendering."""
        verdict = "REGRESSION" if self.regression else "ok"
        return (f"row {self.row} {self.field}: {self.baseline:g} -> "
                f"{self.candidate:g} ({self.rel_change:+.1%}, "
                f"{self.direction}) [{verdict}]")


@dataclass(frozen=True)
class BenchDiff:
    """Result of diffing two BENCH payloads."""

    bench: str
    deltas: list[FieldDelta]
    problems: list[str]

    @property
    def regressions(self) -> list[FieldDelta]:
        """Deltas flagged as regressions."""
        return [delta for delta in self.deltas if delta.regression]

    @property
    def ok(self) -> bool:
        """True when no regressions and no structural problems."""
        return not self.regressions and not self.problems

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "bench": self.bench,
            "ok": self.ok,
            "problems": list(self.problems),
            "regressions": [delta.describe() for delta in self.regressions],
            "deltas": [
                {"row": delta.row, "field": delta.field,
                 "baseline": delta.baseline, "candidate": delta.candidate,
                 "rel_change": delta.rel_change,
                 "direction": delta.direction,
                 "regression": delta.regression}
                for delta in self.deltas
            ],
        }


def bench_diff(baseline: dict, candidate: dict,
               tolerance: float = 0.1,
               field_tolerances: dict[str, float] | None = None) -> BenchDiff:
    """Diff two BENCH payloads; flag out-of-tolerance bad-direction moves.

    Rows are matched by position; a row whose identity (string/bool
    fields) differs from its baseline counterpart is reported as a
    structural problem rather than compared numerically.  ``tolerance``
    is the default relative tolerance; ``field_tolerances`` overrides it
    per field name.
    """
    if tolerance < 0:
        raise ReproError("tolerance must be non-negative")
    overrides = field_tolerances or {}
    problems: list[str] = []
    bench = str(baseline.get("bench", "?"))
    if baseline.get("bench") != candidate.get("bench"):
        problems.append(
            f"bench name mismatch: {baseline.get('bench')!r} vs "
            f"{candidate.get('bench')!r}"
        )
    base_rows = baseline.get("rows", [])
    cand_rows = candidate.get("rows", [])
    if len(base_rows) != len(cand_rows):
        problems.append(
            f"row count mismatch: {len(base_rows)} vs {len(cand_rows)}"
        )
    deltas: list[FieldDelta] = []
    for index, (base, cand) in enumerate(zip(base_rows, cand_rows)):
        identity_diff = [
            key for key in sorted(set(base) | set(cand))
            if isinstance(base.get(key), (str, bool))
            or isinstance(cand.get(key), (str, bool))
            if base.get(key) != cand.get(key)
        ]
        if identity_diff:
            problems.append(
                f"row {index} identity mismatch on {identity_diff}; "
                "skipped numeric comparison"
            )
            continue
        for key in sorted(set(base) & set(cand)):
            base_value, cand_value = base[key], cand[key]
            if isinstance(base_value, bool) or isinstance(cand_value, bool):
                continue
            if not isinstance(base_value, (int, float)):
                continue
            if not isinstance(cand_value, (int, float)):
                problems.append(
                    f"row {index} field {key}: numeric in baseline, "
                    f"{type(cand_value).__name__} in candidate"
                )
                continue
            denom = abs(base_value) if base_value else 1.0
            rel = (cand_value - base_value) / denom
            direction = _direction(key)
            limit = overrides.get(key, tolerance)
            regression = (
                (direction == "higher_is_better" and rel < -limit)
                or (direction == "lower_is_better" and rel > limit)
            )
            if rel != 0.0 or regression:
                deltas.append(FieldDelta(
                    row=index, field=key,
                    baseline=float(base_value),
                    candidate=float(cand_value),
                    rel_change=rel, direction=direction,
                    regression=regression,
                ))
    return BenchDiff(bench=bench, deltas=deltas, problems=problems)
