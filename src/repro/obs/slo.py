"""Declarative SLOs: rolling windows, multi-window burn-rate alerting.

An :class:`SloSpec` states a promise in Google-SRE terms: *a fraction
``objective`` of requests complete without error and under
``latency_target_s``*.  The complement ``1 - objective`` is the error
budget.  A request is **bad** when it errors or exceeds the latency
target; the **burn rate** over a window is::

    burn_rate = bad_fraction / (1 - objective)

Burn rate 1.0 spends the budget exactly at the sustainable pace; 10x
means the budget is gone in a tenth of the period.  Following the
multi-window pattern, an alert fires only when **every** configured
window is burning past its own threshold -- the long window proves the
problem is material, the short window proves it is *still happening* --
which suppresses both blips and stale alerts.

Alerts are edge-triggered (one per entry into the burning state) with a
``cooldown_s`` re-arm, and are published as ``slo.burn`` stage events on
the same bus the adaptive loop already consumes:
``AdaptiveController.watch_slo`` turns them into first-class replan
triggers, and the :class:`~repro.obs.recorder.FlightRecorder` rings them
for postmortems.  ``adapt.TelemetryCollector`` ignores unknown stages,
so the extra bus traffic is safe for existing listeners.

The engine is clock-injected (``observe(..., now=...)``), so offline
replay of a span log (:func:`replay_spans`, the ``obs slo`` CLI) and
live serving share one implementation.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = [
    "SloWindow",
    "SloSpec",
    "WindowBurn",
    "SloStatus",
    "SloEngine",
    "replay_spans",
    "DEFAULT_WINDOWS",
]

#: Span names treated as requests when replaying a span log.
REQUEST_SPAN_NAMES = frozenset({"serving.request", "cluster.item"})


@dataclass(frozen=True)
class SloWindow:
    """One rolling evaluation window and its burn-rate alarm threshold."""

    seconds: float
    max_burn_rate: float

    def __post_init__(self):
        if self.seconds <= 0:
            raise ReproError("SLO window must be positive seconds")
        if self.max_burn_rate <= 0:
            raise ReproError("max_burn_rate must be positive")


#: The classic fast-burn pair: 1 minute at 14.4x, 5 minutes at 6x.
DEFAULT_WINDOWS: tuple[SloWindow, ...] = (
    SloWindow(seconds=60.0, max_burn_rate=14.4),
    SloWindow(seconds=300.0, max_burn_rate=6.0),
)


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective over the request stream.

    ``objective`` is the promised good fraction (0.99 leaves a 1% error
    budget); a request is bad when it errors or takes longer than
    ``latency_target_s``.  ``min_events`` suppresses alerting until the
    shortest window holds enough samples to mean anything.
    """

    name: str
    latency_target_s: float
    objective: float = 0.99
    windows: tuple[SloWindow, ...] = DEFAULT_WINDOWS
    min_events: int = 10
    cooldown_s: float = 30.0

    def __post_init__(self):
        if not self.name:
            raise ReproError("SLO spec needs a name")
        if self.latency_target_s <= 0:
            raise ReproError("latency_target_s must be positive")
        if not 0.0 < self.objective < 1.0:
            raise ReproError("objective must be strictly between 0 and 1")
        if not self.windows:
            raise ReproError("SLO spec needs at least one window")
        if self.min_events < 1:
            raise ReproError("min_events must be at least 1")

    @property
    def budget(self) -> float:
        """The error budget: the tolerated bad fraction."""
        return 1.0 - self.objective

    def is_bad(self, latency_s: float, error: bool) -> bool:
        """Whether one request spends error budget under this spec."""
        return error or latency_s > self.latency_target_s


@dataclass(frozen=True)
class WindowBurn:
    """Burn-rate reading for one spec over one window."""

    window_s: float
    events: int
    bad: int
    burn_rate: float
    max_burn_rate: float

    @property
    def burning(self) -> bool:
        """True when this window exceeds its alarm threshold."""
        return self.burn_rate > self.max_burn_rate

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {"window_s": self.window_s, "events": self.events,
                "bad": self.bad, "burn_rate": self.burn_rate,
                "max_burn_rate": self.max_burn_rate,
                "burning": self.burning}


@dataclass(frozen=True)
class SloStatus:
    """One spec's full evaluation: every window plus the alert verdict."""

    name: str
    objective: float
    latency_target_s: float
    windows: list[WindowBurn] = field(default_factory=list)
    burning: bool = False
    alerting: bool = False
    alerts_total: int = 0

    def to_dict(self) -> dict:
        """JSON-ready representation (``obs slo`` / postmortem payload)."""
        return {
            "name": self.name,
            "objective": self.objective,
            "latency_target_s": self.latency_target_s,
            "burning": self.burning,
            "alerting": self.alerting,
            "alerts_total": self.alerts_total,
            "windows": [window.to_dict() for window in self.windows],
        }


class _SpecState:
    """Mutable per-spec tracking: sample ring + alert edge/cooldown."""

    __slots__ = ("spec", "samples", "alert_active", "last_alert",
                 "alerts_total")

    def __init__(self, spec: SloSpec, capacity: int):
        self.spec = spec
        # (time, is_bad) pairs; bounded so a silent evaluator cannot
        # accumulate samples without limit.
        self.samples: deque[tuple[float, bool]] = deque(maxlen=capacity)
        self.alert_active = False
        self.last_alert = float("-inf")
        self.alerts_total = 0


class SloEngine:
    """Evaluates :class:`SloSpec` objectives over the live request stream.

    Wire-up: serving calls :meth:`observe` per resolved/failed request;
    :meth:`attach` points alerts at an :class:`~repro.obs.Observability`
    bus (and registers the engine with its flight recorder, when present,
    so ``slo.json`` lands in postmortem bundles).
    """

    def __init__(self, specs, capacity: int = 65_536,
                 clock=time.monotonic):
        specs = tuple(specs)
        if not specs:
            raise ReproError("SloEngine needs at least one SloSpec")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate SLO spec names: {sorted(names)}")
        if capacity <= 0:
            raise ReproError("capacity must be positive")
        self._states = [_SpecState(spec, capacity) for spec in specs]
        self._clock = clock
        self._lock = threading.Lock()
        self._obs = None

    @property
    def specs(self) -> tuple[SloSpec, ...]:
        """The configured objectives."""
        return tuple(state.spec for state in self._states)

    def attach(self, obs) -> None:
        """Emit ``slo.burn`` events on ``obs``'s stage bus when alerting."""
        self._obs = obs
        recorder = getattr(obs, "recorder", None)
        if recorder is not None:
            recorder.attach_slo(self)

    # ------------------------------------------------------------------
    def observe(self, latency_s: float, error: bool = False,
                now: float | None = None) -> None:
        """Record one finished request against every spec.

        Cheap on the hot path: one timestamp, one boolean per spec, one
        bounded-deque append.  Evaluation happens in :meth:`evaluate`.
        """
        if now is None:
            now = self._clock()
        with self._lock:
            for state in self._states:
                state.samples.append(
                    (now, state.spec.is_bad(latency_s, error)))

    def evaluate(self, now: float | None = None) -> list[SloStatus]:
        """Evaluate every spec; emit edge-triggered alerts on the bus.

        A spec alerts when ALL its windows burn past their thresholds and
        the shortest window holds at least ``min_events`` samples.  The
        alert re-fires only after the spec stops burning or ``cooldown_s``
        elapses.
        """
        if now is None:
            now = self._clock()
        statuses: list[SloStatus] = []
        alerts: list[tuple[SloSpec, SloStatus]] = []
        with self._lock:
            for state in self._states:
                spec = state.spec
                self._trim(state, now)
                burns = [self._burn(state, window, now)
                         for window in spec.windows]
                shortest = min(burns, key=lambda burn: burn.window_s)
                burning = (all(burn.burning for burn in burns)
                           and shortest.events >= spec.min_events)
                alerting = False
                if burning:
                    rearmed = now - state.last_alert >= spec.cooldown_s
                    if not state.alert_active or rearmed:
                        alerting = True
                        state.alert_active = True
                        state.last_alert = now
                        state.alerts_total += 1
                else:
                    state.alert_active = False
                status = SloStatus(
                    name=spec.name, objective=spec.objective,
                    latency_target_s=spec.latency_target_s,
                    windows=burns, burning=burning, alerting=alerting,
                    alerts_total=state.alerts_total,
                )
                statuses.append(status)
                if alerting:
                    alerts.append((spec, status))
        # Emit outside the lock: listeners (replanner, recorder) may be
        # arbitrarily slow or re-entrant.
        if self._obs is not None:
            for spec, status in alerts:
                worst = max(burn.burn_rate for burn in status.windows)
                shortest = min(status.windows,
                               key=lambda burn: burn.window_s)
                self._obs.emit_stage("slo.burn", spec.name,
                                     shortest.bad, worst, source="slo")
        return statuses

    def state(self) -> dict:
        """JSON-ready engine state (evaluated without emitting alerts)."""
        now = self._clock()
        with self._lock:
            payload = []
            for state in self._states:
                spec = state.spec
                self._trim(state, now)
                burns = [self._burn(state, window, now)
                         for window in spec.windows]
                shortest = min(burns, key=lambda burn: burn.window_s)
                burning = (all(burn.burning for burn in burns)
                           and shortest.events >= spec.min_events)
                payload.append(SloStatus(
                    name=spec.name, objective=spec.objective,
                    latency_target_s=spec.latency_target_s,
                    windows=burns, burning=burning, alerting=False,
                    alerts_total=state.alerts_total,
                ).to_dict())
        return {"specs": payload}

    # ------------------------------------------------------------------
    @staticmethod
    def _trim(state: _SpecState, now: float) -> None:
        horizon = now - max(window.seconds
                            for window in state.spec.windows)
        samples = state.samples
        while samples and samples[0][0] < horizon:
            samples.popleft()

    @staticmethod
    def _burn(state: _SpecState, window: SloWindow,
              now: float) -> WindowBurn:
        cutoff = now - window.seconds
        events = bad = 0
        for when, is_bad in reversed(state.samples):
            if when < cutoff:
                break
            events += 1
            if is_bad:
                bad += 1
        budget = state.spec.budget
        burn_rate = (bad / events) / budget if events else 0.0
        return WindowBurn(window_s=window.seconds, events=events, bad=bad,
                          burn_rate=burn_rate,
                          max_burn_rate=window.max_burn_rate)


def replay_spans(spans, specs, evaluate_every: int = 1) -> list[SloStatus]:
    """Replay request spans through a fresh engine; return final statuses.

    Offline counterpart to live serving (the ``obs slo`` CLI): request
    spans (``serving.request`` / ``cluster.item``) become observations at
    their completion times, evaluated every ``evaluate_every`` requests
    so alert counters reflect what live monitoring would have fired.
    """
    if evaluate_every < 1:
        raise ReproError("evaluate_every must be at least 1")
    records = [span if isinstance(span, dict) else span.to_dict()
               for span in spans]
    requests = sorted(
        (record for record in records
         if record["name"] in REQUEST_SPAN_NAMES
         and not record.get("open")),
        key=lambda record: record["start_s"] + record["duration_s"],
    )
    last = requests[-1]["start_s"] + requests[-1]["duration_s"] if requests \
        else 0.0
    engine = SloEngine(specs, clock=lambda: last)
    statuses: list[SloStatus] = []
    for index, record in enumerate(requests, start=1):
        finished = record["start_s"] + record["duration_s"]
        error = bool(record.get("attrs", {}).get("error"))
        engine.observe(record["duration_s"], error=error, now=finished)
        if index % evaluate_every == 0 or index == len(requests):
            statuses = engine.evaluate(now=finished)
    if not requests:
        statuses = engine.evaluate(now=0.0)
    return statuses
