"""Global-contract checks the chaos harness asserts after every run.

The VDBMS bug studies locate most real failures in cross-component
interaction paths; the invariants here are the *system-wide* contracts
those interactions must preserve no matter which faults fired:

* **exactly-once resolution** -- every submitted item resolves exactly
  once (no lost futures, no double-retired counters), even though
  execution is at-least-once under failover;
* **bit-identical scores** -- items the faulted cluster completed must
  predict exactly what the unfaulted single-process engine predicts;
* **connected traces** -- the run's span tree validates (one trace, one
  root, no orphans, no duplicate span ids) via
  :func:`repro.obs.validate_span_tree`;
* **crash-safe manifests** -- a store that absorbed torn manifest writes
  still loads, still serves every committed entry, and survives GC;
* **convergent replans** -- the drift detector, once acknowledged, stops
  demanding replans for the same scales, and calibrated scales respect
  the calibrator's hard bounds.

Each check returns :class:`InvariantViolation` records rather than
raising, so one run reports *all* broken contracts and the shrinker can
target the specific invariant a seed first violated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import validate_span_tree

__all__ = [
    "InvariantViolation",
    "check_exactly_once",
    "check_predictions",
    "check_span_tree",
]


@dataclass(frozen=True)
class InvariantViolation:
    """One broken contract: which invariant, and the evidence."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.detail}"


def check_exactly_once(stats, outcomes: list,
                       allow_failures: bool) -> list[InvariantViolation]:
    """Every submitted item resolved exactly once, and counters agree.

    ``stats`` is a :class:`~repro.cluster.dispatcher.DispatcherStats`
    snapshot taken after the drain; ``outcomes`` is the per-item list of
    ``("ok", predictions)`` / ``("failed", error)`` / ``("lost", ...)``
    tuples the runner resolved from the futures.  ``allow_failures`` is
    True when the fault plan could legitimately exhaust an item's
    attempts (kill or raise actions present).
    """
    violations: list[InvariantViolation] = []
    lost = sum(1 for kind, _ in outcomes if kind == "lost")
    if lost:
        violations.append(InvariantViolation(
            "resolution.exactly_once",
            f"{lost} of {len(outcomes)} futures never resolved",
        ))
    if stats.completed + stats.failed != stats.submitted:
        violations.append(InvariantViolation(
            "resolution.exactly_once",
            f"completed ({stats.completed}) + failed ({stats.failed}) != "
            f"submitted ({stats.submitted}) -- an item was double-retired "
            "or dropped",
        ))
    if stats.inflight != 0:
        violations.append(InvariantViolation(
            "resolution.exactly_once",
            f"{stats.inflight} items still in flight after drain",
        ))
    failed = sum(1 for kind, _ in outcomes if kind == "failed")
    if failed and not allow_failures:
        detail = next(d for kind, d in outcomes if kind == "failed")
        violations.append(InvariantViolation(
            "resolution.spurious_failure",
            f"{failed} items failed with no kill/raise fault planned "
            f"(first: {detail})",
        ))
    return violations


def check_predictions(reference: list[np.ndarray],
                      outcomes: list) -> list[InvariantViolation]:
    """Completed items must match the unfaulted serial engine bit-for-bit."""
    violations: list[InvariantViolation] = []
    for index, (kind, value) in enumerate(outcomes):
        if kind != "ok":
            continue
        expected = reference[index]
        actual = np.asarray(value, dtype=np.int64)
        if actual.shape != expected.shape or \
                not np.array_equal(actual, expected):
            violations.append(InvariantViolation(
                "predictions.bit_identical",
                f"item {index} predicted {actual.tolist()} but the serial "
                f"engine predicted {expected.tolist()}",
            ))
    return violations


def check_span_tree(spans: list) -> list[InvariantViolation]:
    """The run's spans must form one connected, duplicate-free trace."""
    if not spans:
        return [InvariantViolation("trace.connected",
                                   "the traced run produced no spans")]
    tree = validate_span_tree(spans)
    if tree.connected:
        return []
    return [InvariantViolation(
        "trace.connected",
        f"{len(tree.traces)} traces, {len(tree.roots)} roots, "
        f"{len(tree.orphans)} orphans, {len(tree.duplicates)} duplicate "
        "span ids",
    )]
