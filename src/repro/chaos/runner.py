"""The chaos runner: execute one scenario, check every invariant.

One :meth:`ChaosRunner.run` call executes up to eight passes, all derived
from a single :class:`~repro.chaos.scenario.Scenario`:

1. **reference** -- the scenario's items through an unfaulted serial
   session (the ground truth the faulted cluster must match bit-for-bit);
2. **queue probe** (minority of seeds) -- a contended
   :class:`~repro.inference.mpmc.MpmcQueue` under a spurious-wakeup storm,
   asserting put/get honor their *total* timeout (the regression net for
   the re-armed-timeout bug);
3. **cluster** -- the same items through a traced
   :class:`~repro.cluster.dispatcher.Dispatcher` with the scenario's
   fault plan injected (kills, stalls, session failures), then the
   exactly-once / bit-identical / connected-trace invariants;
4. **serving** (``scenario.serving``) -- the scenario's requests through a
   live :class:`~repro.serving.server.SmolServer` with the
   ``serving.admit`` / ``serving.batch`` seams armed: every shed request
   is resubmitted (each planned fault fires once), and the pass asserts
   full resolution, bit-identical predictions, and a connected span tree;
5. **store** -- the scenario's put/invalidate/gc sequence against a
   :class:`~repro.store.store.RenditionStore` absorbing torn manifest
   writes, then crash-safety and durability checks from a fresh handle;
6. **dag / drift** -- optimizer-candidate equivalence against the naive
   ordering, and calibrator-bounds + convergent-replan checks;
7. **fuse** (``scenario.fuse``, overridable via ``fuse_mode``) -- the
   scenario's DAG compiled to a :class:`~repro.fuse.kernel.FusedKernel`
   and checked byte-identical against per-image interpretation (including
   NaN float batches and post-``ChaosFault`` reruns), then a cluster pass
   whose replicas execute *fused* functional sessions against an
   interpreted serial oracle -- exactly-once, bit-identity, and connected
   traces all hold with fusion enabled;
8. **process kill** (``scenario.proc_kill``, minority of seeds) -- real
   :class:`~repro.cluster.worker.ProcessWorker` replicas with one killed
   mid-run: failover + exactly-once + bit-identity, plus no leaked
   shared-memory segments once the dispatcher closes;
9. **multi-tenant serving** (``scenario.tenant_serving``) -- the
   scenario's tenants through a DRR-scheduled
   :class:`~repro.serving.server.SmolServer` with the ``tenant.enqueue``
   / ``tenant.batch`` seams armed: no priority class may starve under
   injected stalls and raises, answers stay exactly-once and
   bit-identical, and the span tree stays connected.

A failing run's evidence is self-contained: :meth:`ChaosRunner.run`
wires a :class:`~repro.obs.FlightRecorder` through the cluster pass, and
:func:`dump_report` writes the postmortem bundle plus ``scenario.json``
(the exact scenario, replayable via ``chaos replay``).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.chaos.faults import ChaosFault, FaultInjector, FaultPlan
from repro.chaos.invariants import (
    InvariantViolation,
    check_exactly_once,
    check_predictions,
    check_span_tree,
)
from repro.chaos.scenario import Scenario
from repro.adapt.calibrator import ObservationKey, OnlineCalibrator
from repro.adapt.drift import DriftDetector
from repro.adapt.telemetry import StageObservation
from repro.cluster.dispatcher import Dispatcher
from repro.cluster.worker import ProcessWorker, SessionSpec, ThreadWorker
from repro.errors import (
    AdmissionError,
    EngineError,
    NoHealthyWorkerError,
    ReproError,
    StoreError,
)
from repro.fuse.compiler import get_kernel
from repro.fuse.shm import HAS_SHM, SHM_DIR
from repro.inference.mpmc import MpmcQueue
from repro.nn.model import build_mini_resnet
from repro.obs import FlightRecorder, Observability
from repro.preprocessing.dag import PreprocessingDAG
from repro.preprocessing.ops import (
    CenterCropOp,
    ChannelReorderOp,
    ConvertDtypeOp,
    NormalizeOp,
    ResizeOp,
    TensorSpec,
)
from repro.preprocessing.optimizer import DagOptimizer
from repro.serving.batcher import BatchPolicy
from repro.serving.request import InferenceRequest
from repro.serving.server import SmolServer
from repro.serving.session import (
    BatchResult,
    EngineSession,
    FunctionalSession,
    serving_pipeline_ops,
)
from repro.store.store import Manifest, RenditionStore, ScoreKey
from repro.utils.rng import stable_hash

__all__ = [
    "ChaosReport",
    "ChaosRunner",
    "HashSession",
    "dump_report",
]

#: Baseline per-image stage costs the drift pass calibrates against.
_DRIFT_BASELINES = {"decode": 1e-3, "inference": 2e-3}


class HashSession(EngineSession):
    """Deterministic session: ``stable_hash(image_id, plan_key) % classes``.

    The same convention as ``SimulatedSession``'s prediction rule, so any
    two replicas on the same plan agree -- which is exactly what the
    bit-identical invariant relies on when failover re-executes an item on
    a different replica.
    """

    def __init__(self, plan_key: str = "chaos-plan",
                 num_classes: int = 13) -> None:
        super().__init__(plan_key)
        self._num_classes = num_classes

    def execute(self, requests):
        predictions = np.array(
            [stable_hash(r.image_id, self.plan_key) % self._num_classes
             for r in requests],
            dtype=np.int64,
        )
        images = len(requests)
        return BatchResult(
            predictions=predictions,
            modelled_seconds=images * 1e-4,
            stage_seconds={"decode": images * 5e-5,
                           "inference": images * 5e-5},
        )


@dataclass
class ChaosReport:
    """What one scenario run produced: violations, firings, counters."""

    scenario: Scenario
    violations: list[InvariantViolation] = field(default_factory=list)
    fired: list[dict] = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return not self.violations

    def describe(self) -> str:
        """One-line human summary (CLI output)."""
        if self.ok:
            return (f"seed {self.scenario.seed}: ok "
                    f"({len(self.fired)} faults fired, "
                    f"{self.elapsed_s * 1000:.0f} ms)")
        first = self.violations[0]
        return (f"seed {self.scenario.seed}: FAIL {first.invariant} -- "
                f"{first.detail}")

    def to_dict(self) -> dict:
        """Plain-data form for bundles and scorecards."""
        return {
            "scenario": self.scenario.to_dict(),
            "ok": self.ok,
            "violations": [{"invariant": v.invariant, "detail": v.detail}
                           for v in self.violations],
            "fired": self.fired,
            "stats": {key: value for key, value in self.stats.items()
                      if key != "recorder"},
            "elapsed_s": self.elapsed_s,
        }


class ChaosRunner:
    """Executes scenarios and checks the global invariants.

    Parameters
    ----------
    drain_timeout_s:
        Bound on the cluster pass's drain; generated scenarios finish in
        tens of milliseconds, so hitting this is itself a liveness bug.
    store_root:
        Directory for the store pass.  Default: a per-run temp directory,
        removed afterwards.
    fuse_mode:
        ``"seed"`` (default) runs the fused-execution pass on the seeds
        whose scenario drew ``fuse=True``; ``"on"`` forces it for every
        seed and ``"off"`` suppresses it entirely -- the CI smoke job runs
        both forced modes so every invariant is swept with fusion on *and*
        off.
    """

    def __init__(self, drain_timeout_s: float = 10.0,
                 store_root: str | Path | None = None,
                 fuse_mode: str = "seed") -> None:
        if fuse_mode not in ("seed", "on", "off"):
            raise ReproError(
                f"fuse_mode must be 'seed', 'on', or 'off', not {fuse_mode!r}"
            )
        self._drain_timeout_s = drain_timeout_s
        self._store_root = store_root
        self._fuse_mode = fuse_mode

    def _fuse_enabled(self, scenario: Scenario) -> bool:
        """Whether this run executes the fused pass (mode beats seed)."""
        if self._fuse_mode == "on":
            return True
        if self._fuse_mode == "off":
            return False
        return scenario.fuse

    def run(self, scenario: Scenario) -> ChaosReport:
        """Run every pass for ``scenario``; never raises on a violation."""
        start = time.monotonic()
        report = ChaosReport(scenario=scenario)
        injector = FaultInjector(scenario.faults)
        injectors = [injector]
        requests = _build_requests(scenario)
        reference = _reference_predictions(scenario, requests)
        if scenario.queue:
            report.violations += _queue_probe(scenario)
        recorder = FlightRecorder()
        obs = Observability(recorder=recorder)
        report.violations += self._cluster_pass(
            scenario, requests, reference, injector, obs, report)
        if scenario.serving:
            report.violations += self._serving_pass(scenario, injector,
                                                    report)
        if scenario.tenant_serving:
            report.violations += self._tenant_pass(scenario, injector,
                                                   report)
        report.violations += self._store_pass(scenario, injector)
        report.violations += _dag_pass(scenario)
        if self._fuse_enabled(scenario):
            report.violations += self._fuse_pass(scenario, report,
                                                 injectors)
        report.violations += _drift_pass(scenario)
        if scenario.proc_kill:
            report.violations += self._process_pass(scenario, report)
        report.fired = [
            {"site": f.fault.site, "action": f.fault.action,
             "at_hit": f.fault.at_hit, "hit": f.hit}
            for inj in injectors for f in inj.fired
        ]
        report.elapsed_s = time.monotonic() - start
        # Keep the evidence channel attached so a caller (CLI, shrinker)
        # can dump the postmortem bundle for a failing report.
        report.stats["recorder"] = recorder
        return report

    # ------------------------------------------------------------------
    # Cluster pass
    # ------------------------------------------------------------------
    def _cluster_pass(self, scenario: Scenario, requests, reference,
                      injector: FaultInjector, obs: Observability,
                      report: ChaosReport) -> list[InvariantViolation]:
        def factory(worker_id: str, results: MpmcQueue) -> ThreadWorker:
            return ThreadWorker(worker_id, HashSession(), results,
                                obs=obs, faults=injector)

        violations: list[InvariantViolation] = []
        # The background monitor is disabled: drain() drives check_workers
        # on the caller's thread, so failover and orphan recovery happen
        # at a deterministic cadence instead of a racing timer's.
        dispatcher = Dispatcher(
            factory, num_workers=scenario.workers,
            max_attempts=scenario.max_attempts,
            heartbeat_timeout_s=0.05, monitor_interval_s=0.0,
            breaker_cooldown_s=0.001, obs=obs, faults=injector,
        )
        root = obs.span("chaos.run", seed=scenario.seed,
                        items=scenario.items)
        futures = []
        try:
            with obs.activate(root.context):
                for index, item_requests in enumerate(requests):
                    tenant = scenario.tenants[scenario.arrival[index]]
                    obs.record("chaos.submit", 0.0, tenant=tenant,
                               item=index)
                    futures.append(dispatcher.submit(item_requests))
            try:
                dispatcher.drain(timeout=self._drain_timeout_s)
            except NoHealthyWorkerError as exc:
                violations.append(InvariantViolation(
                    "resolution.exactly_once", f"drain stuck: {exc}"))
        finally:
            dispatcher.close(timeout=self._drain_timeout_s)
            root.finish()
        # Snapshot counters only after close() has joined the collector:
        # a collector mid-flight (e.g. stalled by an injected fault) may
        # still mutate them after drain() observes the last resolution.
        stats = dispatcher.stats()
        outcomes = _future_outcomes(futures)
        allow_failures = bool(
            scenario.faults.actions() & {"kill", "raise"})
        violations += check_exactly_once(stats, outcomes, allow_failures)
        violations += check_predictions(reference, outcomes)
        violations += check_span_tree(obs.spans())
        report.stats.update({
            "submitted": stats.submitted, "completed": stats.completed,
            "failed": stats.failed, "retried": stats.retried,
            "failovers": stats.failovers,
            "worker_deaths": stats.worker_deaths,
            "spans": len(obs.spans()),
        })
        return violations

    # ------------------------------------------------------------------
    # Serving pass
    # ------------------------------------------------------------------
    def _serving_pass(self, scenario: Scenario, injector: FaultInjector,
                      report: ChaosReport) -> list[InvariantViolation]:
        """The scenario's requests through a live :class:`SmolServer`.

        The serving seams fire from the scenario's plan: ``serving.admit``
        on the submitting thread (a raise is a clean shed -- the request
        never entered the queue), ``serving.batch`` on the serving thread
        (absorbed by the loop; no request was dequeued), and
        ``fuse.execute`` inside batch execution (fails the batch).  Each
        planned fault fires at most once, so resubmitting shed requests
        and failed batches always converges; the invariants are full
        resolution, bit-identical predictions against the serial oracle,
        and one connected span tree.  The cache is off so every request
        really executes.
        """
        violations: list[InvariantViolation] = []
        oracle = HashSession(plan_key="chaos-serve")
        by_id: dict[str, InferenceRequest] = {}
        for index in range(scenario.items):
            tenant = scenario.tenants[scenario.arrival[index]]
            for j in range(scenario.batch):
                request = InferenceRequest(
                    image_id=f"{tenant}/srv-{index}-{j}")
                by_id[request.image_id] = request
        expected = {
            image_id: int(oracle.execute([request]).predictions[0])
            for image_id, request in by_id.items()
        }
        obs = Observability()
        root = obs.span("chaos.serving", seed=scenario.seed,
                        requests=len(by_id))
        server = SmolServer(
            session=HashSession(plan_key="chaos-serve"),
            policy=BatchPolicy(name="chaos",
                               max_batch_size=max(1, scenario.batch),
                               max_wait_ms=1.0),
            queue_capacity=max(4, len(by_id)),
            cache_capacity=0, obs=obs, faults=injector,
        )
        deadline = time.monotonic() + self._drain_timeout_s

        def submit_all(image_ids) -> dict:
            futures = {}
            with obs.activate(root.context):
                for image_id in image_ids:
                    future = None
                    for _ in range(4):
                        try:
                            future = server.submit(by_id[image_id])
                            break
                        except (ChaosFault, AdmissionError):
                            continue  # clean shed: the fault fired once
                    if future is None:
                        violations.append(InvariantViolation(
                            "serving.resolution",
                            f"request {image_id} was shed on every "
                            "submit attempt"))
                    else:
                        futures[image_id] = future
            return futures

        resolved: dict[str, int] = {}
        try:
            pending = submit_all(sorted(by_id))
            for _ in range(len(scenario.faults) + 2):
                if not pending:
                    break
                failed: list[str] = []
                for image_id, future in sorted(pending.items()):
                    try:
                        response = future.result(
                            timeout=max(0.01,
                                        deadline - time.monotonic()))
                    except TimeoutError:
                        violations.append(InvariantViolation(
                            "serving.resolution",
                            f"request {image_id} never resolved within "
                            f"{self._drain_timeout_s}s"))
                    except Exception:
                        failed.append(image_id)  # injected batch failure
                    else:
                        resolved[image_id] = int(response.prediction)
                pending = submit_all(failed) if failed else {}
            if pending:
                violations.append(InvariantViolation(
                    "serving.resolution",
                    f"{len(pending)} requests still failing after "
                    "every planned fault fired"))
        finally:
            server.close()
            root.finish()
        for image_id in sorted(resolved):
            if resolved[image_id] != expected[image_id]:
                violations.append(InvariantViolation(
                    "predictions.bit_identical",
                    f"served {image_id} predicted {resolved[image_id]} "
                    f"but the serial engine predicted "
                    f"{expected[image_id]}"))
        violations += check_span_tree(obs.spans())
        stats = server.stats()
        report.stats["serving"] = {
            "submitted": stats.submitted, "completed": stats.completed,
            "rejected": stats.rejected,
            "batches": stats.batcher.batches,
        }
        return violations

    # ------------------------------------------------------------------
    # Multi-tenant serving pass
    # ------------------------------------------------------------------
    def _tenant_pass(self, scenario: Scenario, injector: FaultInjector,
                     report: ChaosReport) -> list[InvariantViolation]:
        """The scenario's tenants through a DRR-scheduled server.

        Each scenario tenant becomes a :class:`TenantSpec` in the class
        ``scenario.tenant_classes`` assigns it (quotas unlimited and
        class deadlines off, so every divergence is the scheduler's
        fault, not throttling or downgrades).  The armed seams are the
        DRR scheduler's own: ``tenant.enqueue`` (a raise is a clean shed
        the pass resubmits past) and ``tenant.batch`` (absorbed by the
        serving loop before any dequeue).  Invariants: *no starvation*
        (every class with offered requests fully resolves, even with
        stalls and raises wedged into its queues -- the
        schedule-independent form of exactly-once), bit-identical
        predictions against the serial oracle, and a connected span
        tree.
        """
        from repro.tenant.spec import (
            PRIORITY_CLASSES,
            ClassPolicy,
            TenantConfig,
            TenantSpec,
        )

        violations: list[InvariantViolation] = []
        config = TenantConfig(
            tenants=tuple(
                TenantSpec(name=tenant,
                           priority=PRIORITY_CLASSES[class_index])
                for tenant, class_index
                in zip(scenario.tenants, scenario.tenant_classes)
            ),
            classes=(ClassPolicy("interactive", weight=8.0, rank=0),
                     ClassPolicy("standard", weight=4.0, rank=1),
                     ClassPolicy("batch", weight=1.0, rank=2)),
        )
        class_of = {tenant: PRIORITY_CLASSES[class_index]
                    for tenant, class_index
                    in zip(scenario.tenants, scenario.tenant_classes)}
        oracle = HashSession(plan_key="chaos-tenant")
        by_id: dict[str, InferenceRequest] = {}
        for index in range(scenario.items):
            tenant = scenario.tenants[scenario.arrival[index]]
            for j in range(scenario.batch):
                request = InferenceRequest(
                    image_id=f"{tenant}/tn-{index}-{j}", tenant=tenant)
                by_id[request.image_id] = request
        expected = {
            image_id: int(oracle.execute([request]).predictions[0])
            for image_id, request in by_id.items()
        }
        obs = Observability()
        root = obs.span("chaos.tenant", seed=scenario.seed,
                        requests=len(by_id))
        server = SmolServer(
            session=HashSession(plan_key="chaos-tenant"),
            policy=BatchPolicy(name="chaos-tenant",
                               max_batch_size=max(1, scenario.batch),
                               max_wait_ms=1.0),
            queue_capacity=max(4, len(by_id)),
            cache_capacity=0, obs=obs, faults=injector, tenants=config,
        )
        deadline = time.monotonic() + self._drain_timeout_s

        def submit_all(image_ids) -> dict:
            futures = {}
            with obs.activate(root.context):
                for image_id in image_ids:
                    future = None
                    for _ in range(4):
                        try:
                            future = server.submit(by_id[image_id])
                            break
                        except (ChaosFault, AdmissionError):
                            continue  # clean shed: the fault fired once
                    if future is None:
                        violations.append(InvariantViolation(
                            "tenant.no_starvation",
                            f"request {image_id} was shed on every "
                            "submit attempt"))
                    else:
                        futures[image_id] = future
            return futures

        resolved: dict[str, int] = {}
        unresolved: list[str] = []
        try:
            pending = submit_all(sorted(by_id))
            for _ in range(len(scenario.faults) + 2):
                if not pending:
                    break
                failed: list[str] = []
                for image_id, future in sorted(pending.items()):
                    try:
                        response = future.result(
                            timeout=max(0.01,
                                        deadline - time.monotonic()))
                    except TimeoutError:
                        unresolved.append(image_id)
                    except Exception:
                        failed.append(image_id)  # injected batch failure
                    else:
                        resolved[image_id] = int(response.prediction)
                pending = submit_all(failed) if failed else {}
            unresolved.extend(sorted(pending))
        finally:
            server.close()
            root.finish()
        if unresolved:
            # Attribute the wedge to classes: a starved class is the
            # fairness bug this pass exists to catch.
            starved = sorted({class_of[by_id[image_id].tenant]
                              for image_id in unresolved})
            violations.append(InvariantViolation(
                "tenant.no_starvation",
                f"{len(unresolved)} requests never resolved under "
                f"injected faults (classes {starved})"))
        for image_id in sorted(resolved):
            if resolved[image_id] != expected[image_id]:
                violations.append(InvariantViolation(
                    "predictions.bit_identical",
                    f"tenant-served {image_id} predicted "
                    f"{resolved[image_id]} but the serial engine "
                    f"predicted {expected[image_id]}"))
        violations += check_span_tree(obs.spans())
        stats = server.stats()
        tenant_stats = server.tenant_stats()
        report.stats["tenant"] = {
            "submitted": stats.submitted, "completed": stats.completed,
            "rejected": stats.rejected,
            "batches": stats.batcher.batches,
            "class_served": dict(tenant_stats.class_served),
        }
        return violations

    # ------------------------------------------------------------------
    # Fused-execution pass
    # ------------------------------------------------------------------
    def _fuse_pass(self, scenario: Scenario, report: ChaosReport,
                   injectors: list) -> list[InvariantViolation]:
        """Every fused-execution invariant: kernel differential + cluster."""
        violations = _fuse_kernel_pass(scenario, injectors)
        violations += self._fused_cluster_pass(scenario, report, injectors)
        return violations

    def _fused_cluster_pass(self, scenario: Scenario, report: ChaosReport,
                            injectors: list) -> list[InvariantViolation]:
        """Cluster invariants with replicas executing *fused* sessions.

        Real pixels through the standard serving pipeline on thread
        replicas whose :class:`FunctionalSession` runs the compiled
        kernel, while the serial oracle *interprets* the same per-item
        batches -- so any fused/interpreted divergence (including under
        failover re-execution) surfaces as a bit-identity violation, and
        injected ``fuse.execute`` raises exercise the retry path with
        fusion on.
        """
        dag, model = _fuse_serving_stack()
        rng = np.random.default_rng(
            stable_hash("fuse-cluster", scenario.seed) % (1 << 32))
        requests = []
        for index in range(scenario.items):
            batch = []
            for j in range(scenario.batch):
                # Two payload shapes per run exercise the kernel's
                # shape-group scatter/gather alongside the fast path.
                shape = (28, 28, 3) if (index + j) % 2 == 0 else (26, 30, 3)
                batch.append(InferenceRequest(
                    image_id=f"fuse/img-{index}-{j}",
                    payload=rng.integers(0, 256, size=shape)
                    .astype(np.uint8)))
            requests.append(batch)
        oracle = FunctionalSession("fuse-plan", dag, model)
        oracle.warmup()
        reference = [oracle.execute(batch).predictions
                     for batch in requests]
        plan = FaultPlan(faults=tuple(
            f for f in scenario.faults.faults if f.site == "fuse.execute"))
        injector = FaultInjector(plan)
        injectors.append(injector)
        obs = Observability()

        def factory(worker_id: str, results: MpmcQueue) -> ThreadWorker:
            session = FunctionalSession("fuse-plan", dag, model, fuse=True,
                                        faults=injector, obs=obs)
            session.warmup()
            return ThreadWorker(worker_id, session, results, obs=obs,
                                faults=injector)

        violations: list[InvariantViolation] = []
        dispatcher = Dispatcher(
            factory, num_workers=scenario.workers,
            max_attempts=scenario.max_attempts,
            heartbeat_timeout_s=0.05, monitor_interval_s=0.0,
            breaker_cooldown_s=0.001, obs=obs, faults=injector,
        )
        root = obs.span("chaos.fuse", seed=scenario.seed,
                        items=scenario.items)
        futures = []
        try:
            with obs.activate(root.context):
                for item_requests in requests:
                    futures.append(dispatcher.submit(item_requests))
            try:
                dispatcher.drain(timeout=self._drain_timeout_s)
            except NoHealthyWorkerError as exc:
                violations.append(InvariantViolation(
                    "resolution.exactly_once",
                    f"fused drain stuck: {exc}"))
        finally:
            dispatcher.close(timeout=self._drain_timeout_s)
            root.finish()
        stats = dispatcher.stats()
        outcomes = _future_outcomes(futures)
        violations += check_exactly_once(
            stats, outcomes, bool(plan.actions() & {"raise"}))
        violations += check_predictions(reference, outcomes)
        violations += check_span_tree(obs.spans())
        report.stats["fuse_cluster"] = {
            "submitted": stats.submitted, "completed": stats.completed,
            "failed": stats.failed, "retried": stats.retried,
        }
        return violations

    # ------------------------------------------------------------------
    # Process-worker kill pass
    # ------------------------------------------------------------------
    def _process_pass(self, scenario: Scenario,
                      report: ChaosReport) -> list[InvariantViolation]:
        """Failover across real child processes, plus shm hygiene.

        Two :class:`ProcessWorker` replicas behind a dispatcher; one is
        killed (SIGTERM) right after submission, so any of its pending
        items must fail over to the survivor with exactly-once resolution
        intact -- and once the dispatcher closes, no shared-memory segment
        under either worker's transport prefix may remain in ``/dev/shm``.
        """
        if "fork" not in multiprocessing.get_all_start_methods():
            return []
        spec = SessionSpec()
        oracle = spec.build()
        requests = []
        for index in range(scenario.items):
            requests.append([
                InferenceRequest(image_id=f"proc/img-{index}-{j}")
                for j in range(scenario.batch)
            ])
        reference = [oracle.execute(batch).predictions
                     for batch in requests]
        obs = Observability()
        workers: list[ProcessWorker] = []

        def factory(worker_id: str, results: MpmcQueue) -> ProcessWorker:
            worker = ProcessWorker(worker_id, spec, results)
            workers.append(worker)
            return worker

        violations: list[InvariantViolation] = []
        # Child processes pay real startup/IPC latency, so this pass gets
        # a wider drain bound and heartbeat window than thread replicas.
        drain_timeout = max(self._drain_timeout_s, 30.0)
        dispatcher = Dispatcher(
            factory, num_workers=2, max_attempts=scenario.max_attempts,
            heartbeat_timeout_s=5.0, monitor_interval_s=0.0,
            breaker_cooldown_s=0.001, obs=obs,
        )
        root = obs.span("chaos.proc", seed=scenario.seed,
                        items=scenario.items)
        futures = []
        try:
            with obs.activate(root.context):
                for item_requests in requests:
                    futures.append(dispatcher.submit(item_requests))
            # The crash: terminate one replica while items may still be
            # in flight (which one is seed-determined).
            workers[scenario.seed % len(workers)].kill()
            try:
                dispatcher.drain(timeout=drain_timeout)
            except NoHealthyWorkerError as exc:
                violations.append(InvariantViolation(
                    "resolution.exactly_once",
                    f"proc drain stuck: {exc}"))
        finally:
            dispatcher.close(timeout=drain_timeout)
            root.finish()
        stats = dispatcher.stats()
        outcomes = _future_outcomes(futures)
        violations += check_exactly_once(stats, outcomes,
                                         allow_failures=True)
        violations += check_predictions(reference, outcomes)
        violations += check_span_tree(obs.spans())
        if HAS_SHM and os.path.isdir(SHM_DIR):
            prefixes = tuple(worker.transport.prefix for worker in workers)
            leaked = [name for name in os.listdir(SHM_DIR)
                      if name.startswith(prefixes)]
            if leaked:
                violations.append(InvariantViolation(
                    "fuse.shm_leak",
                    f"{len(leaked)} shared-memory segments survived "
                    f"close: {sorted(leaked)[:4]}"))
        report.stats["proc"] = {
            "submitted": stats.submitted, "completed": stats.completed,
            "failed": stats.failed, "failovers": stats.failovers,
            "worker_deaths": stats.worker_deaths,
        }
        return violations

    # ------------------------------------------------------------------
    # Store pass
    # ------------------------------------------------------------------
    def _store_pass(self, scenario: Scenario,
                    injector: FaultInjector) -> list[InvariantViolation]:
        if not scenario.store_ops:
            return []
        violations: list[InvariantViolation] = []
        root = self._store_root or tempfile.mkdtemp(prefix="chaos-store-")
        cleanup = self._store_root is None
        try:
            store = RenditionStore(root, chunk_frames=4, faults=injector)
            committed: dict[str, np.ndarray] = {}
            version = 0
            for op, arg in scenario.store_ops:
                if op == "put":
                    version += 1
                    rng = np.random.default_rng(
                        stable_hash(scenario.seed, arg, version) % (1 << 32))
                    scores = rng.random((6, 3)).astype(np.float32)
                    try:
                        store.put_scores(_score_key(arg), scores)
                    except ChaosFault:
                        continue  # torn write: the entry must NOT commit
                    committed[arg] = scores
                elif op == "invalidate":
                    prefix = f"scores/{arg}"
                    store.invalidate(prefix)
                    committed = {key: value
                                 for key, value in committed.items()
                                 if not _score_key(key).key()
                                 .startswith(prefix)}
                elif op == "gc":
                    store.gc(min_age_seconds=0.0)
            # Crash safety: whatever torn writes happened, the on-disk
            # manifest must load and a *fresh* handle must serve exactly
            # the committed entries -- before and after a final GC.
            for phase in ("post-ops", "post-gc"):
                try:
                    Manifest.load(Path(root))
                except Exception as exc:
                    violations.append(InvariantViolation(
                        "store.crash_safety",
                        f"manifest unreadable {phase}: {exc}"))
                    break
                fresh = RenditionStore(root, chunk_frames=4)
                for key, expected in committed.items():
                    stored = fresh.get_scores(_score_key(key))
                    if stored is None or \
                            not np.array_equal(stored, expected):
                        violations.append(InvariantViolation(
                            "store.durability",
                            f"committed entry {key!r} lost or corrupt "
                            f"{phase}"))
                if phase == "post-ops":
                    try:
                        fresh.gc(min_age_seconds=0.0)
                    except StoreError as exc:
                        violations.append(InvariantViolation(
                            "store.crash_safety", f"gc failed: {exc}"))
                        break
        finally:
            if cleanup:
                shutil.rmtree(root, ignore_errors=True)
        return violations


# ----------------------------------------------------------------------
# Pass helpers (pure functions of the scenario)
# ----------------------------------------------------------------------
def _future_outcomes(futures) -> list[tuple]:
    """Resolve submitted futures into the invariant checkers' tuples."""
    outcomes = []
    for future in futures:
        if not future.done():
            outcomes.append(("lost", "future never resolved"))
        elif future.exception() is not None:
            outcomes.append(("failed", str(future.exception())))
        else:
            outcomes.append(("ok", future.result().predictions))
    return outcomes


#: Lazily built (dag, model) pair every fused cluster pass shares.
_FUSE_STACK: list = []


def _fuse_serving_stack():
    """The serving pipeline + mini model the fused cluster pass runs.

    Deliberately seed-independent and built once per process: the
    differential surface of the pass is the *preprocessing* (fused kernel
    vs interpretation) and the payload pixels vary per seed, so rebuilding
    the model for every scenario would only burn wall-clock the 200-seed
    smoke sweep cannot afford.
    """
    if not _FUSE_STACK:
        dag = PreprocessingDAG.from_ops(
            serving_pipeline_ops(input_size=24, crop_size=16))
        model = build_mini_resnet(18, num_classes=11, input_size=16, seed=7)
        _FUSE_STACK.append((dag, model))
    return _FUSE_STACK[0]


def _fuse_kernel_pass(scenario: Scenario,
                      injectors: list) -> list[InvariantViolation]:
    """Differential check: the compiled kernel vs per-image interpretation.

    Both the scenario's naive op chain and its optimizer candidate compile
    and execute over a heterogeneous-shape uint8 batch and a NaN-bearing
    float32 batch; every per-image output must match interpretation to the
    byte (``tobytes`` comparison, so NaN payload bits count too).  When the
    plan arms ``fuse.execute``, the kernel must also survive the injected
    :class:`ChaosFault` and produce identical results on the retry.
    """
    if not scenario.dag_ops:
        return []
    violations: list[InvariantViolation] = []
    ops = [_DAG_BUILDERS[spec[0]](spec) for spec in scenario.dag_ops]
    height, width, image_seed = scenario.dag_image
    tensor_spec = TensorSpec(height=height, width=width, channels=3)
    candidates = DagOptimizer().candidates(ops, tensor_spec)
    candidate = candidates[scenario.dag_candidate % len(candidates)]
    rng = np.random.default_rng(image_seed)
    batch = [rng.integers(0, 256, size=(height, width, 3)).astype(np.uint8)
             for _ in range(max(2, scenario.batch))]
    # A second shape exercises the kernel's group/scatter path.
    batch.append(rng.integers(0, 256, size=(height + 2, width + 3, 3))
                 .astype(np.uint8))
    nan_batch = [image.astype(np.float32) for image in batch]
    nan_batch[0][0, 0, :] = np.nan
    for label, chain in (("naive", ops), ("candidate", candidate)):
        dag = PreprocessingDAG.from_ops(list(chain))
        kernel = get_kernel(dag)
        for kind, arrays in (("uint8", batch), ("nan-float32", nan_batch)):
            interpreted = [dag.execute(image) for image in arrays]
            fused = kernel.execute_many(arrays)
            for index, (got, want) in enumerate(zip(fused, interpreted)):
                if got.shape != want.shape or got.dtype != want.dtype \
                        or got.tobytes() != want.tobytes():
                    violations.append(InvariantViolation(
                        "fuse.equivalence",
                        f"{label}/{kind} image {index} diverged from "
                        f"interpretation for kernel {kernel.describe()}"))
                    break
    plan = FaultPlan(faults=tuple(
        f for f in scenario.faults.faults if f.site == "fuse.execute"))
    if plan.faults:
        injector = FaultInjector(plan)
        injectors.append(injector)
        kernel = get_kernel(PreprocessingDAG.from_ops(ops))
        clean = kernel.execute_many(batch)
        retried = None
        for _ in range(len(plan.faults) + 1):
            try:
                retried = kernel.execute_many(batch, faults=injector)
                break
            except ChaosFault:
                continue  # each planned fault fires once; retry converges
        if retried is None or any(
                got.tobytes() != want.tobytes()
                for got, want in zip(retried, clean)):
            violations.append(InvariantViolation(
                "fuse.fault_recovery",
                "fused kernel did not recover identically after an "
                "injected fuse.execute fault"))
    return violations


def _build_requests(scenario: Scenario) -> list[list[InferenceRequest]]:
    requests = []
    for index in range(scenario.items):
        tenant = scenario.tenants[scenario.arrival[index]]
        requests.append([
            InferenceRequest(image_id=f"{tenant}/img-{index}-{j}")
            for j in range(scenario.batch)
        ])
    return requests


def _reference_predictions(scenario: Scenario,
                           requests) -> list[np.ndarray]:
    session = HashSession()
    session.warmup()
    return [session.execute(batch).predictions for batch in requests]


def _queue_probe(scenario: Scenario) -> list[InvariantViolation]:
    """Timeouts must bound *total* block time under a notify storm.

    The storm thread fires spurious wakeups on the queue's conditions --
    the scheduler-dependent interleaving the timeout bug needs, made
    deterministic.  Pre-fix, every wakeup re-armed the full timeout, so
    the blocked call outlived the storm; post-fix it raises at the
    deadline regardless.
    """
    capacity, timeout_s, storm_s = scenario.queue
    queue: MpmcQueue[int] = MpmcQueue(int(capacity))
    for i in range(int(capacity)):
        queue.put(i, timeout=1.0)
    stop = threading.Event()

    def storm() -> None:
        # Notify far more often than timeout_s so a re-armed wait can
        # never expire while the storm lasts; the storm itself is
        # time-bounded so a pre-fix caller escapes (late) instead of
        # hanging the run.
        deadline = time.monotonic() + storm_s
        while not stop.is_set() and time.monotonic() < deadline:
            with queue._lock:
                queue._not_full.notify_all()
                queue._not_empty.notify_all()
            time.sleep(timeout_s / 4)

    thread = threading.Thread(target=storm, daemon=True)
    thread.start()
    violations: list[InvariantViolation] = []
    bound = timeout_s + 0.05
    try:
        start = time.monotonic()
        try:
            queue.put(99, timeout=timeout_s)
            violations.append(InvariantViolation(
                "queue.timeout", "put on a full queue returned without "
                "timing out"))
        except EngineError:
            elapsed = time.monotonic() - start
            if elapsed > bound:
                violations.append(InvariantViolation(
                    "queue.timeout",
                    f"put(timeout={timeout_s}) blocked {elapsed:.3f}s "
                    "under spurious wakeups"))
        for _ in range(int(capacity)):  # same queue: the storm covers get
            queue.get(timeout=1.0)
        start = time.monotonic()
        try:
            queue.get(timeout=timeout_s)
            violations.append(InvariantViolation(
                "queue.timeout", "get on an empty queue returned without "
                "timing out"))
        except EngineError:
            elapsed = time.monotonic() - start
            if elapsed > bound:
                violations.append(InvariantViolation(
                    "queue.timeout",
                    f"get(timeout={timeout_s}) blocked {elapsed:.3f}s "
                    "under spurious wakeups"))
    finally:
        stop.set()
        thread.join(timeout=2.0)
    return violations


_DAG_BUILDERS = {
    "resize": lambda spec: ResizeOp(short_side=int(spec[1])),
    "crop": lambda spec: CenterCropOp(size=int(spec[1])),
    "convert": lambda spec: ConvertDtypeOp("float32"),
    "normalize": lambda spec: NormalizeOp(),
    "reorder": lambda spec: ChannelReorderOp(),
}


def _dag_pass(scenario: Scenario) -> list[InvariantViolation]:
    if not scenario.dag_ops:
        return []
    ops = [_DAG_BUILDERS[spec[0]](spec) for spec in scenario.dag_ops]
    height, width, image_seed = scenario.dag_image
    rng = np.random.default_rng(image_seed)
    image = rng.integers(0, 256, size=(height, width, 3)).astype(np.uint8)
    reference = image
    for op in ops:
        reference = op.apply(reference)
    spec = TensorSpec(height=height, width=width, channels=3)
    candidates = DagOptimizer().candidates(ops, spec)
    candidate = candidates[scenario.dag_candidate % len(candidates)]
    out = PreprocessingDAG.from_ops(candidate).execute(image)
    if out.shape != reference.shape or out.dtype != reference.dtype \
            or not np.array_equal(out, reference):
        return [InvariantViolation(
            "dag.equivalence",
            f"candidate {[op.name for op in candidate]} diverged from "
            f"naive {[op.name for op in ops]}")]
    return []


def _drift_pass(scenario: Scenario) -> list[InvariantViolation]:
    if not scenario.drift:
        return []
    violations: list[InvariantViolation] = []
    calibrator = OnlineCalibrator()
    for stage, per_image in _DRIFT_BASELINES.items():
        subject = "161-jpeg-q75" if stage == "decode" else "resnet-18"
        calibrator.set_baseline(ObservationKey(stage, subject), per_image)
    for phase in scenario.drift:
        per_image = _DRIFT_BASELINES[phase.stage] * phase.scale
        for _ in range(phase.observations):
            calibrator.observe(StageObservation(
                stage=phase.stage, subject=phase.subject,
                images=phase.images,
                seconds=per_image * phase.images, source="chaos"))
    scales = calibrator.observed_costs().scales()
    for key, scale in scales.items():
        if not (1.0 / 64.0 <= scale <= 64.0):
            violations.append(InvariantViolation(
                "drift.bounds",
                f"{key} calibrated to scale {scale}, outside the "
                "calibrator's hard bounds"))
    # Convergence: after one acknowledge of the final scales, the
    # detector must stop demanding replans for those same scales.
    detector = DriftDetector(threshold=1.5, hysteresis=2)
    replans = 0
    for _ in range(6):
        if detector.update(scales):
            replans += 1
            detector.acknowledge(scales)
    if replans > 1:
        violations.append(InvariantViolation(
            "drift.convergence",
            f"{replans} replans for one stable scale set -- the detector "
            "never converged"))
    return violations


def _score_key(key: str) -> ScoreKey:
    return ScoreKey(item=key, model="resnet-18", rendition="161-jpeg-q75")


def dump_report(report: ChaosReport, directory: str | Path) -> Path:
    """Write a failing run's postmortem bundle + ``scenario.json``.

    Returns the bundle directory.  The bundle is the cluster pass's
    flight-recorder dump (spans, events, metrics, manifest) with the
    scenario alongside, so ``chaos replay --scenario <dir>/scenario.json``
    reruns the exact workload.
    """
    target = Path(directory)
    recorder = report.stats.get("recorder")
    if isinstance(recorder, FlightRecorder):
        recorder.dump(target, reason="invariant_violation",
                      seed=report.scenario.seed,
                      violations=[str(v) for v in report.violations])
    else:
        target.mkdir(parents=True, exist_ok=True)
    payload = report.to_dict()
    (target / "scenario.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target
