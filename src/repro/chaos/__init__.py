"""Smol-Chaos: seed-driven scenario fuzzing + fault injection.

The stack composes hot-swap, failover, replanning, SLO triggers, and
store invalidation -- and the bug studies of comparable systems find most
real failures exactly in those cross-component interaction paths, not in
single modules.  This package is the regression net over those paths:

* :mod:`~repro.chaos.scenario` -- a deterministic generator
  (:class:`ScenarioGen`) composing randomized workloads from typed
  dimensions: cluster shape and tenant/arrival mix, preprocessing-DAG
  recipes, drift schedules, store op sequences, and a
  :class:`~repro.chaos.faults.FaultPlan`;
* :mod:`~repro.chaos.faults` -- the injection layer: NULL-by-default
  :class:`FaultHook` seams in ``MpmcQueue``, ``ThreadWorker``,
  ``Dispatcher``, and ``RenditionStore`` through which a
  :class:`FaultInjector` fires kills, stalls, injected failures, and torn
  manifest writes;
* :mod:`~repro.chaos.runner` -- :class:`ChaosRunner` executes one
  scenario end to end and checks the global invariants
  (:mod:`~repro.chaos.invariants`): bit-identical scores vs. the
  unfaulted serial engine, exactly-once resolution, connected span trees,
  crash-safe manifests, convergent replans;
* :mod:`~repro.chaos.shrink` -- greedy minimization of failing seeds,
  dumped with a flight-recorder postmortem bundle.

CLI entry points: ``repro chaos run --seeds N``, ``chaos replay <seed>``,
``chaos shrink <seed>`` (see ``docs/chaos.md``).
"""

from repro.chaos.faults import (
    NULL_FAULTS,
    ChaosFault,
    Fault,
    FaultClock,
    FaultHook,
    FaultInjector,
    FaultPlan,
    VirtualFaultClock,
)
from repro.chaos.invariants import InvariantViolation
from repro.chaos.scenario import DriftPhase, Scenario, ScenarioGen
from repro.chaos.shrink import ShrinkResult, shrink, shrink_candidates

# The runner pulls in the cluster/store layers, and those layers import
# this package for the NULL_FAULTS seam -- so the runner exports resolve
# lazily (PEP 562) to keep `repro.chaos.faults` importable from below.
_RUNNER_EXPORTS = ("ChaosReport", "ChaosRunner", "HashSession",
                   "dump_report")


def __getattr__(name: str):
    if name in _RUNNER_EXPORTS:
        from repro.chaos import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ChaosFault",
    "ChaosReport",
    "ChaosRunner",
    "DriftPhase",
    "Fault",
    "FaultClock",
    "FaultHook",
    "FaultInjector",
    "FaultPlan",
    "HashSession",
    "InvariantViolation",
    "NULL_FAULTS",
    "Scenario",
    "ScenarioGen",
    "ShrinkResult",
    "VirtualFaultClock",
    "dump_report",
    "shrink",
    "shrink_candidates",
]
