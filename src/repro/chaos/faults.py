"""Fault injection: NULL-by-default seams the chaos harness drives.

Components that participate in chaos testing accept a ``faults=`` handle
(default :data:`NULL_FAULTS`, mirroring :data:`repro.obs.NULL_OBS`) and
call :meth:`FaultHook.hit` at named *sites* on their hot paths::

    self._faults.hit("worker.execute", worker=self, item_id=item.item_id)

The null hook makes every site a no-op attribute check, so production
paths pay nothing.  Under chaos, a :class:`FaultInjector` built from a
:class:`FaultPlan` counts hits per site and fires the planned action --
a slowdown/stall, an injected :class:`ChaosFault`, a worker kill, or a
torn manifest write -- at the planned hit index.  Plans are plain data
(``to_dict``/``from_dict``), so a failing scenario replays bit-for-bit.

Sites instrumented across the stack:

======================  ====================================================
``queue.put/get``       :class:`~repro.inference.mpmc.MpmcQueue` entry
``worker.execute``      :class:`~repro.cluster.worker.ThreadWorker`, before
                        the session runs (kill here simulates a crash
                        mid-batch; raise simulates a session failure)
``worker.ack``          after the outcome is delivered but before the
                        worker acknowledges it (kill here opens the
                        duplicate-delivery window failover must absorb)
``dispatcher.outcome``  :meth:`~repro.cluster.dispatcher.Dispatcher`
                        collector, after the in-flight lookup (stall here
                        races the collector against the health monitor)
``store.manifest.save`` :class:`~repro.store.store.RenditionStore`, inside
                        the manifest lock before the commit (torn writes)
``serving.admit``       :class:`~repro.serving.queue.AdmissionQueue`, on the
                        submitter's thread before the enqueue (a raise is a
                        clean shed; a stall backpressures the submitter)
``serving.batch``       :class:`~repro.serving.batcher.MicroBatcher`, at the
                        top of ``next_batch`` before the first dequeue (a
                        raise aborts the attempt with no request in hand)
``fuse.execute``        :class:`~repro.fuse.kernel.FusedKernel`, once per
                        executed batch before any segment runs (a raise
                        fails the batch; a stall holds the executing thread)
``tenant.enqueue``      :class:`~repro.tenant.scheduler.DrrScheduler`, on
                        the submitter's thread before an item enters its
                        class queue (a raise is a clean shed; a stall
                        backpressures the submitter)
``tenant.batch``        :class:`~repro.tenant.scheduler.DrrScheduler`, at
                        the top of ``next_batch`` before any dequeue (a
                        raise aborts the attempt with no request in hand)
======================  ====================================================
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = [
    "ChaosFault",
    "Fault",
    "FaultClock",
    "FaultHook",
    "FaultInjector",
    "FaultPlan",
    "NULL_FAULTS",
    "VirtualFaultClock",
]

#: Actions a fault may perform when its site/hit match.
FAULT_ACTIONS = ("stall", "raise", "kill", "torn-manifest")


class ChaosFault(ReproError):
    """The error an injected ``"raise"`` / ``"torn-manifest"`` fault throws.

    Deliberately a :class:`~repro.errors.ReproError` subclass: components
    must survive it the same way they survive any runtime failure, and
    invariant checks can tell injected failures from organic bugs.
    """


class FaultHook:
    """Null fault seam: every :meth:`hit` is a no-op.

    The base class *is* the null object (:data:`NULL_FAULTS` is a shared
    instance); :class:`FaultInjector` overrides :meth:`hit` to fire
    planned faults, and tests subclass it to park threads on events at
    exact interleaving points.
    """

    __slots__ = ()

    def hit(self, site: str, **ctx) -> None:
        """Called by instrumented components at ``site``; does nothing."""


#: The process-wide disabled-faults singleton (the default wiring).
NULL_FAULTS = FaultHook()


class FaultClock:
    """The clock stalls sleep on; swappable so tests can run stall-free."""

    def now(self) -> float:
        """Monotonic seconds."""
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        """Block the calling thread for ``seconds``."""
        if seconds > 0:
            time.sleep(seconds)


class VirtualFaultClock(FaultClock):
    """A clock whose sleeps only advance a counter (instant stalls).

    Lets unit tests assert *which* faults fired, and for how long, without
    paying the wall-clock cost of the stalls.
    """

    def __init__(self) -> None:
        self._elapsed = 0.0
        self._lock = threading.Lock()

    @property
    def elapsed(self) -> float:
        """Total virtual seconds slept so far."""
        with self._lock:
            return self._elapsed

    def now(self) -> float:
        with self._lock:
            return self._elapsed

    def sleep(self, seconds: float) -> None:
        with self._lock:
            self._elapsed += max(0.0, seconds)


@dataclass(frozen=True)
class Fault:
    """One planned fault: fire ``action`` at the ``at_hit``-th hit of ``site``.

    Attributes
    ----------
    site:
        The seam name the fault arms (see the module table).
    action:
        ``"stall"`` (sleep ``seconds`` on the hitting thread), ``"raise"``
        (throw :class:`ChaosFault`), ``"kill"`` (call ``ctx["worker"]
        .kill()``), or ``"torn-manifest"`` (write a garbage ``.tmp``
        manifest under ``ctx["root"]`` and throw, simulating a writer
        crashing mid-save).
    at_hit:
        1-based hit index at the site when the fault fires; each fault
        fires at most once.
    seconds:
        Stall duration for ``"stall"`` (ignored otherwise).
    """

    site: str
    action: str
    at_hit: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ReproError(
                f"unknown fault action {self.action!r} "
                f"(expected one of {FAULT_ACTIONS})"
            )
        if self.at_hit < 1:
            raise ReproError("at_hit is 1-based and must be >= 1")
        if self.seconds < 0:
            raise ReproError("fault seconds must be non-negative")

    def to_dict(self) -> dict:
        """Plain-data form (JSON-safe)."""
        return {"site": self.site, "action": self.action,
                "at_hit": self.at_hit, "seconds": self.seconds}

    @classmethod
    def from_dict(cls, data: dict) -> "Fault":
        """Inverse of :meth:`to_dict`."""
        return cls(site=data["site"], action=data["action"],
                   at_hit=int(data.get("at_hit", 1)),
                   seconds=float(data.get("seconds", 0.0)))


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, replayable set of :class:`Fault` records."""

    faults: tuple[Fault, ...] = ()

    def __len__(self) -> int:
        return len(self.faults)

    def sites(self) -> set[str]:
        """Every site this plan arms."""
        return {fault.site for fault in self.faults}

    def actions(self) -> set[str]:
        """Every action this plan can perform."""
        return {fault.action for fault in self.faults}

    def to_dict(self) -> dict:
        """Plain-data form (JSON-safe)."""
        return {"faults": [fault.to_dict() for fault in self.faults]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(faults=tuple(Fault.from_dict(item)
                                for item in data.get("faults", [])))


@dataclass(frozen=True)
class FiredFault:
    """Evidence one fault fired: the fault plus the hit that triggered it."""

    fault: Fault
    hit: int
    context: dict = field(default_factory=dict)


class FaultInjector(FaultHook):
    """A live :class:`FaultHook` executing a :class:`FaultPlan`.

    Thread-safe: hit counters and the fired log are guarded by a lock,
    and each planned fault fires exactly once even under concurrent hits
    of its site.  The injector records every firing (:attr:`fired`), so a
    run's report can show which faults actually landed -- a fault whose
    hit index was never reached is planned-but-idle, not a harness bug.
    """

    def __init__(self, plan: FaultPlan,
                 clock: FaultClock | None = None) -> None:
        self._plan = plan
        self._clock = clock if clock is not None else FaultClock()
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {}
        self._armed: dict[str, list[Fault]] = {}
        for fault in plan.faults:
            self._armed.setdefault(fault.site, []).append(fault)
        self._fired: list[FiredFault] = []

    @property
    def plan(self) -> FaultPlan:
        """The plan this injector executes."""
        return self._plan

    @property
    def fired(self) -> list[FiredFault]:
        """Faults that actually fired, in firing order."""
        with self._lock:
            return list(self._fired)

    def hits(self, site: str) -> int:
        """How many times ``site`` has been hit so far."""
        with self._lock:
            return self._hits.get(site, 0)

    def hit(self, site: str, **ctx) -> None:
        """Count the hit; fire (at most) the one fault armed for it."""
        with self._lock:
            count = self._hits.get(site, 0) + 1
            self._hits[site] = count
            due = None
            for fault in self._armed.get(site, ()):
                if fault.at_hit == count:
                    due = fault
                    break
            if due is not None:
                self._armed[site].remove(due)
                self._fired.append(FiredFault(fault=due, hit=count,
                                              context=dict(ctx)))
        if due is not None:
            self._perform(due, ctx)

    # -- actions (outside the lock: stalls and kills must not serialize) --
    def _perform(self, fault: Fault, ctx: dict) -> None:
        if fault.action == "stall":
            self._clock.sleep(fault.seconds)
            return
        if fault.action == "raise":
            raise ChaosFault(
                f"injected fault at {fault.site} (hit {fault.at_hit})"
            )
        if fault.action == "kill":
            worker = ctx.get("worker")
            if worker is not None:
                worker.kill()
            return
        if fault.action == "torn-manifest":
            root = ctx.get("root")
            if root is not None:
                torn = os.path.join(
                    str(root),
                    f"manifest.json.tmp-chaos-{os.getpid()}"
                    f"-{threading.get_ident()}",
                )
                with open(torn, "w", encoding="utf-8") as handle:
                    handle.write('{"schema_version": 1, "entries": {"torn')
            raise ChaosFault(
                f"injected torn manifest write at {fault.site} "
                f"(hit {fault.at_hit})"
            )
