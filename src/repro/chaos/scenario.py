"""Scenario model + seed-driven generator for the chaos harness.

A :class:`Scenario` is plain frozen data: every dimension of one randomized
run -- the cluster workload (items, batch size, replicas, tenant/arrival
mix), a preprocessing DAG recipe, a drift schedule, a store op sequence, an
optional contended-queue probe, and the :class:`~repro.chaos.faults
.FaultPlan` to inject.  ``ScenarioGen.generate(seed)`` is a pure function
of the seed (``random.Random(seed)``), so ``chaos replay <seed>`` rebuilds
the identical scenario, and a scenario serializes to JSON
(:meth:`Scenario.to_dict`) for postmortem bundles.

Generated scenarios are *survivable by construction*: kill faults never
exceed ``workers - 1`` (the pool must retain a replica to fail over to)
and injected session failures stay below ``max_attempts`` per item, so a
clean stack passes every invariant on every seed -- a failing seed means
a real bug, not an impossible workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.chaos.faults import Fault, FaultPlan
from repro.errors import ReproError

__all__ = [
    "DriftPhase",
    "Scenario",
    "ScenarioGen",
]

#: Sites a generated stall fault may land on (all tolerate delay).
_STALL_SITES = ("queue.put", "queue.get", "worker.execute",
                "dispatcher.outcome")

#: Sites the serving pass hits (armed only when the scenario serves).
_SERVING_SITES = ("serving.admit", "serving.batch", "fuse.execute")

#: Sites the multi-tenant serving pass hits (armed only when it runs).
_TENANT_SITES = ("tenant.enqueue", "tenant.batch")

#: Tenant names the arrival mix draws from.
_TENANTS = ("tenant-a", "tenant-b", "tenant-c")


@dataclass(frozen=True)
class DriftPhase:
    """One phase of a drift schedule fed to the calibrator.

    ``scale`` multiplies the baseline per-image cost of ``stage`` for
    ``observations`` consecutive observations of ``images`` images each.
    """

    stage: str
    subject: str
    scale: float
    observations: int
    images: int = 16

    def to_dict(self) -> dict:
        """Plain-data form (JSON-safe)."""
        return {"stage": self.stage, "subject": self.subject,
                "scale": self.scale, "observations": self.observations,
                "images": self.images}

    @classmethod
    def from_dict(cls, data: dict) -> "DriftPhase":
        """Inverse of :meth:`to_dict`."""
        return cls(stage=data["stage"], subject=data["subject"],
                   scale=float(data["scale"]),
                   observations=int(data["observations"]),
                   images=int(data.get("images", 16)))


@dataclass(frozen=True)
class Scenario:
    """One fully specified chaos run (see the module docstring).

    Attributes
    ----------
    seed:
        The generator seed this scenario came from (identity for replay).
    items / batch / workers / max_attempts:
        Cluster workload shape: ``items`` micro-batches of ``batch``
        requests across ``workers`` replicas with ``max_attempts`` tries.
    tenants / arrival:
        The tenant names in play and, per item, which tenant submitted it
        (the arrival mix; ``len(arrival) == items``).
    dag_ops / dag_image / dag_candidate:
        Preprocessing DAG recipe (op specs), the input image spec
        ``(height, width, image_seed)``, and which optimizer candidate to
        execute against the naive ordering.
    drift:
        Drift schedule phases for the calibrator/detector pass.
    store_ops:
        Store op sequence: ``("put", key)``, ``("invalidate", prefix)``,
        or ``("gc", "")``.
    queue:
        Contended-queue probe ``(capacity, timeout_s, storm_s)``, or ``()``
        to skip the probe on this seed.
    serving:
        When True the run includes the serving pass: the scenario's items
        through a live :class:`~repro.serving.server.SmolServer` with the
        ``serving.admit`` / ``serving.batch`` seams armed.
    fuse:
        When True (and the runner's ``fuse_mode`` is ``"seed"``) the fused
        batch kernels execute wherever a pass supports them, and the
        fused-vs-interpreted differential pass runs on the scenario's DAG.
    proc_kill:
        When True the run includes the process-worker kill pass: real
        child-process replicas, one killed mid-run, with failover,
        exactly-once, and no-leaked-shm-segment invariants.  Rides a small
        minority of seeds (forking is expensive next to thread workers).
    tenant_serving / tenant_classes:
        When ``tenant_serving`` is True the run includes the multi-tenant
        serving pass: the scenario's tenants submit through a DRR-scheduled
        :class:`~repro.serving.server.SmolServer` with the
        ``tenant.enqueue`` / ``tenant.batch`` seams armed, checked for
        exactly-once bit-identical answers and no starved class.
        ``tenant_classes`` maps each tenant (by position) to a priority
        class index (0=interactive, 1=standard, 2=batch).
    faults:
        The fault plan injected during the cluster and store passes.
    """

    seed: int
    items: int
    batch: int
    workers: int
    max_attempts: int = 3
    tenants: tuple[str, ...] = ("tenant-a",)
    arrival: tuple[int, ...] = ()
    dag_ops: tuple[tuple, ...] = ()
    dag_image: tuple[int, int, int] = (16, 16, 0)
    dag_candidate: int = 0
    drift: tuple[DriftPhase, ...] = ()
    store_ops: tuple[tuple[str, str], ...] = ()
    queue: tuple = ()
    serving: bool = False
    fuse: bool = False
    proc_kill: bool = False
    tenant_serving: bool = False
    tenant_classes: tuple[int, ...] = ()
    faults: FaultPlan = field(default_factory=FaultPlan)

    def __post_init__(self) -> None:
        if self.items < 1 or self.batch < 1 or self.workers < 1:
            raise ReproError("items, batch, and workers must be >= 1")
        if self.max_attempts < 1:
            raise ReproError("max_attempts must be >= 1")
        if len(self.arrival) != self.items:
            raise ReproError("arrival must assign a tenant to every item")
        if any(t < 0 or t >= len(self.tenants) for t in self.arrival):
            raise ReproError("arrival indexes out of tenant range")
        if self.tenant_serving:
            if len(self.tenant_classes) != len(self.tenants):
                raise ReproError(
                    "tenant_classes must assign a class to every tenant")
            if any(c < 0 or c > 2 for c in self.tenant_classes):
                raise ReproError("tenant_classes indexes out of range")

    def kill_faults(self) -> int:
        """Planned kill-action faults (bounded by ``workers - 1``)."""
        return sum(1 for f in self.faults.faults if f.action == "kill")

    def dimensions(self) -> dict[str, int]:
        """Size of every shrinkable dimension (the shrinker's partial order).

        A shrunk scenario must be <= the original in *every* key returned
        here; the hypothesis property test in ``tests/property`` holds the
        shrinker to that contract.
        """
        return {
            "items": self.items,
            "batch": self.batch,
            "workers": self.workers,
            "tenants": len(self.tenants),
            "dag_ops": len(self.dag_ops),
            "drift_phases": len(self.drift),
            "store_ops": len(self.store_ops),
            "faults": len(self.faults),
            "queue_probe": 1 if self.queue else 0,
            "serving": 1 if self.serving else 0,
            "fuse": 1 if self.fuse else 0,
            "proc_kill": 1 if self.proc_kill else 0,
            "tenant_serving": 1 if self.tenant_serving else 0,
        }

    def to_dict(self) -> dict:
        """Plain-data form (JSON-safe), inverse of :meth:`from_dict`."""
        return {
            "seed": self.seed,
            "items": self.items,
            "batch": self.batch,
            "workers": self.workers,
            "max_attempts": self.max_attempts,
            "tenants": list(self.tenants),
            "arrival": list(self.arrival),
            "dag_ops": [list(op) for op in self.dag_ops],
            "dag_image": list(self.dag_image),
            "dag_candidate": self.dag_candidate,
            "drift": [phase.to_dict() for phase in self.drift],
            "store_ops": [list(op) for op in self.store_ops],
            "queue": list(self.queue),
            "serving": self.serving,
            "fuse": self.fuse,
            "proc_kill": self.proc_kill,
            "tenant_serving": self.tenant_serving,
            "tenant_classes": list(self.tenant_classes),
            "faults": self.faults.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Rebuild a scenario serialized by :meth:`to_dict`."""
        return cls(
            seed=int(data["seed"]),
            items=int(data["items"]),
            batch=int(data["batch"]),
            workers=int(data["workers"]),
            max_attempts=int(data.get("max_attempts", 3)),
            tenants=tuple(data.get("tenants", ("tenant-a",))),
            arrival=tuple(int(t) for t in data.get("arrival", ())),
            dag_ops=tuple(tuple(op) for op in data.get("dag_ops", ())),
            dag_image=tuple(data.get("dag_image", (16, 16, 0))),
            dag_candidate=int(data.get("dag_candidate", 0)),
            drift=tuple(DriftPhase.from_dict(p)
                        for p in data.get("drift", ())),
            store_ops=tuple(tuple(op) for op in data.get("store_ops", ())),
            queue=tuple(data.get("queue", ())),
            serving=bool(data.get("serving", False)),
            fuse=bool(data.get("fuse", False)),
            proc_kill=bool(data.get("proc_kill", False)),
            tenant_serving=bool(data.get("tenant_serving", False)),
            tenant_classes=tuple(int(c)
                                 for c in data.get("tenant_classes", ())),
            faults=FaultPlan.from_dict(data.get("faults", {})),
        )


class ScenarioGen:
    """Deterministic scenario generator: ``generate(seed)`` is pure.

    Parameters bound the workload so a single scenario runs in tens of
    milliseconds (the 1000-seed sweep and the CI smoke job both depend on
    that); ``fault_rate`` is the probability a seed carries any faults at
    all, and ``queue_rate`` the probability it carries the contended-queue
    probe (the probe costs real wall-clock, so it rides a minority of
    seeds).  ``serving_rate`` / ``fuse_rate`` / ``proc_rate`` gate the
    serving pass, fused execution, and the process-worker kill pass the
    same way -- ``proc_rate`` is smallest because forking real child
    processes dominates a scenario's wall-clock.
    """

    def __init__(self, max_items: int = 6, max_batch: int = 4,
                 max_workers: int = 3, fault_rate: float = 0.7,
                 queue_rate: float = 0.125, serving_rate: float = 0.4,
                 fuse_rate: float = 0.5, proc_rate: float = 0.05,
                 tenant_rate: float = 0.35) -> None:
        if max_items < 1 or max_batch < 1 or max_workers < 1:
            raise ReproError("generator bounds must be >= 1")
        self._max_items = max_items
        self._max_batch = max_batch
        self._max_workers = max_workers
        self._fault_rate = fault_rate
        self._queue_rate = queue_rate
        self._serving_rate = serving_rate
        self._fuse_rate = fuse_rate
        self._proc_rate = proc_rate
        self._tenant_rate = tenant_rate

    def generate(self, seed: int) -> Scenario:
        """The scenario for ``seed`` (same seed, same scenario, always)."""
        rng = random.Random(seed)
        items = rng.randint(1, self._max_items)
        batch = rng.randint(1, self._max_batch)
        workers = rng.randint(1, self._max_workers)
        tenants = tuple(_TENANTS[:rng.randint(1, len(_TENANTS))])
        arrival = tuple(rng.randrange(len(tenants)) for _ in range(items))
        dag_ops, dag_image = self._dag(rng)
        scenario = Scenario(
            seed=seed, items=items, batch=batch, workers=workers,
            max_attempts=rng.randint(2, 3),
            tenants=tenants, arrival=arrival,
            dag_ops=dag_ops, dag_image=dag_image,
            dag_candidate=rng.randrange(1 << 16),
            drift=self._drift(rng),
            store_ops=self._store_ops(rng),
            queue=((1, 0.02, 0.1) if rng.random() < self._queue_rate
                   else ()),
        )
        scenario = replace(scenario, faults=self._faults(rng, scenario))
        # The serving / fuse / proc-kill dimensions (and the serving-site
        # faults they unlock) draw *after* everything above, so pre-existing
        # seeds keep their exact historical workloads and fault plans.
        serving = rng.random() < self._serving_rate
        fuse = rng.random() < self._fuse_rate
        proc_kill = rng.random() < self._proc_rate
        extra = self._serving_faults(rng, scenario) if serving else ()
        # The multi-tenant dimension draws after every earlier dimension
        # (same append-only discipline), so its addition left historical
        # seeds' scenarios bit-identical.
        tenant_serving = rng.random() < self._tenant_rate
        tenant_classes = ()
        tenant_extra: tuple[Fault, ...] = ()
        if tenant_serving:
            tenant_classes = tuple(rng.randrange(3)
                                   for _ in range(len(tenants)))
            tenant_extra = self._tenant_faults(rng, scenario)
        return replace(
            scenario, serving=serving, fuse=fuse, proc_kill=proc_kill,
            tenant_serving=tenant_serving, tenant_classes=tenant_classes,
            faults=FaultPlan(
                faults=scenario.faults.faults + extra + tenant_extra),
        )

    # -- dimension generators -------------------------------------------
    def _dag(self, rng: random.Random) -> tuple[tuple, tuple]:
        # The legal serving order (resize, crop, convert, normalize,
        # reorder) with each stage optionally present -- the same chain
        # family the DAG-equivalence property tests fuzz.
        height = rng.randint(16, 32)
        width = rng.randint(16, 32)
        ops: list[tuple] = []
        short_side = None
        if rng.random() < 0.6:
            short_side = rng.randint(8, 16)
            ops.append(("resize", short_side))
        max_crop = short_side if short_side is not None \
            else min(height, width)
        if rng.random() < 0.6:
            ops.append(("crop", rng.randint(4, max_crop)))
        if rng.random() < 0.6:
            ops.append(("convert",))
        if rng.random() < 0.6:
            ops.append(("normalize",))
        if rng.random() < 0.6:
            ops.append(("reorder",))
        if not ops:
            ops.append(("normalize",))
        return tuple(ops), (height, width, rng.randrange(1 << 16))

    def _drift(self, rng: random.Random) -> tuple[DriftPhase, ...]:
        phases = []
        for _ in range(rng.randint(0, 3)):
            stage = rng.choice(("decode", "inference"))
            phases.append(DriftPhase(
                stage=stage,
                subject="161-jpeg-q75" if stage == "decode" else "resnet-18",
                scale=round(rng.uniform(0.5, 4.0), 3),
                observations=rng.randint(3, 6),
            ))
        return tuple(phases)

    def _store_ops(self, rng: random.Random) -> tuple[tuple[str, str], ...]:
        ops: list[tuple[str, str]] = []
        keys = [f"key-{i}" for i in range(3)]
        for _ in range(rng.randint(0, 6)):
            roll = rng.random()
            if roll < 0.6:
                ops.append(("put", rng.choice(keys)))
            elif roll < 0.8:
                ops.append(("invalidate", rng.choice(("key-", "key-0"))))
            else:
                ops.append(("gc", ""))
        return tuple(ops)

    def _faults(self, rng: random.Random,
                scenario: Scenario) -> FaultPlan:
        if rng.random() >= self._fault_rate:
            return FaultPlan()
        # Duplicate-outcome ambush (single-item shapes only, so fault hit
        # counts line up with attempts): a raise burns the item's first
        # attempt, a kill at the ack seam crashes the replica *after* the
        # retried outcome was delivered but while the item is still
        # pending, and a stall in the collector holds that outcome in
        # hand while drain's health pass fails the orphan (attempts
        # exhausted).  Exactly-once resolution then rests entirely on the
        # dispatcher's atomic pop-and-recheck.
        if scenario.workers >= 2 and scenario.max_attempts == 2 \
                and scenario.items == 1 and rng.random() < 0.3:
            return FaultPlan(faults=(
                Fault(site="worker.execute", action="raise", at_hit=1),
                Fault(site="worker.ack", action="kill", at_hit=2),
                Fault(site="dispatcher.outcome", action="stall", at_hit=2,
                      seconds=0.03),
            ))
        faults: list[Fault] = []
        executions = scenario.items  # first-attempt hits at worker.execute
        # Kills: strictly fewer than the pool size, so failover always has
        # a surviving replica to land on.
        for _ in range(rng.randint(0, min(2, scenario.workers - 1))):
            site = rng.choice(("worker.execute", "worker.ack"))
            faults.append(Fault(site=site, action="kill",
                                at_hit=rng.randint(1, max(1, executions))))
        # Session failures: at most max_attempts - 1 per run keeps every
        # item resolvable even if all failures land on one item.
        for _ in range(rng.randint(0, scenario.max_attempts - 1)):
            faults.append(Fault(site="worker.execute", action="raise",
                                at_hit=rng.randint(1, max(1, executions))))
        # Stalls: short (<= 5 ms) delays that shake out ordering
        # assumptions without dominating the run's wall-clock.
        for _ in range(rng.randint(0, 2)):
            faults.append(Fault(
                site=rng.choice(_STALL_SITES), action="stall",
                at_hit=rng.randint(1, max(1, executions * 2)),
                seconds=round(rng.uniform(0.001, 0.005), 4),
            ))
        # Torn manifest writes: only meaningful when the scenario puts.
        puts = sum(1 for op, _ in scenario.store_ops if op == "put")
        if puts and rng.random() < 0.5:
            faults.append(Fault(site="store.manifest.save",
                                action="torn-manifest",
                                at_hit=rng.randint(1, puts)))
        return FaultPlan(faults=tuple(faults))

    def _serving_faults(self, rng: random.Random,
                        scenario: Scenario) -> tuple[Fault, ...]:
        # Serving-pass seams: a raise at serving.admit is a clean shed the
        # pass resubmits past; a raise at serving.batch is absorbed by the
        # serving loop; a raise at fuse.execute fails one micro-batch (the
        # pass resubmits its requests).  Each planned fault fires once, so
        # bounded retries always converge.  at_hit is bounded by the total
        # request count -- later hits simply stay planned-but-idle when
        # batching lands fewer attempts at a site.
        total = scenario.items * scenario.batch
        faults: list[Fault] = []
        for _ in range(rng.randint(0, 2)):
            site = rng.choice(_SERVING_SITES)
            if rng.random() < 0.5:
                faults.append(Fault(site=site, action="raise",
                                    at_hit=rng.randint(1, max(1, total))))
            else:
                faults.append(Fault(
                    site=site, action="stall",
                    at_hit=rng.randint(1, max(1, total)),
                    seconds=round(rng.uniform(0.001, 0.004), 4),
                ))
        return tuple(faults)

    def _tenant_faults(self, rng: random.Random,
                       scenario: Scenario) -> tuple[Fault, ...]:
        # DRR-scheduler seams: a raise at tenant.enqueue sheds one submit
        # (the pass resubmits), a raise at tenant.batch aborts one batching
        # attempt before any dequeue (the serving loop retries), and a
        # stall at either site delays a class's progress -- exactly the
        # wedge the no-starvation invariant must survive.
        total = scenario.items * scenario.batch
        faults: list[Fault] = []
        for _ in range(rng.randint(0, 2)):
            site = rng.choice(_TENANT_SITES)
            if rng.random() < 0.5:
                faults.append(Fault(site=site, action="raise",
                                    at_hit=rng.randint(1, max(1, total))))
            else:
                faults.append(Fault(
                    site=site, action="stall",
                    at_hit=rng.randint(1, max(1, total)),
                    seconds=round(rng.uniform(0.001, 0.004), 4),
                ))
        return tuple(faults)
