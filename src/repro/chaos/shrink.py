"""Greedy scenario shrinking: minimize a failing seed's reproducer.

A raw failing scenario carries every dimension its seed happened to draw
-- most of it noise.  :func:`shrink` repeatedly tries to remove or halve
one dimension at a time (ddmin-style greedy descent) and keeps any
reduction that *still fails the same invariant*, until no single-step
reduction reproduces.  The result is ordered below the original in every
generator dimension (:meth:`Scenario.dimensions`), a contract the
hypothesis property suite holds the shrinker to.

Re-running a candidate means re-running real threads, so the predicate is
"fails the target invariant at least once in ``retries`` runs" -- a
schedule-dependent failure that reproduces only sometimes still counts,
and a reduction that merely makes it rarer is rejected.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator

from repro.chaos.faults import FaultPlan
from repro.chaos.scenario import Scenario

__all__ = ["ShrinkResult", "shrink", "shrink_candidates"]


def shrink_candidates(scenario: Scenario) -> Iterator[Scenario]:
    """Single-step reductions of ``scenario``, most aggressive first.

    Every yielded candidate is a valid scenario and is <= the original in
    every dimension; validity couplings (arrival indexes vs. tenants, kill
    faults vs. workers) are re-normalized per candidate.
    """
    # Drop whole optional dimensions first: the biggest wins come from
    # discovering an entire subsystem is irrelevant to the failure.
    if scenario.proc_kill:
        yield _reduced(scenario, proc_kill=False)
    if scenario.tenant_serving:
        yield _reduced(scenario, tenant_serving=False)
    if scenario.serving:
        yield _reduced(scenario, serving=False)
    if scenario.fuse:
        yield _reduced(scenario, fuse=False)
    if scenario.queue:
        yield _reduced(scenario, queue=())
    if scenario.store_ops:
        yield _reduced(scenario, store_ops=())
    if scenario.drift:
        yield _reduced(scenario, drift=())
    if len(scenario.dag_ops) > 1:
        yield _reduced(scenario, dag_ops=(scenario.dag_ops[-1],))
    if scenario.faults.faults:
        yield _reduced(scenario, faults=FaultPlan())
    # Then element-wise removal from the sequence dimensions.
    for index in range(len(scenario.faults.faults)):
        remaining = (scenario.faults.faults[:index]
                     + scenario.faults.faults[index + 1:])
        yield _reduced(scenario, faults=FaultPlan(faults=remaining))
    for index in range(len(scenario.store_ops)):
        yield _reduced(scenario,
                       store_ops=(scenario.store_ops[:index]
                                  + scenario.store_ops[index + 1:]))
    for index in range(len(scenario.drift)):
        yield _reduced(scenario, drift=(scenario.drift[:index]
                                        + scenario.drift[index + 1:]))
    # Finally the scalar workload dimensions, halved then decremented.
    for field_name in ("items", "batch", "workers"):
        current = getattr(scenario, field_name)
        for smaller in sorted({current // 2, current - 1}):
            if smaller >= 1:
                yield _reduced(scenario, **{field_name: smaller})
    if len(scenario.tenants) > 1:
        yield _reduced(scenario, tenants=scenario.tenants[:-1])


def _reduced(scenario: Scenario, **overrides) -> Scenario:
    """One reduction with validity couplings repaired in the same step.

    ``arrival`` must keep one entry per item with indexes inside the
    tenant range, and kill faults must stay below the worker count so the
    scenario remains survivable by construction.  Repairs and overrides
    apply in a single ``replace`` because the scenario re-validates on
    construction.
    """
    items = overrides.get("items", scenario.items)
    tenants = overrides.get("tenants", scenario.tenants)
    workers = overrides.get("workers", scenario.workers)
    plan = overrides.get("faults", scenario.faults)
    arrival = tuple(
        scenario.arrival[i] % len(tenants)
        if i < len(scenario.arrival) else 0
        for i in range(items)
    )
    # tenant_classes must track the (possibly shrunk) tenant list while
    # the tenant pass stays on, and clears entirely when it drops.
    tenant_serving = overrides.get("tenant_serving",
                                   scenario.tenant_serving)
    if tenant_serving:
        overrides["tenant_classes"] = tuple(
            scenario.tenant_classes[i]
            if i < len(scenario.tenant_classes) else 0
            for i in range(len(tenants))
        )
    else:
        overrides["tenant_classes"] = ()
    faults = plan.faults
    max_kills = workers - 1
    if sum(1 for f in faults if f.action == "kill") > max_kills:
        kept: list = []
        kills = 0
        for fault in faults:
            if fault.action == "kill":
                if kills >= max_kills:
                    continue
                kills += 1
            kept.append(fault)
        faults = tuple(kept)
    overrides["arrival"] = arrival
    overrides["faults"] = FaultPlan(faults=faults)
    return replace(scenario, **overrides)


class ShrinkResult:
    """The outcome of one shrink: the minimal scenario and the trail."""

    def __init__(self, minimal: Scenario, steps: int,
                 attempts: int) -> None:
        self.minimal = minimal
        self.steps = steps
        self.attempts = attempts


def shrink(scenario: Scenario,
           fails: Callable[[Scenario], bool],
           max_attempts: int = 200) -> ShrinkResult:
    """Greedily minimize ``scenario`` while ``fails`` keeps holding.

    ``fails(candidate)`` re-runs the candidate and returns True when it
    still violates the target invariant.  Each accepted reduction restarts
    the candidate sweep (a dimension that refused to shrink earlier often
    shrinks once another dimension is gone).  ``max_attempts`` bounds the
    total number of re-runs.
    """
    current = scenario
    steps = 0
    attempts = 0
    progressed = True
    while progressed and attempts < max_attempts:
        progressed = False
        for candidate in shrink_candidates(current):
            if attempts >= max_attempts:
                break
            attempts += 1
            if fails(candidate):
                current = candidate
                steps += 1
                progressed = True
                break
    return ShrinkResult(minimal=current, steps=steps, attempts=attempts)
