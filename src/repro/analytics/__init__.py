"""Query systems built on top of Smol.

Two query-processing methods from recent visual analytics systems are
re-implemented so Smol can be evaluated end-to-end (Section 3.2):

* :mod:`repro.analytics.classification` -- Tahoma-style binary/multi-class
  classification with specialized-NN / target-DNN cascades.
* :mod:`repro.analytics.aggregation` -- BlazeIt-style aggregation queries
  (average object count per frame) using a specialized NN as a control
  variate to reduce sampling variance.
"""

from repro.analytics.sampling import (
    SamplingResult,
    uniform_sample_mean,
    control_variate_mean,
    required_sample_size,
)
from repro.analytics.aggregation import (
    AggregationQuery,
    AggregationResult,
    AggregationEngine,
)
from repro.analytics.classification import (
    CascadeClassifier,
    CascadeEvaluation,
    ClassificationQuery,
)
from repro.analytics.limit_queries import (
    LimitQuery,
    LimitQueryResult,
    LimitQueryEngine,
)

__all__ = [
    "LimitQuery",
    "LimitQueryResult",
    "LimitQueryEngine",
    "SamplingResult",
    "uniform_sample_mean",
    "control_variate_mean",
    "required_sample_size",
    "AggregationQuery",
    "AggregationResult",
    "AggregationEngine",
    "CascadeClassifier",
    "CascadeEvaluation",
    "ClassificationQuery",
]
