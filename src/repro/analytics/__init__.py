"""Query systems built on top of Smol.

Two query-processing methods from recent visual analytics systems are
re-implemented so Smol can be evaluated end-to-end (Section 3.2):

* :mod:`repro.analytics.classification` -- Tahoma-style binary/multi-class
  classification with specialized-NN / target-DNN cascades.
* :mod:`repro.analytics.aggregation` -- BlazeIt-style aggregation queries
  (average object count per frame) using a specialized NN as a control
  variate to reduce sampling variance.
"""

from repro.analytics.sampling import (
    SamplingResult,
    adaptive_mean_estimate,
    uniform_sample_mean,
    control_variate_mean,
    required_sample_size,
)
from repro.analytics.stats import (
    ExactSum,
    MomentSketch,
    PairedMomentSketch,
    Z_95,
    ci_half_width,
    exact_mean,
    exact_sum,
)
from repro.analytics.scan import (
    ScanCosts,
    TwoPassEngine,
    compute_scan_costs,
    proxy_scan_order,
    scan_views,
)
from repro.analytics.aggregation import (
    AggregationQuery,
    AggregationResult,
    AggregationEngine,
)
from repro.analytics.classification import (
    CascadeClassifier,
    CascadeEvaluation,
    ClassificationQuery,
)
from repro.analytics.limit_queries import (
    LimitQuery,
    LimitQueryResult,
    LimitQueryEngine,
)

__all__ = [
    "LimitQuery",
    "LimitQueryResult",
    "LimitQueryEngine",
    "SamplingResult",
    "adaptive_mean_estimate",
    "uniform_sample_mean",
    "control_variate_mean",
    "required_sample_size",
    "ExactSum",
    "MomentSketch",
    "PairedMomentSketch",
    "Z_95",
    "ci_half_width",
    "exact_mean",
    "exact_sum",
    "ScanCosts",
    "TwoPassEngine",
    "compute_scan_costs",
    "proxy_scan_order",
    "scan_views",
    "AggregationQuery",
    "AggregationResult",
    "AggregationEngine",
    "CascadeClassifier",
    "CascadeEvaluation",
    "ClassificationQuery",
]
