"""BlazeIt-style LIMIT queries over video.

Besides aggregation, BlazeIt supports limit queries: "find K frames containing
at least N target objects".  The specialized NN scores every frame cheaply;
frames are then visited in descending proxy-score order and verified with the
expensive target DNN until K confirmed frames are found.  Because the proxy is
correlated with the truth, far fewer target-DNN invocations are needed than
with a random scan -- and, as with aggregation, the cheap pass is dominated by
video decoding, so Smol's low-resolution renditions and optimized runtime
reduce its cost directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.scan import TwoPassEngine, proxy_scan_order, scan_views
from repro.codecs.formats import InputFormatSpec
from repro.datasets.video import VideoDataset
from repro.errors import QueryError
from repro.nn.zoo import ModelProfile


@dataclass(frozen=True)
class LimitQuery:
    """Find ``limit`` frames containing at least ``min_count`` objects."""

    dataset: VideoDataset
    min_count: int
    limit: int

    def __post_init__(self) -> None:
        if self.min_count < 1:
            raise QueryError("min_count must be at least 1")
        if self.limit < 1:
            raise QueryError("limit must be at least 1")


@dataclass(frozen=True)
class LimitQueryResult:
    """Result of executing a limit query."""

    query_name: str
    requested: int
    found_frames: tuple[int, ...]
    frames_scanned: int
    target_invocations: int
    specialized_pass_seconds: float
    target_pass_seconds: float

    @property
    def satisfied(self) -> bool:
        """Whether the requested number of frames was found."""
        return len(self.found_frames) >= self.requested

    @property
    def total_seconds(self) -> float:
        """Total query execution time."""
        return self.specialized_pass_seconds + self.target_pass_seconds


def verification_scan(truth: np.ndarray, scan_order: np.ndarray,
                      min_count: int, limit: int) -> tuple[list[int], int]:
    """Visit frames in ``scan_order``, verifying candidates with the truth.

    Returns the confirmed frame indices (at most ``limit``) and the number of
    frames scanned.  A pure function of its inputs, shared by the
    single-process engine and the sharded query engine so both produce the
    same frames from the same proxy array.
    """
    found: list[int] = []
    scanned = 0
    for frame_index in scan_order:
        scanned += 1
        # The target DNN verifies the candidate frame.
        if truth[frame_index] >= min_count:
            found.append(int(frame_index))
            if len(found) >= limit:
                break
    return found, scanned


class LimitQueryEngine(TwoPassEngine):
    """Executes limit queries with proxy-ordered scanning."""

    def __init__(self, performance_model, config=None,
                 use_proxy_ordering: bool = True) -> None:
        super().__init__(performance_model, config)
        self._use_proxy_ordering = use_proxy_ordering

    def execute(self, query: LimitQuery, specialized_model: ModelProfile,
                fmt: InputFormatSpec, specialized_accuracy: float = 0.9,
                frame_limit: int = 20_000,
                target_model: ModelProfile | None = None) -> LimitQueryResult:
        """Run ``query`` using ``specialized_model`` over rendition ``fmt``.

        ``frame_limit`` bounds the synthetic dataset length for the functional
        computation; the cheap-pass cost is reported for the full dataset.
        """
        dataset = query.dataset
        truth, proxy, frames_used = scan_views(dataset, specialized_accuracy,
                                               frame_limit)
        if self._use_proxy_ordering:
            scan_order = proxy_scan_order(proxy)
        else:
            scan_order = np.arange(frames_used)
        found, scanned = verification_scan(truth, scan_order,
                                           query.min_count, query.limit)
        costs = self.scan_costs(specialized_model, fmt, dataset, frames_used,
                                target_model=target_model)
        return LimitQueryResult(
            query_name=dataset.name,
            requested=query.limit,
            found_frames=tuple(found),
            frames_scanned=scanned,
            target_invocations=costs.target_invocations(scanned),
            specialized_pass_seconds=costs.specialized_pass_seconds,
            target_pass_seconds=costs.target_pass_seconds(scanned),
        )

    def compare_with_random_scan(self, query: LimitQuery,
                                 specialized_model: ModelProfile,
                                 fmt: InputFormatSpec,
                                 specialized_accuracy: float = 0.9,
                                 frame_limit: int = 20_000) -> dict[str, float]:
        """Return the scan-cost ratio of proxy ordering versus a random scan."""
        ordered = LimitQueryEngine(self._perf, self._config,
                                   use_proxy_ordering=True).execute(
            query, specialized_model, fmt, specialized_accuracy, frame_limit
        )
        random_scan = LimitQueryEngine(self._perf, self._config,
                                       use_proxy_ordering=False).execute(
            query, specialized_model, fmt, specialized_accuracy, frame_limit
        )
        if ordered.frames_scanned == 0:
            raise QueryError("ordered scan visited no frames")
        return {
            "ordered_scanned": float(ordered.frames_scanned),
            "random_scanned": float(random_scan.frames_scanned),
            "scan_reduction": random_scan.frames_scanned / ordered.frames_scanned,
            "ordered_seconds": ordered.total_seconds,
            "random_seconds": random_scan.total_seconds,
        }
