"""BlazeIt-style LIMIT queries over video.

Besides aggregation, BlazeIt supports limit queries: "find K frames containing
at least N target objects".  The specialized NN scores every frame cheaply;
frames are then visited in descending proxy-score order and verified with the
expensive target DNN until K confirmed frames are found.  Because the proxy is
correlated with the truth, far fewer target-DNN invocations are needed than
with a random scan -- and, as with aggregation, the cheap pass is dominated by
video decoding, so Smol's low-resolution renditions and optimized runtime
reduce its cost directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codecs.formats import InputFormatSpec
from repro.datasets.video import VideoDataset
from repro.errors import QueryError
from repro.inference.perfmodel import EngineConfig, PerformanceModel
from repro.nn.zoo import ModelProfile, get_model_profile


@dataclass(frozen=True)
class LimitQuery:
    """Find ``limit`` frames containing at least ``min_count`` objects."""

    dataset: VideoDataset
    min_count: int
    limit: int

    def __post_init__(self) -> None:
        if self.min_count < 1:
            raise QueryError("min_count must be at least 1")
        if self.limit < 1:
            raise QueryError("limit must be at least 1")


@dataclass(frozen=True)
class LimitQueryResult:
    """Result of executing a limit query."""

    query_name: str
    requested: int
    found_frames: tuple[int, ...]
    frames_scanned: int
    target_invocations: int
    specialized_pass_seconds: float
    target_pass_seconds: float

    @property
    def satisfied(self) -> bool:
        """Whether the requested number of frames was found."""
        return len(self.found_frames) >= self.requested

    @property
    def total_seconds(self) -> float:
        """Total query execution time."""
        return self.specialized_pass_seconds + self.target_pass_seconds


class LimitQueryEngine:
    """Executes limit queries with proxy-ordered scanning."""

    def __init__(self, performance_model: PerformanceModel,
                 config: EngineConfig | None = None,
                 use_proxy_ordering: bool = True) -> None:
        self._perf = performance_model
        self._config = config or EngineConfig(
            num_producers=performance_model.instance.vcpus
        )
        self._use_proxy_ordering = use_proxy_ordering

    def execute(self, query: LimitQuery, specialized_model: ModelProfile,
                fmt: InputFormatSpec, specialized_accuracy: float = 0.9,
                frame_limit: int = 20_000,
                target_model: ModelProfile | None = None) -> LimitQueryResult:
        """Run ``query`` using ``specialized_model`` over rendition ``fmt``.

        ``frame_limit`` bounds the synthetic dataset length for the functional
        computation; the cheap-pass cost is reported for the full dataset.
        """
        dataset = query.dataset
        frames_used = min(frame_limit, dataset.num_frames)
        truth = dataset.ground_truth_counts(frames_used)
        proxy = dataset.specialized_nn_predictions(
            accuracy_factor=specialized_accuracy, limit=frames_used
        )
        if self._use_proxy_ordering:
            scan_order = np.argsort(-proxy, kind="stable")
        else:
            scan_order = np.arange(frames_used)

        found: list[int] = []
        scanned = 0
        for frame_index in scan_order:
            scanned += 1
            # The target DNN verifies the candidate frame.
            if truth[frame_index] >= query.min_count:
                found.append(int(frame_index))
                if len(found) >= query.limit:
                    break

        target = target_model or get_model_profile("mask-rcnn")
        cheap_estimate = self._perf.estimate(specialized_model, fmt, self._config)
        cheap_throughput = cheap_estimate.pipelined_upper_bound
        target_throughput = self._perf.dnn_model.execution_throughput(
            target, batch_size=self._config.batch_size
        )
        scale = dataset.num_frames / frames_used
        specialized_seconds = dataset.num_frames / cheap_throughput
        target_invocations = int(round(scanned * scale)) if self._use_proxy_ordering \
            else int(round(scanned * scale))
        target_seconds = target_invocations / target_throughput
        return LimitQueryResult(
            query_name=dataset.name,
            requested=query.limit,
            found_frames=tuple(found),
            frames_scanned=scanned,
            target_invocations=target_invocations,
            specialized_pass_seconds=specialized_seconds,
            target_pass_seconds=target_seconds,
        )

    def compare_with_random_scan(self, query: LimitQuery,
                                 specialized_model: ModelProfile,
                                 fmt: InputFormatSpec,
                                 specialized_accuracy: float = 0.9,
                                 frame_limit: int = 20_000) -> dict[str, float]:
        """Return the scan-cost ratio of proxy ordering versus a random scan."""
        ordered = LimitQueryEngine(self._perf, self._config,
                                   use_proxy_ordering=True).execute(
            query, specialized_model, fmt, specialized_accuracy, frame_limit
        )
        random_scan = LimitQueryEngine(self._perf, self._config,
                                       use_proxy_ordering=False).execute(
            query, specialized_model, fmt, specialized_accuracy, frame_limit
        )
        if ordered.frames_scanned == 0:
            raise QueryError("ordered scan visited no frames")
        return {
            "ordered_scanned": float(ordered.frames_scanned),
            "random_scanned": float(random_scan.frames_scanned),
            "scan_reduction": random_scan.frames_scanned / ordered.frames_scanned,
            "ordered_seconds": ordered.total_seconds,
            "random_seconds": random_scan.total_seconds,
        }
