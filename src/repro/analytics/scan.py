"""Shared scan and cost primitives for the analytics engines.

All three analytics engines (aggregation, limit, cascade classification)
follow the same two-pass shape the paper describes: a *cheap pass* runs a
specialized NN over every frame of the chosen rendition -- its cost dominated
by preprocessing/decode -- and an *expensive pass* runs the target DNN on a
subset.  This module holds the pieces they previously each reimplemented:

* :func:`scan_views` -- the deterministic (truth, proxy) frame views of a
  video dataset under a frame limit;
* :func:`proxy_scan_order` -- the stable descending-proxy visit order used by
  limit queries;
* :class:`ScanCosts` -- the performance-model arithmetic converting per-stage
  throughputs into cheap-pass seconds, target-pass seconds, and full-dataset
  scaling.

The sharded query engine (:mod:`repro.query`) reuses the same primitives so
its merged results are bit-identical to these single-process paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codecs.formats import InputFormatSpec
from repro.datasets.video import VideoDataset
from repro.errors import QueryError
from repro.inference.perfmodel import EngineConfig, PerformanceModel
from repro.nn.zoo import ModelProfile, get_model_profile

#: The paper's default expensive target DNN for video analytics queries.
DEFAULT_TARGET_MODEL = "mask-rcnn"


def scan_views(dataset: VideoDataset, specialized_accuracy: float,
               frame_limit: int) -> tuple[np.ndarray, np.ndarray, int]:
    """Deterministic (truth, proxy, frames_used) views of ``dataset``.

    ``frame_limit`` bounds the synthetic dataset length so the functional
    computation stays fast; callers scale reported costs back up to the full
    dataset with :attr:`ScanCosts.scale`.
    """
    if frame_limit <= 0:
        raise QueryError("frame_limit must be positive")
    frames_used = min(frame_limit, dataset.num_frames)
    truth = dataset.ground_truth_counts(frames_used).astype(np.float64)
    proxy = dataset.specialized_nn_predictions(
        accuracy_factor=specialized_accuracy, limit=frames_used
    )
    return truth, proxy, frames_used


def proxy_scan_order(proxy: np.ndarray) -> np.ndarray:
    """Stable frame visit order by descending proxy score.

    The sort is stable, so ties break by frame index and the order is a pure
    function of the proxy values -- sharded scans that reassemble the same
    proxy array reproduce the exact single-process visit order.
    """
    return np.argsort(-np.asarray(proxy), kind="stable")


@dataclass(frozen=True)
class ScanCosts:
    """Modelled execution costs of one two-pass scan over a video dataset.

    Attributes
    ----------
    cheap_throughput:
        Pipelined frames/second of the specialized-NN pass (preprocessing
        aware -- the quantity Smol's optimizations improve).
    target_throughput:
        Frames/second of the expensive target DNN.
    frames_used / total_frames:
        Functional scan length versus the full dataset length.
    """

    cheap_throughput: float
    target_throughput: float
    frames_used: int
    total_frames: int

    @property
    def scale(self) -> float:
        """Full-dataset frames per functional frame."""
        return self.total_frames / self.frames_used

    @property
    def specialized_pass_seconds(self) -> float:
        """Cheap-pass time over the *full* dataset."""
        return self.total_frames / self.cheap_throughput

    @property
    def seconds_per_scanned_frame(self) -> float:
        """Modelled cheap-pass service time per functional frame."""
        return 1.0 / self.cheap_throughput

    def target_invocations(self, functional_count: int) -> int:
        """Scale a functional-scan sample count to the full dataset."""
        return int(round(functional_count * self.scale))

    def target_pass_seconds(self, functional_count: int) -> float:
        """Target-DNN time for ``functional_count`` functional samples."""
        return self.target_invocations(functional_count) / self.target_throughput


class TwoPassEngine:
    """Base class for the analytics engines sharing the two-pass scan shape.

    Owns the performance model and engine configuration every engine needs,
    and exposes :meth:`scan_costs` so subclasses stop reimplementing the
    throughput arithmetic.
    """

    def __init__(self, performance_model: PerformanceModel,
                 config: EngineConfig | None = None) -> None:
        self._perf = performance_model
        self._config = config or EngineConfig(
            num_producers=performance_model.instance.vcpus
        )

    @property
    def performance_model(self) -> PerformanceModel:
        """The calibrated performance model costs are charged against."""
        return self._perf

    @property
    def config(self) -> EngineConfig:
        """The engine configuration assumed by the cost estimates."""
        return self._config

    def scan_costs(self, specialized_model: ModelProfile,
                   fmt: InputFormatSpec, dataset: VideoDataset,
                   frames_used: int,
                   target_model: ModelProfile | None = None) -> ScanCosts:
        """The :class:`ScanCosts` of one query's two passes."""
        return compute_scan_costs(
            self._perf, self._config, specialized_model, fmt, dataset,
            frames_used, target_model=target_model,
        )


def compute_scan_costs(performance_model: PerformanceModel,
                       config: EngineConfig,
                       specialized_model: ModelProfile,
                       fmt: InputFormatSpec,
                       dataset: VideoDataset,
                       frames_used: int,
                       target_model: ModelProfile | None = None,
                       batch_size: int | None = None) -> ScanCosts:
    """Build the :class:`ScanCosts` for one (specialized model, format) pair."""
    target = target_model or get_model_profile(DEFAULT_TARGET_MODEL)
    cheap_estimate = performance_model.estimate(specialized_model, fmt, config)
    target_throughput = performance_model.dnn_model.execution_throughput(
        target, batch_size=batch_size or config.batch_size
    )
    return ScanCosts(
        cheap_throughput=cheap_estimate.pipelined_upper_bound,
        target_throughput=target_throughput,
        frames_used=frames_used,
        total_frames=dataset.num_frames,
    )
