"""Exact, mergeable sufficient statistics for sharded analytics queries.

Sharding an analytics scan across workers must not change its answer: the
paper's statistical guarantees (control-variate variance reduction, CI
half-widths) are stated for the whole corpus, and a distributed runtime that
introduces split-dependent floating-point drift silently voids them.  This
module provides sufficient statistics whose merges are *exact*:

* :class:`ExactSum` -- a Shewchuk-style error-free accumulator (the algorithm
  behind :func:`math.fsum`).  The accumulated partials represent the real-
  number sum exactly, so adding values one by one, in any order, or merging
  per-shard accumulators all round to the *same* float.  Totals are therefore
  bit-identical regardless of how the corpus was sharded -- including empty
  and size-1 shards.
* :class:`MomentSketch` -- count plus exact first and second moments of one
  variable; supports associative :meth:`merge` and derives mean, sample
  variance, and 95% CI half-widths deterministically from the merged sums.
* :class:`PairedMomentSketch` -- joint moments of (value, proxy) pairs for
  control-variate estimation from merged shard statistics.

Integer statistics (counts, confusion matrices) merge exactly by int64
addition and live in :mod:`repro.cluster.runner`'s ``ShardAggregate``; this
module adds the floating-point side of the story.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import QueryError

#: Two-sided 95% normal quantile used for all confidence intervals.
Z_95 = 1.96


class ExactSum:
    """Error-free float accumulator with exact, order-independent merges.

    Maintains a list of non-overlapping partials whose mathematical sum is
    *exactly* the sum of everything added (Shewchuk's grow-expansion, as used
    by :func:`math.fsum`).  Because the representation is exact, the rounded
    :attr:`value` does not depend on insertion order or on how the inputs
    were grouped into merged sub-accumulators.
    """

    __slots__ = ("_partials",)

    def __init__(self, values: Iterable[float] = ()) -> None:
        self._partials: list[float] = []
        for value in values:
            self.add(value)

    def add(self, value: float) -> None:
        """Add one value exactly."""
        x = float(value)
        if not math.isfinite(x):
            raise QueryError(f"cannot accumulate non-finite value {value!r}")
        partials = self._partials
        count = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[count] = lo
                count += 1
            x = hi
        partials[count:] = [x]

    def add_array(self, values: np.ndarray | Sequence[float]) -> None:
        """Add every element of ``values`` exactly."""
        for value in np.asarray(values, dtype=np.float64).ravel():
            self.add(float(value))

    def merge(self, other: "ExactSum") -> None:
        """Fold another accumulator in; exactness makes this associative."""
        for partial in list(other._partials):
            self.add(partial)

    @property
    def value(self) -> float:
        """The correctly rounded sum of everything accumulated."""
        return math.fsum(self._partials)

    def copy(self) -> "ExactSum":
        """Independent copy of this accumulator."""
        clone = ExactSum()
        clone._partials = list(self._partials)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExactSum({self.value!r})"


def exact_sum(values: np.ndarray | Sequence[float]) -> float:
    """Correctly rounded sum of ``values`` (grouping-independent).

    Delegates to :func:`math.fsum`, which is bit-identical to accumulating
    through :class:`ExactSum` (whose own ``value`` is the fsum of its exact
    partials) but far faster for the one-shot case.
    """
    array = np.asarray(values, dtype=np.float64).ravel()
    if array.size and not np.isfinite(array).all():
        raise QueryError("cannot sum non-finite values")
    return math.fsum(array)


def exact_mean(values: np.ndarray | Sequence[float]) -> float:
    """Mean computed from the correctly rounded sum."""
    array = np.asarray(values, dtype=np.float64).ravel()
    if array.size == 0:
        raise QueryError("cannot take the mean of an empty array")
    return exact_sum(array) / array.size


def ci_half_width(variance: float, count: int, z: float = Z_95) -> float:
    """Half-width of the ``z``-level CI for a mean with ``count`` samples."""
    if count <= 0:
        return math.inf
    if variance < 0:
        raise QueryError("variance cannot be negative")
    return z * math.sqrt(variance / count)


@dataclass
class MomentSketch:
    """Mergeable count/sum/sum-of-squares statistics for one variable.

    All merge paths produce bit-identical derived statistics because the
    underlying sums are exact (:class:`ExactSum`): the derived mean, sample
    variance, and CI half-width are each a fixed expression over the exact
    merged sums.
    """

    count: int = 0
    total: ExactSum = field(default_factory=ExactSum)
    total_sq: ExactSum = field(default_factory=ExactSum)

    @classmethod
    def from_values(cls, values: np.ndarray | Sequence[float]) -> "MomentSketch":
        """Build a sketch covering every element of ``values``."""
        sketch = cls()
        sketch.observe_array(values)
        return sketch

    def observe(self, value: float) -> None:
        """Fold in one observation."""
        x = float(value)
        self.count += 1
        self.total.add(x)
        self.total_sq.add(x * x)

    def observe_array(self, values: np.ndarray | Sequence[float]) -> None:
        """Fold in every element of ``values``."""
        for value in np.asarray(values, dtype=np.float64).ravel():
            self.observe(float(value))

    def merge(self, other: "MomentSketch") -> "MomentSketch":
        """Exact associative merge (returns a new sketch)."""
        merged = MomentSketch(count=self.count + other.count,
                              total=self.total.copy(),
                              total_sq=self.total_sq.copy())
        merged.total.merge(other.total)
        merged.total_sq.merge(other.total_sq)
        return merged

    @classmethod
    def merge_all(cls, sketches: Sequence["MomentSketch"]) -> "MomentSketch":
        """Merge any number of sketches into one total."""
        total = cls()
        for sketch in sketches:
            total = total.merge(sketch)
        return total

    @property
    def mean(self) -> float:
        """Mean derived from the exact sum."""
        if self.count == 0:
            raise QueryError("cannot take the mean of an empty sketch")
        return self.total.value / self.count

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1) derived from the exact moments."""
        if self.count < 2:
            return 0.0
        total = self.total.value
        centered = self.total_sq.value - total * total / self.count
        return max(0.0, centered / (self.count - 1))

    def half_width(self, z: float = Z_95) -> float:
        """CI half-width for the mean at level ``z``."""
        return ci_half_width(self.variance, self.count, z=z)


@dataclass
class PairedMomentSketch:
    """Mergeable joint moments of (value, proxy) observation pairs.

    Carries everything a control-variate estimator needs -- per-variable
    moments plus the exact cross-product sum -- so per-shard sketches merge
    into globally exact covariance and control coefficients.
    """

    values: MomentSketch = field(default_factory=MomentSketch)
    proxies: MomentSketch = field(default_factory=MomentSketch)
    cross: ExactSum = field(default_factory=ExactSum)

    @classmethod
    def from_pairs(cls, values: np.ndarray,
                   proxies: np.ndarray) -> "PairedMomentSketch":
        """Build a sketch from parallel value/proxy arrays."""
        value_array = np.asarray(values, dtype=np.float64).ravel()
        proxy_array = np.asarray(proxies, dtype=np.float64).ravel()
        if value_array.shape != proxy_array.shape:
            raise QueryError("values and proxies must have the same shape")
        sketch = cls()
        for value, proxy in zip(value_array, proxy_array):
            sketch.observe(float(value), float(proxy))
        return sketch

    def observe(self, value: float, proxy: float) -> None:
        """Fold in one (value, proxy) pair."""
        self.values.observe(value)
        self.proxies.observe(proxy)
        self.cross.add(float(value) * float(proxy))

    @property
    def count(self) -> int:
        """Number of pairs observed."""
        return self.values.count

    def merge(self, other: "PairedMomentSketch") -> "PairedMomentSketch":
        """Exact associative merge (returns a new sketch)."""
        merged = PairedMomentSketch(
            values=self.values.merge(other.values),
            proxies=self.proxies.merge(other.proxies),
            cross=self.cross.copy(),
        )
        merged.cross.merge(other.cross)
        return merged

    @classmethod
    def merge_all(
        cls, sketches: Sequence["PairedMomentSketch"]
    ) -> "PairedMomentSketch":
        """Merge any number of paired sketches into one total."""
        total = cls()
        for sketch in sketches:
            total = total.merge(sketch)
        return total

    @property
    def covariance(self) -> float:
        """Sample covariance (ddof=1) from the exact moments."""
        if self.count < 2:
            return 0.0
        cross = self.cross.value
        centered = (cross
                    - self.values.total.value * self.proxies.total.value
                    / self.count)
        return centered / (self.count - 1)

    def control_coefficient(self, variance_floor: float = 1e-12) -> float:
        """Optimal control-variate coefficient ``cov(v, p) / var(p)``."""
        proxy_variance = self.proxies.variance
        if self.count <= 2 or proxy_variance <= variance_floor:
            return 0.0
        return self.covariance / proxy_variance
