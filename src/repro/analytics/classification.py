"""Tahoma-style classification cascades (Section 3.2, Figure 4 baseline).

Tahoma answers classification queries with a cascade: a cheap specialized NN
scores every image, confident predictions short-circuit, and the remainder are
forwarded to an accurate target DNN.  The cascade's accuracy and throughput
depend on the confidence threshold, the specialized NN's quality, and --
critically, the paper argues -- on preprocessing, because every image must be
decoded regardless of which models run, and forwarded images pay extra copy
and resize costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.scan import TwoPassEngine
from repro.codecs.formats import InputFormatSpec
from repro.core.plans import Plan
from repro.errors import QueryError
from repro.nn.zoo import ModelProfile
from repro.utils.rng import deterministic_rng


@dataclass(frozen=True)
class ClassificationQuery:
    """A classification query: assign each image one of ``num_classes`` labels."""

    dataset_name: str
    num_classes: int
    accuracy_floor: float | None = None

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise QueryError("num_classes must be at least 2")
        if self.accuracy_floor is not None and not 0 <= self.accuracy_floor <= 1:
            raise QueryError("accuracy_floor must be in [0, 1]")


@dataclass(frozen=True)
class CascadeEvaluation:
    """Accuracy/throughput of one cascade configuration."""

    proxy_name: str
    target_name: str
    pass_through_rate: float
    accuracy: float
    throughput: float
    preprocessing_throughput: float
    dnn_throughput: float

    def objectives(self) -> tuple[float, float]:
        """(throughput, accuracy) vector for Pareto-frontier computation."""
        return (self.throughput, self.accuracy)


# Overhead factor for images forwarded through the cascade: they are copied
# again and re-resized when the proxy and target input resolutions differ
# (Section 8.3's explanation of why Tahoma underperforms when preprocessing
# bound).
CASCADE_FORWARD_OVERHEAD = 1.25


class CascadeClassifier(TwoPassEngine):
    """Evaluates specialized-NN / target-DNN cascades."""

    def simulate_accuracy(self, proxy_accuracy: float, target_accuracy: float,
                          pass_through_rate: float, num_classes: int,
                          num_examples: int = 20_000,
                          seed: int = 0) -> float:
        """Monte-Carlo accuracy of a confidence-thresholded cascade.

        Images the proxy handles itself are correct with probability equal to
        the proxy's accuracy on its confident subset (which is higher than
        its overall accuracy); forwarded images are correct with the target's
        accuracy.  The confident-subset boost shrinks as the pass-through
        rate falls, reflecting that aggressive short-circuiting keeps harder
        images with the proxy.
        """
        if not 0 < pass_through_rate <= 1:
            raise QueryError("pass_through_rate must be in (0, 1]")
        for name, value in (("proxy", proxy_accuracy), ("target", target_accuracy)):
            if not 0 <= value <= 1:
                raise QueryError(f"{name} accuracy must be in [0, 1]")
        rng = deterministic_rng("cascade-accuracy", seed)
        forwarded = rng.random(num_examples) < pass_through_rate
        confident_boost = (1.0 - proxy_accuracy) * (1.0 - pass_through_rate) * 0.7
        proxy_confident_accuracy = min(1.0, proxy_accuracy + confident_boost)
        correct_proxy = rng.random(num_examples) < proxy_confident_accuracy
        correct_target = rng.random(num_examples) < target_accuracy
        correct = np.where(forwarded, correct_target, correct_proxy)
        return float(correct.mean())

    def evaluate(self, proxy: ModelProfile, target: ModelProfile,
                 fmt: InputFormatSpec, proxy_accuracy: float,
                 target_accuracy: float, pass_through_rate: float,
                 num_classes: int) -> CascadeEvaluation:
        """Throughput and accuracy of one cascade configuration."""
        plan = Plan.cascade(proxy, target, pass_through_rate, fmt)
        # DNN-side throughput of the cascade (Equation 2), with the forwarded
        # images paying the extra copy/resize overhead.
        proxy_est = self._perf.estimate(proxy, fmt, self._config)
        target_est = self._perf.estimate(target, fmt, self._config)
        per_image_us = 1e6 / proxy_est.dnn_throughput
        per_image_us += (pass_through_rate * CASCADE_FORWARD_OVERHEAD
                         * 1e6 / target_est.dnn_throughput)
        dnn_throughput = 1e6 / per_image_us
        preproc_throughput = proxy_est.preprocessing_throughput
        throughput = min(preproc_throughput, dnn_throughput)
        accuracy = self.simulate_accuracy(
            proxy_accuracy, target_accuracy, pass_through_rate, num_classes
        )
        return CascadeEvaluation(
            proxy_name=proxy.name,
            target_name=target.name,
            pass_through_rate=pass_through_rate,
            accuracy=accuracy,
            throughput=throughput,
            preprocessing_throughput=preproc_throughput,
            dnn_throughput=dnn_throughput,
        )

    def sweep(self, proxies: list[tuple[ModelProfile, float]],
              target: ModelProfile, target_accuracy: float,
              fmt: InputFormatSpec, num_classes: int,
              pass_through_rates: tuple[float, ...] = (0.05, 0.15, 0.3, 0.5, 0.8),
              ) -> list[CascadeEvaluation]:
        """Evaluate a family of cascades over proxies and thresholds."""
        evaluations = []
        for proxy, proxy_accuracy in proxies:
            for rate in pass_through_rates:
                evaluations.append(
                    self.evaluate(proxy, target, fmt, proxy_accuracy,
                                  target_accuracy, rate, num_classes)
                )
        return evaluations
