"""Sampling estimators for aggregation queries.

BlazeIt answers "average number of objects per frame" queries by sampling
frames, running the expensive target DNN on the sample, and using a cheap
specialized NN evaluated on *every* frame as a control variate: because the
proxy is correlated with the truth, subtracting its sample mean and adding
back its population mean reduces estimator variance, so fewer target-DNN
invocations reach a requested error bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.stats import Z_95, exact_mean
from repro.errors import QueryError
from repro.utils.rng import deterministic_rng


@dataclass(frozen=True)
class SamplingResult:
    """Outcome of a sampling-based mean estimate.

    Attributes
    ----------
    estimate:
        The estimated population mean.
    half_width:
        Half-width of the (approximately) 95% confidence interval.
    samples_used:
        Number of expensive (target DNN) samples consumed.
    variance:
        Estimated per-sample variance of the estimator's summand.
    """

    estimate: float
    half_width: float
    samples_used: int
    variance: float

    def within(self, true_mean: float, slack: float = 1.0) -> bool:
        """Whether ``true_mean`` lies within ``slack`` times the half-width."""
        return abs(self.estimate - true_mean) <= self.half_width * slack


def uniform_sample_mean(values: np.ndarray, sample_size: int,
                        seed: int = 0) -> SamplingResult:
    """Estimate the mean of ``values`` from a uniform random sample."""
    _validate(values, sample_size)
    rng = deterministic_rng("uniform-sample", seed)
    indices = rng.choice(values.shape[0], size=sample_size, replace=False)
    sample = values[indices].astype(np.float64)
    variance = float(sample.var(ddof=1)) if sample_size > 1 else 0.0
    half_width = Z_95 * np.sqrt(variance / sample_size)
    return SamplingResult(
        estimate=float(sample.mean()),
        half_width=float(half_width),
        samples_used=sample_size,
        variance=variance,
    )


def control_variate_mean(values: np.ndarray, proxy: np.ndarray,
                         sample_size: int, seed: int = 0,
                         proxy_population_mean: float | None = None,
                         ) -> SamplingResult:
    """Estimate the mean of ``values`` using ``proxy`` as a control variate.

    ``proxy`` must be available for the whole population (it is cheap to
    compute); ``values`` are only observed on the sample.  The optimal control
    coefficient is estimated from the sample covariance.

    ``proxy_population_mean`` is the cheap pass's product.  When omitted it is
    computed here with an exact (correctly rounded) sum, so a sharded cheap
    pass that merges per-shard exact sums produces the same mean -- and
    therefore the same estimate -- bit for bit.
    """
    _validate(values, sample_size)
    if proxy.shape != values.shape:
        raise QueryError("proxy and values must have the same shape")
    rng = deterministic_rng("cv-sample", seed)
    indices = rng.choice(values.shape[0], size=sample_size, replace=False)
    sample_values = values[indices].astype(np.float64)
    sample_proxy = proxy[indices].astype(np.float64)
    if proxy_population_mean is None:
        proxy_population_mean = exact_mean(proxy)
    if sample_size > 2 and sample_proxy.var(ddof=1) > 1e-12:
        covariance = float(np.cov(sample_values, sample_proxy, ddof=1)[0, 1])
        coefficient = covariance / float(sample_proxy.var(ddof=1))
    else:
        coefficient = 0.0
    adjusted = sample_values - coefficient * (sample_proxy - proxy_population_mean)
    variance = float(adjusted.var(ddof=1)) if sample_size > 1 else 0.0
    half_width = Z_95 * np.sqrt(variance / sample_size)
    return SamplingResult(
        estimate=float(adjusted.mean()),
        half_width=float(half_width),
        samples_used=sample_size,
        variance=variance,
    )


def adaptive_mean_estimate(values: np.ndarray, proxy: np.ndarray,
                           error_bound: float, pilot_fraction: float = 0.02,
                           seed: int = 0, use_control_variate: bool = True,
                           proxy_population_mean: float | None = None,
                           ) -> SamplingResult:
    """The paper's full adaptive estimator: pilot, size, then final sample.

    A pilot sample estimates the estimator variance, the final sample size is
    chosen for the requested ``error_bound``, and the final estimate is drawn
    with a fresh seed.  Shared by the single-process aggregation engine and
    the sharded query engine: given the same inputs (and the same
    ``proxy_population_mean``) the two produce bit-identical results.
    """
    if not 0.0 < pilot_fraction < 1.0:
        raise QueryError("pilot_fraction must be in (0, 1)")
    if error_bound <= 0:
        raise QueryError("error_bound must be positive")
    population = values.shape[0]
    pilot_size = min(max(30, int(pilot_fraction * population)), population)
    if use_control_variate:
        if proxy_population_mean is None:
            proxy_population_mean = exact_mean(proxy)
        pilot = control_variate_mean(
            values, proxy, pilot_size, seed=seed,
            proxy_population_mean=proxy_population_mean,
        )
    else:
        pilot = uniform_sample_mean(values, pilot_size, seed=seed)
    needed = required_sample_size(pilot.variance, error_bound,
                                  population=population)
    needed = max(needed, pilot_size)
    if use_control_variate:
        return control_variate_mean(
            values, proxy, needed, seed=seed + 1,
            proxy_population_mean=proxy_population_mean,
        )
    return uniform_sample_mean(values, needed, seed=seed + 1)


def required_sample_size(variance: float, target_half_width: float,
                         population: int | None = None) -> int:
    """Samples needed for a 95% confidence half-width of ``target_half_width``."""
    if target_half_width <= 0:
        raise QueryError("target half-width must be positive")
    if variance < 0:
        raise QueryError("variance cannot be negative")
    if variance == 0:
        return 1
    needed = int(np.ceil(Z_95 ** 2 * variance / target_half_width ** 2))
    needed = max(2, needed)
    if population is not None:
        needed = min(needed, population)
    return needed


def _validate(values: np.ndarray, sample_size: int) -> None:
    if values.ndim != 1 or values.shape[0] == 0:
        raise QueryError("values must be a non-empty 1-D array")
    if not 0 < sample_size <= values.shape[0]:
        raise QueryError(
            f"sample_size must be in [1, {values.shape[0]}], got {sample_size}"
        )
