"""BlazeIt-style aggregation queries over video (Section 3.2, Figure 9).

An aggregation query asks for the average number of target objects per frame,
to within a user-supplied absolute error bound.  The engine:

1. runs a specialized NN over every frame of the chosen video rendition (the
   cheap pass, whose cost is dominated by preprocessing/decode);
2. samples frames for the expensive target DNN and uses the specialized NN's
   counts as a control variate, which shrinks the estimator variance and with
   it the number of target-DNN invocations;
3. reports the estimate and the total query execution time, computed from the
   per-stage throughputs of the runtime engine.

Smol improves on BlazeIt along exactly the two axes the paper describes:
more accurate (but more expensive) specialized NNs reduce sampling variance,
and low-resolution renditions reduce the decode cost of the cheap pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.sampling import (
    control_variate_mean,
    required_sample_size,
    uniform_sample_mean,
)
from repro.codecs.formats import InputFormatSpec
from repro.datasets.video import VideoDataset
from repro.errors import QueryError
from repro.inference.perfmodel import EngineConfig, PerformanceModel
from repro.nn.zoo import ModelProfile, get_model_profile


@dataclass(frozen=True)
class AggregationQuery:
    """An aggregation query over one video dataset.

    Attributes
    ----------
    dataset:
        The video dataset to query.
    error_bound:
        Requested absolute error on the per-frame mean count.
    target_model:
        The expensive target DNN (defaults to a Mask R-CNN profile).
    confidence:
        Nominal confidence level of the bound (fixed at 95% here).
    """

    dataset: VideoDataset
    error_bound: float
    target_model: ModelProfile | None = None
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.error_bound <= 0:
            raise QueryError("error_bound must be positive")


@dataclass(frozen=True)
class AggregationResult:
    """Result of executing an aggregation query."""

    query_name: str
    estimate: float
    true_mean: float
    error_bound: float
    target_invocations: int
    specialized_pass_seconds: float
    target_pass_seconds: float
    estimator_variance: float

    @property
    def total_seconds(self) -> float:
        """Total query execution time."""
        return self.specialized_pass_seconds + self.target_pass_seconds

    @property
    def achieved_error(self) -> float:
        """Absolute error of the estimate against the ground truth."""
        return abs(self.estimate - self.true_mean)


class AggregationEngine:
    """Executes aggregation queries with a specialized-NN control variate."""

    def __init__(self, performance_model: PerformanceModel,
                 config: EngineConfig | None = None,
                 use_control_variate: bool = True) -> None:
        self._perf = performance_model
        self._config = config or EngineConfig(
            num_producers=performance_model.instance.vcpus
        )
        self._use_control_variate = use_control_variate

    def execute(self, query: AggregationQuery, specialized_model: ModelProfile,
                fmt: InputFormatSpec, specialized_accuracy: float = 0.85,
                pilot_fraction: float = 0.02, seed: int = 0,
                frame_limit: int = 20_000) -> AggregationResult:
        """Run ``query`` using ``specialized_model`` on rendition ``fmt``.

        ``specialized_accuracy`` controls how well the specialized NN's counts
        correlate with ground truth (more accurate specialized NNs reduce the
        control-variate variance).  ``frame_limit`` bounds the synthetic
        dataset length so the functional computation stays fast; query times
        are reported for the full dataset by scaling the cheap-pass cost.
        """
        if not 0.0 < pilot_fraction < 1.0:
            raise QueryError("pilot_fraction must be in (0, 1)")
        dataset = query.dataset
        frames_used = min(frame_limit, dataset.num_frames)
        truth = dataset.ground_truth_counts(frames_used).astype(np.float64)
        proxy = dataset.specialized_nn_predictions(
            accuracy_factor=specialized_accuracy, limit=frames_used
        )
        true_mean = float(truth.mean())

        # Pilot sample to estimate the estimator variance, then size the
        # final sample for the requested error bound.
        pilot_size = max(30, int(pilot_fraction * frames_used))
        pilot_size = min(pilot_size, frames_used)
        if self._use_control_variate:
            pilot = control_variate_mean(truth, proxy, pilot_size, seed=seed)
        else:
            pilot = uniform_sample_mean(truth, pilot_size, seed=seed)
        needed = required_sample_size(pilot.variance, query.error_bound,
                                      population=frames_used)
        needed = max(needed, pilot_size)
        if self._use_control_variate:
            final = control_variate_mean(truth, proxy, needed, seed=seed + 1)
        else:
            final = uniform_sample_mean(truth, needed, seed=seed + 1)

        # Cost model: the specialized pass touches every frame of the full
        # dataset; the target pass touches only the sampled frames.
        target_model = query.target_model or get_model_profile("mask-rcnn")
        cheap_estimate = self._perf.estimate(specialized_model, fmt, self._config)
        cheap_throughput = cheap_estimate.pipelined_upper_bound
        target_throughput = self._perf.dnn_model.execution_throughput(
            target_model, batch_size=self._config.batch_size
        )
        # Scale the sample size measured on the truncated synthetic dataset
        # up to the full dataset length (variance is length-invariant).
        scale = dataset.num_frames / frames_used
        specialized_seconds = dataset.num_frames / cheap_throughput
        target_invocations = int(round(needed * scale))
        target_seconds = target_invocations / target_throughput
        return AggregationResult(
            query_name=dataset.name,
            estimate=final.estimate,
            true_mean=true_mean,
            error_bound=query.error_bound,
            target_invocations=target_invocations,
            specialized_pass_seconds=specialized_seconds,
            target_pass_seconds=target_seconds,
            estimator_variance=final.variance,
        )
