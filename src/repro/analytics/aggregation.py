"""BlazeIt-style aggregation queries over video (Section 3.2, Figure 9).

An aggregation query asks for the average number of target objects per frame,
to within a user-supplied absolute error bound.  The engine:

1. runs a specialized NN over every frame of the chosen video rendition (the
   cheap pass, whose cost is dominated by preprocessing/decode);
2. samples frames for the expensive target DNN and uses the specialized NN's
   counts as a control variate, which shrinks the estimator variance and with
   it the number of target-DNN invocations;
3. reports the estimate and the total query execution time, computed from the
   per-stage throughputs of the runtime engine.

Smol improves on BlazeIt along exactly the two axes the paper describes:
more accurate (but more expensive) specialized NNs reduce sampling variance,
and low-resolution renditions reduce the decode cost of the cheap pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.sampling import adaptive_mean_estimate
from repro.analytics.scan import TwoPassEngine, scan_views
from repro.analytics.stats import exact_mean
from repro.codecs.formats import InputFormatSpec
from repro.datasets.video import VideoDataset
from repro.errors import QueryError
from repro.nn.zoo import ModelProfile


@dataclass(frozen=True)
class AggregationQuery:
    """An aggregation query over one video dataset.

    Attributes
    ----------
    dataset:
        The video dataset to query.
    error_bound:
        Requested absolute error on the per-frame mean count.
    target_model:
        The expensive target DNN (defaults to a Mask R-CNN profile).
    confidence:
        Nominal confidence level of the bound (fixed at 95% here).
    """

    dataset: VideoDataset
    error_bound: float
    target_model: ModelProfile | None = None
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.error_bound <= 0:
            raise QueryError("error_bound must be positive")


@dataclass(frozen=True)
class AggregationResult:
    """Result of executing an aggregation query."""

    query_name: str
    estimate: float
    true_mean: float
    error_bound: float
    target_invocations: int
    specialized_pass_seconds: float
    target_pass_seconds: float
    estimator_variance: float
    ci_half_width: float = 0.0
    proxy_population_mean: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Total query execution time."""
        return self.specialized_pass_seconds + self.target_pass_seconds

    @property
    def achieved_error(self) -> float:
        """Absolute error of the estimate against the ground truth."""
        return abs(self.estimate - self.true_mean)


class AggregationEngine(TwoPassEngine):
    """Executes aggregation queries with a specialized-NN control variate."""

    def __init__(self, performance_model, config=None,
                 use_control_variate: bool = True) -> None:
        super().__init__(performance_model, config)
        self._use_control_variate = use_control_variate

    def execute(self, query: AggregationQuery, specialized_model: ModelProfile,
                fmt: InputFormatSpec, specialized_accuracy: float = 0.85,
                pilot_fraction: float = 0.02, seed: int = 0,
                frame_limit: int = 20_000,
                proxy_population_mean: float | None = None,
                ) -> AggregationResult:
        """Run ``query`` using ``specialized_model`` on rendition ``fmt``.

        ``specialized_accuracy`` controls how well the specialized NN's counts
        correlate with ground truth (more accurate specialized NNs reduce the
        control-variate variance).  ``frame_limit`` bounds the synthetic
        dataset length so the functional computation stays fast; query times
        are reported for the full dataset by scaling the cheap-pass cost.
        ``proxy_population_mean`` lets a sharded cheap pass inject its exact
        merged mean; by default it is computed here with the same exact sum.
        """
        dataset = query.dataset
        truth, proxy, frames_used = scan_views(dataset, specialized_accuracy,
                                               frame_limit)
        true_mean = float(truth.mean())
        if proxy_population_mean is None and self._use_control_variate:
            proxy_population_mean = exact_mean(proxy)
        final = adaptive_mean_estimate(
            truth, proxy, query.error_bound, pilot_fraction=pilot_fraction,
            seed=seed, use_control_variate=self._use_control_variate,
            proxy_population_mean=proxy_population_mean,
        )
        # Cost model: the specialized pass touches every frame of the full
        # dataset; the target pass touches only the sampled frames (scaled
        # from the truncated functional scan -- variance is length-invariant).
        costs = self.scan_costs(specialized_model, fmt, dataset, frames_used,
                                target_model=query.target_model)
        return AggregationResult(
            query_name=dataset.name,
            estimate=final.estimate,
            true_mean=true_mean,
            error_bound=query.error_bound,
            target_invocations=costs.target_invocations(final.samples_used),
            specialized_pass_seconds=costs.specialized_pass_seconds,
            target_pass_seconds=costs.target_pass_seconds(final.samples_used),
            estimator_variance=final.variance,
            ci_half_width=final.half_width,
            proxy_population_mean=proxy_population_mean or 0.0,
        )
