"""Shared utilities: units, deterministic RNG, Pareto frontiers, tables,
timing, and machine-readable benchmark artifacts."""

from repro.utils.benchio import bench_payload, latency_metrics, write_bench_json
from repro.utils.units import (
    us_to_s,
    s_to_us,
    images_per_second,
    per_image_us,
    megapixels,
    Throughput,
)
from repro.utils.rng import deterministic_rng, stable_hash
from repro.utils.pareto import pareto_frontier, dominates
from repro.utils.tables import Table, format_table
from repro.utils.timing import SimTimer, wall_timer

__all__ = [
    "bench_payload",
    "latency_metrics",
    "write_bench_json",
    "us_to_s",
    "s_to_us",
    "images_per_second",
    "per_image_us",
    "megapixels",
    "Throughput",
    "deterministic_rng",
    "stable_hash",
    "pareto_frontier",
    "dominates",
    "Table",
    "format_table",
    "SimTimer",
    "wall_timer",
]
