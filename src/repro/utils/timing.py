"""Timing helpers: a simulated timer for the performance models and a wall
clock timer for the functional (real numpy) paths.

Units are deliberately different and the naming enforces it:

* :class:`SimTimer` accumulates **microseconds** of *modelled* time -- the
  cost models all speak per-image microseconds (see
  :mod:`repro.utils.units`).  Every accessor carries the ``_us`` suffix or
  says "microseconds" in its docstring; :meth:`SimTimer.add_seconds` and
  :meth:`SimTimer.total_seconds` are the sanctioned conversion boundary for
  callers that think in seconds (span exporters, stage-event consumers).
* :func:`wall_timer` measures **seconds** of real elapsed time and yields
  them under the ``"seconds"`` key.

Never mix the two without going through :func:`repro.utils.units.us_to_s` /
:func:`~repro.utils.units.s_to_us` or the ``*_seconds`` helpers here.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.utils.units import s_to_us, us_to_s

#: Documentation aliases: annotate values with their unit at API boundaries.
Microseconds = float
Seconds = float


@dataclass
class SimTimer:
    """Accumulates simulated time per named stage, in **microseconds**.

    The runtime engine advances this timer with modelled operation costs; the
    measurement study then reads per-stage totals to build breakdowns such as
    Figure 1 of the paper.  Wall-clock measurements (seconds) belong in
    :func:`wall_timer`; convert at the boundary with :meth:`add_seconds` /
    :meth:`total_seconds`.
    """

    totals_us: dict[str, Microseconds] = field(default_factory=dict)

    def add(self, stage: str, microseconds: Microseconds) -> None:
        """Record ``microseconds`` of simulated work attributed to ``stage``."""
        if microseconds < 0:
            raise ValueError("cannot record negative time")
        self.totals_us[stage] = self.totals_us.get(stage, 0.0) + microseconds

    def add_seconds(self, stage: str, seconds: Seconds) -> None:
        """Record simulated work given in seconds (converted to microseconds).

        The one sanctioned seconds -> microseconds call boundary: callers
        holding wall-clock or stage-event durations use this instead of
        multiplying by 1e6 inline.
        """
        self.add(stage, s_to_us(seconds))

    def total(self) -> Microseconds:
        """Total simulated **microseconds** across all stages."""
        return sum(self.totals_us.values())

    def total_seconds(self) -> Seconds:
        """Total simulated time converted to **seconds**."""
        return us_to_s(self.total())

    def breakdown(self) -> dict[str, Microseconds]:
        """Return a copy of the per-stage totals in **microseconds**."""
        return dict(self.totals_us)

    def breakdown_seconds(self) -> dict[str, Seconds]:
        """Return the per-stage totals converted to **seconds**."""
        return {stage: us_to_s(us) for stage, us in self.totals_us.items()}

    def reset(self) -> None:
        """Clear all recorded stage totals."""
        self.totals_us.clear()


@contextmanager
def wall_timer() -> Iterator[dict[str, Seconds]]:
    """Context manager measuring elapsed wall-clock **seconds**.

    Yields a dict whose ``"seconds"`` key holds the elapsed wall time on
    exit.  Use :func:`repro.utils.units.s_to_us` (or
    :meth:`SimTimer.add_seconds`) before comparing against simulated
    microsecond totals.

    >>> with wall_timer() as elapsed:
    ...     do_work()
    >>> elapsed["seconds"]  # doctest: +SKIP
    """
    result: dict[str, Seconds] = {"seconds": 0.0}
    start = time.perf_counter()
    try:
        yield result
    finally:
        result["seconds"] = time.perf_counter() - start
