"""Timing helpers: a simulated timer for the performance models and a wall
clock timer for the functional (real numpy) paths."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class SimTimer:
    """Accumulates simulated time per named stage.

    The runtime engine advances this timer with modelled operation costs; the
    measurement study then reads per-stage totals to build breakdowns such as
    Figure 1 of the paper.
    """

    totals_us: dict[str, float] = field(default_factory=dict)

    def add(self, stage: str, microseconds: float) -> None:
        """Record ``microseconds`` of simulated work attributed to ``stage``."""
        if microseconds < 0:
            raise ValueError("cannot record negative time")
        self.totals_us[stage] = self.totals_us.get(stage, 0.0) + microseconds

    def total(self) -> float:
        """Total simulated microseconds across all stages."""
        return sum(self.totals_us.values())

    def breakdown(self) -> dict[str, float]:
        """Return a copy of the per-stage totals in microseconds."""
        return dict(self.totals_us)

    def reset(self) -> None:
        """Clear all recorded stage totals."""
        self.totals_us.clear()


@contextmanager
def wall_timer() -> Iterator[dict[str, float]]:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with wall_timer() as elapsed:
    ...     do_work()
    >>> elapsed["seconds"]  # doctest: +SKIP
    """
    result: dict[str, float] = {"seconds": 0.0}
    start = time.perf_counter()
    try:
        yield result
    finally:
        result["seconds"] = time.perf_counter() - start
