"""Unit helpers used throughout the performance models.

Throughputs in the paper are reported in images per second (im/s); per-stage
latencies in microseconds per image.  Keeping the conversions in one place
avoids the classic off-by-1e6 mistakes in cost models.
"""

from __future__ import annotations

from dataclasses import dataclass

MICROSECONDS_PER_SECOND = 1_000_000.0


def us_to_s(microseconds: float) -> float:
    """Convert microseconds to seconds."""
    return microseconds / MICROSECONDS_PER_SECOND


def s_to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds * MICROSECONDS_PER_SECOND


def images_per_second(per_image_microseconds: float) -> float:
    """Convert a per-image latency in microseconds to a throughput in im/s."""
    if per_image_microseconds <= 0:
        raise ValueError("per-image latency must be positive, got "
                         f"{per_image_microseconds!r}")
    return MICROSECONDS_PER_SECOND / per_image_microseconds


def per_image_us(throughput_im_s: float) -> float:
    """Convert a throughput in images/second to per-image microseconds."""
    if throughput_im_s <= 0:
        raise ValueError(f"throughput must be positive, got {throughput_im_s!r}")
    return MICROSECONDS_PER_SECOND / throughput_im_s


def megapixels(width: int, height: int) -> float:
    """Return the size of a width x height image in megapixels."""
    if width <= 0 or height <= 0:
        raise ValueError(f"image dimensions must be positive, got {width}x{height}")
    return (width * height) / 1e6


@dataclass(frozen=True)
class Throughput:
    """A throughput measurement with an optional label.

    Attributes
    ----------
    images_per_second:
        The throughput value in images per second.
    label:
        Human-readable description of what was measured.
    """

    images_per_second: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.images_per_second < 0:
            raise ValueError("throughput cannot be negative")

    @property
    def per_image_us(self) -> float:
        """Per-image latency in microseconds implied by this throughput."""
        return per_image_us(self.images_per_second)

    def speedup_over(self, other: "Throughput") -> float:
        """Return how many times faster this throughput is than ``other``."""
        if other.images_per_second <= 0:
            raise ValueError("cannot compute speedup over zero throughput")
        return self.images_per_second / other.images_per_second

    def __str__(self) -> str:
        suffix = f" ({self.label})" if self.label else ""
        return f"{self.images_per_second:,.0f} im/s{suffix}"
