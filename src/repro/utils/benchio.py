"""Machine-readable benchmark artifacts (``BENCH_*.json``).

The serving and cluster benchmarks record their scorecards as small JSON
files at a stable schema, so the performance trajectory of the repo can be
tracked across commits by diffing artifacts instead of scraping stdout.
Every artifact is a single object::

    {"bench": <name>, "schema_version": 1, "meta": {...}, "rows": [...]}

where each row is a flat dict of metric name to number/string (throughput,
p50/p95/p99 latency, and whatever dimensions the bench sweeps).
"""

from __future__ import annotations

import json
from pathlib import Path

SCHEMA_VERSION = 1


def bench_payload(name: str, rows: list[dict],
                  meta: dict | None = None) -> dict:
    """Assemble the standard benchmark-artifact payload."""
    return {
        "bench": name,
        "schema_version": SCHEMA_VERSION,
        "meta": dict(meta or {}),
        "rows": [dict(row) for row in rows],
    }


def write_bench_json(path: str | Path, name: str, rows: list[dict],
                     meta: dict | None = None) -> Path:
    """Write one benchmark artifact; returns the resolved path."""
    target = Path(path)
    payload = bench_payload(name, rows, meta=meta)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8")
    return target.resolve()


def latency_metrics(report) -> dict:
    """The standard scorecard columns from a serving ``LoadReport``."""
    return {
        "throughput_rps": round(report.throughput, 2),
        "p50_ms": round(report.latency.p50_ms, 4),
        "p95_ms": round(report.latency.p95_ms, 4),
        "p99_ms": round(report.latency.p99_ms, 4),
        "completed": report.completed,
        "rejected": report.rejected,
        "deadline_missed": report.deadline_missed,
    }
