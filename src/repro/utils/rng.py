"""Deterministic random number generation.

Every stochastic component in the reproduction (synthetic datasets, measurement
noise, sampling-based aggregation) draws from a generator derived from a stable
hash of a string key plus an integer seed.  This makes experiments and tests
reproducible regardless of import or execution order.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_hash(*parts: object) -> int:
    """Return a 64-bit hash of the string representations of ``parts``.

    Unlike the builtin :func:`hash`, the value is stable across processes and
    Python versions, so seeds derived from it are reproducible.
    """
    text = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def deterministic_rng(*key_parts: object, seed: int = 0) -> np.random.Generator:
    """Create a numpy Generator seeded from ``key_parts`` and ``seed``.

    Parameters
    ----------
    key_parts:
        Arbitrary hashable-as-string objects identifying the consumer, e.g.
        ``("dataset", "bike-bird", "train")``.
    seed:
        An additional integer seed so callers can create independent streams
        for the same key.
    """
    return np.random.default_rng(stable_hash(*key_parts, seed))
