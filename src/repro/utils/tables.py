"""Plain-text table rendering for benchmark harnesses.

Every benchmark prints the rows/series the paper reports.  This module keeps
formatting consistent and dependency-free (no tabulate/pandas available).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:,.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass
class Table:
    """A simple accumulating table used by benchmark harnesses."""

    title: str
    headers: Sequence[str]
    rows: list[list[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append a row; must have exactly one cell per header."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        """Render the table to aligned plain text."""
        return format_table(self.headers, self.rows, title=self.title)

    def column(self, name: str) -> list[object]:
        """Return all values for the column called ``name``."""
        try:
            index = list(self.headers).index(name)
        except ValueError as exc:
            raise KeyError(f"no column named {name!r}") from exc
        return [row[index] for row in self.rows]

    def __str__(self) -> str:
        return self.render()
