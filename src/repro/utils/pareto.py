"""Pareto-frontier utilities.

Smol returns either a single plan (when a constraint is given) or the Pareto
optimal set of plans in (accuracy, throughput) space.  These helpers are
generic over the objective extraction functions so they are reused by the
planner, the baselines, and the benchmark harnesses.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Return True if objective vector ``a`` dominates ``b`` (maximization).

    ``a`` dominates ``b`` when it is at least as good in every objective and
    strictly better in at least one.
    """
    if len(a) != len(b):
        raise ValueError(f"objective vectors differ in length: {len(a)} vs {len(b)}")
    at_least_as_good = all(ai >= bi for ai, bi in zip(a, b))
    strictly_better = any(ai > bi for ai, bi in zip(a, b))
    return at_least_as_good and strictly_better


def pareto_frontier(
    items: Iterable[T],
    objectives: Callable[[T], Sequence[float]],
) -> list[T]:
    """Return the Pareto-optimal subset of ``items`` under maximization.

    Ties (identical objective vectors) are kept once, preserving the first
    occurrence, so the frontier is deterministic for a deterministic input
    order.
    """
    materialized = list(items)
    vectors = [tuple(objectives(item)) for item in materialized]
    frontier: list[T] = []
    seen: set[tuple[float, ...]] = set()
    for i, (item, vec) in enumerate(zip(materialized, vectors)):
        if vec in seen:
            continue
        dominated = any(
            dominates(other, vec) for j, other in enumerate(vectors) if j != i
        )
        if not dominated:
            frontier.append(item)
            seen.add(vec)
    return frontier


def sort_frontier(
    items: Sequence[T],
    objectives: Callable[[T], Sequence[float]],
    axis: int = 0,
) -> list[T]:
    """Sort frontier items by one objective axis (ascending)."""
    return sorted(items, key=lambda item: objectives(item)[axis])
