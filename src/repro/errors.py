"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CodecError(ReproError):
    """Raised when encoding or decoding visual data fails."""


class CorruptBitstreamError(CodecError):
    """Raised when a compressed bitstream fails validation during decode."""


class UnsupportedFormatError(CodecError):
    """Raised when an operation is requested on a format that lacks it."""


class PreprocessingError(ReproError):
    """Raised for invalid preprocessing pipelines or operator arguments."""


class InvalidDAGError(PreprocessingError):
    """Raised when a preprocessing DAG is malformed (cycles, bad edges)."""


class PlacementError(PreprocessingError):
    """Raised when operator placement constraints cannot be satisfied."""


class ModelError(ReproError):
    """Raised for invalid neural-network definitions or shape mismatches."""


class TrainingError(ModelError):
    """Raised when a training run is misconfigured or diverges."""


class PlanError(ReproError):
    """Raised when plan generation or selection fails."""


class InfeasibleConstraintError(PlanError):
    """Raised when no plan satisfies the user-supplied constraints."""


class EngineError(ReproError):
    """Raised by the runtime engine for pipeline execution failures."""


class BufferPoolExhaustedError(EngineError):
    """Raised when the engine's buffer pool cannot satisfy an allocation."""


class HardwareError(ReproError):
    """Raised for unknown devices, instances, or invalid hardware configs."""


class DatasetError(ReproError):
    """Raised when a dataset is unknown or a requested rendition is absent."""


class QueryError(ReproError):
    """Raised by the analytics layer for invalid queries or failed bounds."""


class ServingError(ReproError):
    """Raised by the online serving layer for invalid requests or states."""


class AdmissionError(ServingError):
    """Raised when the serving queue rejects a request (backpressure)."""


class TenantError(ServingError):
    """Raised by the multi-tenant layer for invalid tenant configurations."""


class QuotaExceededError(AdmissionError):
    """Raised when a tenant's admission quota (rate or in-flight cap) is
    exhausted.  A subclass of :class:`AdmissionError` so load generators and
    retry loops that shed on admission failures handle throttling the same
    way they handle queue pressure."""


class ClusterError(ReproError):
    """Raised by the multi-worker cluster runtime for execution failures."""


class WorkerCrashedError(ClusterError):
    """Raised when a worker dies and its work cannot be recovered."""


class NoHealthyWorkerError(ClusterError):
    """Raised when no live worker with a closed circuit can accept work."""


class StoreError(ReproError):
    """Raised by the persistent rendition/score store for invalid requests."""


class StoreCorruptionError(StoreError):
    """Raised when on-disk store state fails validation (torn manifest,
    content-address mismatch, undecodable chunk)."""


class AdaptError(ReproError):
    """Raised by the online adaptation layer for invalid configurations."""
