"""Synthetic datasets standing in for the paper's eight evaluation datasets.

Four image classification datasets (bike-bird, animals-10, birds-200,
imagenet) and four video aggregation datasets (night-street, taipei,
amsterdam, rialto).  The synthetic generators produce parametric shapes and
textures so classes are genuinely learnable by the numpy models, and every
dataset is stored in multiple natively-present renditions (full resolution,
161-pixel thumbnails in PNG and JPEG) to exercise the multi-format planner.
"""

from repro.datasets.synthetic import SyntheticImageGenerator, render_class_image
from repro.datasets.images import (
    ImageDataset,
    DatasetStats,
    load_image_dataset,
    list_image_datasets,
)
from repro.datasets.store import MultiResolutionStore, StoredRendition
from repro.datasets.video import (
    VideoDataset,
    load_video_dataset,
    list_video_datasets,
)

__all__ = [
    "SyntheticImageGenerator",
    "render_class_image",
    "ImageDataset",
    "DatasetStats",
    "load_image_dataset",
    "list_image_datasets",
    "MultiResolutionStore",
    "StoredRendition",
    "VideoDataset",
    "load_video_dataset",
    "list_video_datasets",
]
