"""The four image classification evaluation datasets (Table 6).

Each dataset pairs the paper's statistics (class count, train/test sizes)
with a synthetic generator scaled down to a size trainable in numpy, plus the
set of natively-available renditions used by the planner.  ``load_image_dataset``
returns a lightweight handle; materializing pixels or encoded renditions is
done lazily so the planner-only benchmarks never pay generation costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.codecs.formats import (
    InputFormatSpec,
    STANDARD_IMAGE_FORMATS,
)
from repro.datasets.store import MultiResolutionStore
from repro.datasets.synthetic import SyntheticImageGenerator
from repro.errors import DatasetError
from repro.hardware import calibration as cal


@dataclass(frozen=True)
class DatasetStats:
    """Published statistics of an evaluation dataset (Table 6)."""

    name: str
    num_classes: int
    train_images: int
    test_images: int

    @property
    def difficulty_rank(self) -> int:
        """Rank by class count (1 = easiest)."""
        order = sorted(cal.TABLE6_DATASETS,
                       key=lambda n: cal.TABLE6_DATASETS[n]["classes"])
        return order.index(self.name) + 1 if self.name in order else 0


@dataclass
class ImageDataset:
    """Handle for one image classification dataset.

    Attributes
    ----------
    stats:
        Paper-scale statistics (Table 6).
    synthetic_classes:
        Number of classes the synthetic stand-in uses (capped so numpy
        training stays tractable; proportional to the real class count).
    synthetic_samples_per_class:
        Training images per class generated for the functional experiments.
    image_size:
        Square pixel size of generated full-resolution images.
    available_formats:
        Natively-present renditions (full-resolution JPEG plus thumbnails).
    """

    stats: DatasetStats
    synthetic_classes: int
    synthetic_samples_per_class: int = 24
    image_size: int = 64
    available_formats: tuple[InputFormatSpec, ...] = field(
        default_factory=lambda: STANDARD_IMAGE_FORMATS
    )

    def __post_init__(self) -> None:
        if self.synthetic_classes < 2:
            raise DatasetError("synthetic_classes must be at least 2")

    @property
    def name(self) -> str:
        """Dataset name."""
        return self.stats.name

    @property
    def num_classes(self) -> int:
        """Paper-scale class count."""
        return self.stats.num_classes

    def generator(self, seed: int = 0) -> SyntheticImageGenerator:
        """The synthetic image generator for this dataset."""
        return SyntheticImageGenerator(
            num_classes=self.synthetic_classes,
            image_size=self.image_size,
            seed=seed,
        )

    def training_arrays(self, samples_per_class: int | None = None,
                        seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """Normalized NCHW train arrays for the numpy trainer."""
        per_class = samples_per_class or self.synthetic_samples_per_class
        return self.generator(seed).generate_array_split(per_class, split="train")

    def test_arrays(self, samples_per_class: int | None = None,
                    seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """Normalized NCHW test arrays."""
        per_class = samples_per_class or max(
            4, self.synthetic_samples_per_class // 3
        )
        return self.generator(seed).generate_array_split(per_class, split="test")

    def build_store(self, images_per_class: int = 4,
                    seed: int = 0) -> MultiResolutionStore:
        """Encode a small sample of the dataset into every rendition."""
        store = MultiResolutionStore(list(self.available_formats))
        generator = self.generator(seed)
        for class_index in range(self.synthetic_classes):
            for sample in range(images_per_class):
                image = generator.generate_image(class_index, 2_000_000 + sample)
                store.ingest(image)
        return store


def _dataset_configs() -> dict[str, ImageDataset]:
    configs = {}
    synthetic_classes = {"bike-bird": 2, "animals-10": 6, "birds-200": 8,
                         "imagenet": 10}
    for name, stats in cal.TABLE6_DATASETS.items():
        configs[name] = ImageDataset(
            stats=DatasetStats(
                name=name,
                num_classes=stats["classes"],
                train_images=stats["train"],
                test_images=stats["test"],
            ),
            synthetic_classes=synthetic_classes[name],
        )
    return configs


_DATASETS = _dataset_configs()


def load_image_dataset(name: str) -> ImageDataset:
    """Load an image dataset handle by name."""
    if name not in _DATASETS:
        raise DatasetError(
            f"unknown image dataset {name!r}; known: {sorted(_DATASETS)}"
        )
    return _DATASETS[name]


def list_image_datasets() -> list[ImageDataset]:
    """All image datasets, easiest (fewest classes) first."""
    return sorted(_DATASETS.values(), key=lambda d: d.num_classes)
