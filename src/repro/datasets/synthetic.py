"""Synthetic image generation.

Each class is a parametric visual concept: a base colour palette, a geometric
primitive (disk, bar, checker, ring), a characteristic spatial frequency, and
a texture amplitude.  Images of the same class share these parameters but
vary in position, scale, and noise, so small convolutional networks can learn
the classes while low-resolution renditions genuinely lose discriminative
detail (high-frequency texture), reproducing the accuracy/fidelity trade-offs
the paper studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codecs.image import Image
from repro.errors import DatasetError
from repro.utils.rng import deterministic_rng


@dataclass(frozen=True)
class ClassSpec:
    """Visual parameters of one synthetic class."""

    class_index: int
    base_color: tuple[float, float, float]
    shape: str
    frequency: float
    texture_amplitude: float


_SHAPES = ("disk", "bar", "checker", "ring")


def _class_spec(class_index: int, num_classes: int, seed: int) -> ClassSpec:
    rng = deterministic_rng("class-spec", class_index, num_classes, seed=seed)
    return ClassSpec(
        class_index=class_index,
        base_color=tuple(rng.uniform(0.15, 0.85, size=3).tolist()),
        shape=_SHAPES[class_index % len(_SHAPES)],
        frequency=float(rng.uniform(2.0, 9.0)),
        texture_amplitude=float(rng.uniform(0.08, 0.30)),
    )


def render_class_image(spec: ClassSpec, size: int,
                       rng: np.random.Generator) -> np.ndarray:
    """Render one HWC uint8 image of the given class at ``size`` x ``size``."""
    if size < 8:
        raise DatasetError("image size must be at least 8 pixels")
    ys, xs = np.meshgrid(np.linspace(-1, 1, size), np.linspace(-1, 1, size),
                         indexing="ij")
    center_y, center_x = rng.uniform(-0.35, 0.35, size=2)
    scale = rng.uniform(0.35, 0.7)
    dist = np.sqrt((ys - center_y) ** 2 + (xs - center_x) ** 2)
    if spec.shape == "disk":
        mask = (dist < scale).astype(np.float64)
    elif spec.shape == "bar":
        angle = rng.uniform(0, np.pi)
        projected = (xs - center_x) * np.cos(angle) + (ys - center_y) * np.sin(angle)
        mask = (np.abs(projected) < scale * 0.35).astype(np.float64)
    elif spec.shape == "checker":
        mask = (
            (np.floor((xs + 1) * spec.frequency / 2)
             + np.floor((ys + 1) * spec.frequency / 2)) % 2
        ).astype(np.float64)
    else:  # ring
        mask = ((dist > scale * 0.55) & (dist < scale)).astype(np.float64)
    texture = spec.texture_amplitude * np.sin(
        2 * np.pi * spec.frequency * (xs * 0.7 + ys * 0.3)
    )
    background = rng.uniform(0.05, 0.25)
    image = np.empty((size, size, 3), dtype=np.float64)
    for channel in range(3):
        foreground = spec.base_color[channel] + texture
        image[:, :, channel] = background + mask * (foreground - background)
    noise = rng.normal(0.0, 0.02, size=image.shape)
    image = np.clip(image + noise, 0.0, 1.0)
    return (image * 255.0).astype(np.uint8)


class SyntheticImageGenerator:
    """Generates labelled synthetic images for a fixed number of classes."""

    def __init__(self, num_classes: int, image_size: int = 64,
                 seed: int = 0) -> None:
        if num_classes < 2:
            raise DatasetError("need at least 2 classes")
        self._num_classes = num_classes
        self._image_size = image_size
        self._seed = seed
        self._specs = [
            _class_spec(index, num_classes, seed) for index in range(num_classes)
        ]

    @property
    def num_classes(self) -> int:
        """Number of classes."""
        return self._num_classes

    @property
    def image_size(self) -> int:
        """Square image size in pixels."""
        return self._image_size

    def generate_image(self, class_index: int, sample_index: int) -> Image:
        """Deterministically generate one labelled image."""
        if not 0 <= class_index < self._num_classes:
            raise DatasetError(
                f"class index {class_index} out of range [0, {self._num_classes})"
            )
        rng = deterministic_rng("synthetic-image", class_index, sample_index,
                                seed=self._seed)
        pixels = render_class_image(self._specs[class_index], self._image_size, rng)
        return Image(pixels=pixels, label=class_index,
                     source_id=f"class{class_index}-sample{sample_index}")

    def generate_split(self, samples_per_class: int,
                       split: str = "train") -> tuple[list[Image], np.ndarray]:
        """Generate a balanced split; ``split`` offsets sample indices so the
        train and test sets are disjoint."""
        if samples_per_class <= 0:
            raise DatasetError("samples_per_class must be positive")
        offset = 0 if split == "train" else 1_000_000
        images: list[Image] = []
        labels: list[int] = []
        for class_index in range(self._num_classes):
            for sample in range(samples_per_class):
                images.append(self.generate_image(class_index, offset + sample))
                labels.append(class_index)
        return images, np.array(labels, dtype=np.int64)

    def generate_array_split(
        self, samples_per_class: int, split: str = "train"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Like :meth:`generate_split` but returns a normalized NCHW float array."""
        images, labels = self.generate_split(samples_per_class, split)
        stacked = np.stack([img.pixels for img in images]).astype(np.float32) / 255.0
        return np.transpose(stacked, (0, 3, 1, 2)), labels
