"""Multi-resolution, multi-encoding storage of visual datasets.

Serving systems natively keep several renditions of each asset: full
resolution originals, fixed-size thumbnails, multiple video bitrates.  The
store encodes each source image once per configured rendition using the real
codecs, so decode cost and fidelity differences between renditions are
genuine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codecs.formats import InputFormatSpec
from repro.codecs.image import Image, ImageFormat
from repro.codecs.jpeg import JpegCodec, JpegEncoded
from repro.codecs.png import PngCodec, PngEncoded
from repro.codecs.roi import RegionOfInterest
from repro.errors import DatasetError, UnsupportedFormatError
from repro.preprocessing.ops import bilinear_resize


@dataclass
class StoredRendition:
    """One encoded rendition of one source image."""

    format_spec: InputFormatSpec
    encoded: JpegEncoded | PngEncoded
    source_id: str
    label: int | None

    @property
    def compressed_bytes(self) -> int:
        """Encoded size in bytes."""
        return self.encoded.compressed_bytes


class MultiResolutionStore:
    """Encodes and serves images in several natively-present renditions."""

    def __init__(self, formats: list[InputFormatSpec]) -> None:
        if not formats:
            raise DatasetError("the store needs at least one rendition format")
        self._formats = {spec.name: spec for spec in formats}
        self._codecs: dict[str, JpegCodec | PngCodec] = {}
        for spec in formats:
            if spec.codec is ImageFormat.JPEG:
                self._codecs[spec.name] = JpegCodec(quality=spec.quality)
            elif spec.codec is ImageFormat.PNG:
                self._codecs[spec.name] = PngCodec()
            else:
                raise UnsupportedFormatError(
                    "the image store supports JPEG and PNG renditions, "
                    f"not {spec.codec}"
                )
        self._renditions: dict[str, dict[str, StoredRendition]] = {}

    @property
    def formats(self) -> list[InputFormatSpec]:
        """The configured rendition formats."""
        return list(self._formats.values())

    def __len__(self) -> int:
        return len(self._renditions)

    def ingest(self, image: Image, source_id: str | None = None) -> str:
        """Encode ``image`` into every configured rendition; returns its id."""
        asset_id = source_id or image.source_id or f"asset-{len(self._renditions)}"
        if asset_id in self._renditions:
            raise DatasetError(f"asset {asset_id!r} already ingested")
        per_format: dict[str, StoredRendition] = {}
        for name, spec in self._formats.items():
            rendition_image = self._render(image, spec)
            encoded = self._codecs[name].encode(rendition_image)
            per_format[name] = StoredRendition(
                format_spec=spec,
                encoded=encoded,
                source_id=asset_id,
                label=image.label,
            )
        self._renditions[asset_id] = per_format
        return asset_id

    def asset_ids(self) -> list[str]:
        """All ingested asset identifiers."""
        return list(self._renditions)

    def rendition(self, asset_id: str, format_name: str) -> StoredRendition:
        """Fetch a specific rendition of an asset."""
        try:
            return self._renditions[asset_id][format_name]
        except KeyError as exc:
            raise DatasetError(
                f"no rendition {format_name!r} for asset {asset_id!r}"
            ) from exc

    def decode(self, asset_id: str, format_name: str,
               roi: RegionOfInterest | None = None) -> Image:
        """Decode a rendition, optionally restricted to ``roi``."""
        stored = self.rendition(asset_id, format_name)
        codec = self._codecs[format_name]
        if roi is None:
            decoded = codec.decode(stored.encoded)
        elif isinstance(codec, JpegCodec):
            decoded = codec.decode_roi(stored.encoded, roi)
        else:
            decoded = codec.decode_roi(stored.encoded, roi)
        decoded.label = stored.label
        decoded.source_id = asset_id
        return decoded

    def total_bytes(self, format_name: str) -> int:
        """Total compressed bytes stored for one rendition format."""
        if format_name not in self._formats:
            raise DatasetError(f"unknown rendition format {format_name!r}")
        return sum(
            per_format[format_name].compressed_bytes
            for per_format in self._renditions.values()
        )

    @staticmethod
    def _render(image: Image, spec: InputFormatSpec) -> Image:
        """Resize the source image to the rendition's stored resolution."""
        if spec.short_side >= image.resolution.short_side:
            return image
        target = image.resolution.scaled_to_short_side(spec.short_side)
        resized = bilinear_resize(image.pixels, target.height, target.width)
        return Image(pixels=resized, label=image.label, source_id=image.source_id)
