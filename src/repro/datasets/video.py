"""The four video aggregation datasets (night-street, taipei, amsterdam,
rialto) as synthetic stand-ins.

Each dataset is a long fixed-camera video with a per-frame ground-truth count
of target objects (cars, people).  The synthetic generator produces a
deterministic per-frame count process (a bursty autoregressive process whose
mean and variance differ per dataset) and can render actual frames -- moving
bright blobs over a static background -- for the functional codec path.  The
aggregation experiments (Figure 9) only need the count process plus the
specialized-NN noise model; frame rendering is used by codec and engine tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.codecs.formats import (
    InputFormatSpec,
    VIDEO_1080P_H264,
    VIDEO_480P_H264,
)
from repro.codecs.image import Image
from repro.errors import DatasetError
from repro.utils.rng import deterministic_rng


@dataclass(frozen=True)
class VideoDatasetSpec:
    """Statistical parameters of one synthetic video dataset."""

    name: str
    num_frames: int
    mean_count: float
    burstiness: float      # autocorrelation of the count process in [0, 1)
    count_cap: int
    frame_size: int = 64   # rendered frame size for the functional path


@dataclass
class VideoDataset:
    """Handle for one video aggregation dataset."""

    spec: VideoDatasetSpec
    available_formats: tuple[InputFormatSpec, ...] = field(
        default_factory=lambda: (VIDEO_1080P_H264, VIDEO_480P_H264)
    )

    @property
    def name(self) -> str:
        """Dataset name."""
        return self.spec.name

    @property
    def num_frames(self) -> int:
        """Number of frames in the dataset."""
        return self.spec.num_frames

    def ground_truth_counts(self, limit: int | None = None) -> np.ndarray:
        """Per-frame ground-truth object counts (deterministic)."""
        frames = self.spec.num_frames if limit is None else min(limit,
                                                                self.spec.num_frames)
        rng = deterministic_rng("video-counts", self.spec.name)
        counts = np.empty(frames, dtype=np.int64)
        level = self.spec.mean_count
        for index in range(frames):
            level = (
                self.spec.burstiness * level
                + (1 - self.spec.burstiness) * self.spec.mean_count
                + rng.normal(0.0, self.spec.mean_count * 0.45)
            )
            level = max(0.0, level)
            counts[index] = min(self.spec.count_cap, int(round(
                rng.poisson(max(level, 1e-3))
            )))
        return counts

    def specialized_nn_predictions(self, accuracy_factor: float = 0.85,
                                   limit: int | None = None) -> np.ndarray:
        """Noisy per-frame counts as produced by a specialized NN.

        ``accuracy_factor`` in (0, 1] controls how correlated the proxy's
        counts are with the ground truth: the BlazeIt control-variate
        estimator's variance reduction depends directly on this correlation.
        """
        if not 0.0 < accuracy_factor <= 1.0:
            raise DatasetError("accuracy_factor must be in (0, 1]")
        truth = self.ground_truth_counts(limit)
        rng = deterministic_rng("video-proxy", self.spec.name, accuracy_factor)
        noise_scale = (1.0 - accuracy_factor) * (self.spec.mean_count + 1.0)
        noise = rng.normal(0.0, max(noise_scale, 1e-6), size=truth.shape)
        bias = rng.normal(0.0, 0.05 * self.spec.mean_count)
        predictions = np.clip(truth + noise + bias, 0, self.spec.count_cap)
        return predictions

    def render_frames(self, num_frames: int, seed: int = 0) -> list[Image]:
        """Render actual frames (moving blobs) for the codec/engine tests."""
        if num_frames <= 0:
            raise DatasetError("num_frames must be positive")
        counts = self.ground_truth_counts(num_frames)
        size = self.spec.frame_size
        rng = deterministic_rng("video-frames", self.spec.name, seed=seed)
        background = rng.uniform(30, 80, size=(size, size, 3))
        frames: list[Image] = []
        ys, xs = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
        for frame_index in range(num_frames):
            frame = background.copy()
            for obj in range(int(counts[frame_index])):
                obj_rng = deterministic_rng(
                    "video-object", self.spec.name, frame_index, obj, seed=seed
                )
                cy, cx = obj_rng.uniform(8, size - 8, size=2)
                radius = obj_rng.uniform(3, 7)
                color = obj_rng.uniform(150, 255, size=3)
                mask = ((ys - cy) ** 2 + (xs - cx) ** 2) < radius ** 2
                frame[mask] = color
            frames.append(Image(pixels=np.clip(frame, 0, 255).astype(np.uint8),
                                label=int(counts[frame_index]),
                                source_id=f"{self.spec.name}-frame{frame_index}"))
        return frames


_VIDEO_SPECS: dict[str, VideoDatasetSpec] = {
    "night-street": VideoDatasetSpec(
        name="night-street", num_frames=100_000, mean_count=2.2,
        burstiness=0.85, count_cap=12,
    ),
    "taipei": VideoDatasetSpec(
        name="taipei", num_frames=120_000, mean_count=4.5,
        burstiness=0.9, count_cap=20,
    ),
    "amsterdam": VideoDatasetSpec(
        name="amsterdam", num_frames=110_000, mean_count=1.4,
        burstiness=0.8, count_cap=10,
    ),
    "rialto": VideoDatasetSpec(
        name="rialto", num_frames=125_000, mean_count=6.0,
        burstiness=0.92, count_cap=25,
    ),
}


def load_video_dataset(name: str) -> VideoDataset:
    """Load a video dataset handle by name."""
    if name not in _VIDEO_SPECS:
        raise DatasetError(
            f"unknown video dataset {name!r}; known: {sorted(_VIDEO_SPECS)}"
        )
    return VideoDataset(spec=_VIDEO_SPECS[name])


def list_video_datasets() -> list[VideoDataset]:
    """All video datasets in a stable order."""
    return [VideoDataset(spec=_VIDEO_SPECS[name]) for name in sorted(_VIDEO_SPECS)]
