"""Region-of-interest helpers for partial decoding (Section 6.4, Algorithm 1).

Many DNNs only need a portion of each image (the central crop for
classification, face crops for embeddings).  When the region of interest is
known, a macroblock-addressable codec need only decode the blocks intersecting
it.  This module computes ROIs and aligns them to the macroblock grid.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codecs.blocks import BLOCK_SIZE
from repro.codecs.image import Resolution
from repro.errors import CodecError


@dataclass(frozen=True)
class RegionOfInterest:
    """A rectangular pixel region: ``(left, top)`` inclusive, width x height."""

    left: int
    top: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.left < 0 or self.top < 0:
            raise CodecError("ROI origin must be non-negative")
        if self.width <= 0 or self.height <= 0:
            raise CodecError("ROI dimensions must be positive")

    @property
    def right(self) -> int:
        """Exclusive right edge."""
        return self.left + self.width

    @property
    def bottom(self) -> int:
        """Exclusive bottom edge."""
        return self.top + self.height

    @property
    def pixels(self) -> int:
        """Number of pixels covered by the region."""
        return self.width * self.height

    def clamp_to(self, resolution: Resolution) -> "RegionOfInterest":
        """Clamp the region to fit inside ``resolution``."""
        left = min(self.left, resolution.width - 1)
        top = min(self.top, resolution.height - 1)
        width = min(self.width, resolution.width - left)
        height = min(self.height, resolution.height - top)
        return RegionOfInterest(left=left, top=top, width=width, height=height)

    def contains(self, other: "RegionOfInterest") -> bool:
        """Return True if ``other`` lies entirely within this region."""
        return (
            self.left <= other.left
            and self.top <= other.top
            and self.right >= other.right
            and self.bottom >= other.bottom
        )


def central_crop_roi(resolution: Resolution, crop_size: int,
                     resize_short_side: int = 256) -> RegionOfInterest:
    """Compute the source-image ROI for the standard central-crop pipeline.

    The standard ResNet pipeline resizes the short side to
    ``resize_short_side`` and then takes a central ``crop_size`` x
    ``crop_size`` crop.  This function maps that crop back to source-image
    coordinates (Algorithm 1 of the paper), so only the covering region needs
    decoding.
    """
    if crop_size <= 0 or resize_short_side <= 0:
        raise CodecError("crop and resize sizes must be positive")
    if crop_size > resize_short_side:
        raise CodecError("crop size cannot exceed the resized short side")
    resized = resolution.scaled_to_short_side(resize_short_side)
    # Crop rectangle in resized coordinates.
    crop_left = (resized.width - crop_size) / 2.0
    crop_top = (resized.height - crop_size) / 2.0
    # Map back to source coordinates.
    scale = resolution.short_side / resize_short_side
    left = int(crop_left * scale)
    top = int(crop_top * scale)
    width = min(resolution.width - left, int(round(crop_size * scale)) + 1)
    height = min(resolution.height - top, int(round(crop_size * scale)) + 1)
    return RegionOfInterest(left=left, top=top, width=width, height=height)


def expand_to_blocks(roi: RegionOfInterest, resolution: Resolution,
                     block_size: int = BLOCK_SIZE) -> RegionOfInterest:
    """Expand an ROI to the smallest rectangle aligned to the macroblock grid."""
    if block_size <= 0:
        raise CodecError("block size must be positive")
    clamped = roi.clamp_to(resolution)
    left = (clamped.left // block_size) * block_size
    top = (clamped.top // block_size) * block_size
    right = min(
        resolution.width,
        ((clamped.right + block_size - 1) // block_size) * block_size,
    )
    bottom = min(
        resolution.height,
        ((clamped.bottom + block_size - 1) // block_size) * block_size,
    )
    return RegionOfInterest(left=left, top=top, width=right - left,
                            height=bottom - top)


def raster_rows_required(roi: RegionOfInterest) -> int:
    """Rows that must be decoded by a raster-order (early stopping) decoder.

    Raster-order formats (PNG, WebP) cannot skip leading rows, so the decoder
    must process every scanline from the top of the image down to the bottom
    edge of the region of interest.
    """
    return roi.bottom
