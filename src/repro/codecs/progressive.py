"""A JPEG2000-like progressive (multi-resolution) image codec.

The paper notes (Section 6.4 and Appendix A) that JPEG2000 stores
"progressive" images -- a pyramid of downsampled versions of the same image --
which can be partially decoded up to a chosen resolution.  This codec
implements that capability: the encoder stores a Laplacian-style pyramid
(a base thumbnail plus per-level detail residuals, each compressed with the
block codec), and the decoder can stop after any level, paying only for the
levels it consumed.

This is the "multi-resolution decoding" capability in the format registry and
a natural extension point for Smol: a progressive rendition subsumes the
separate full-resolution + thumbnail renditions the standard plan space uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codecs.image import Image, Resolution
from repro.codecs.jpeg import JpegCodec, JpegEncoded
from repro.errors import CodecError
from repro.preprocessing.ops import bilinear_resize


@dataclass(frozen=True)
class ProgressiveEncoded:
    """An encoded progressive image: base level plus detail residuals.

    Levels are ordered coarse to fine: ``levels[0]`` is the base thumbnail,
    ``levels[i]`` for i > 0 encodes the residual against the upsampled
    reconstruction of the previous level.
    """

    width: int
    height: int
    levels: tuple[JpegEncoded, ...]
    level_resolutions: tuple[Resolution, ...]

    @property
    def num_levels(self) -> int:
        """Number of resolution levels stored."""
        return len(self.levels)

    @property
    def compressed_bytes(self) -> int:
        """Total compressed size across all levels."""
        return sum(level.compressed_bytes for level in self.levels)

    def bytes_up_to(self, level: int) -> int:
        """Compressed bytes a decoder reads to reconstruct up to ``level``."""
        if not 0 <= level < self.num_levels:
            raise CodecError(f"level {level} out of range [0, {self.num_levels})")
        return sum(self.levels[i].compressed_bytes for i in range(level + 1))


class ProgressiveCodec:
    """Encoder/decoder for the progressive multi-resolution format."""

    def __init__(self, num_levels: int = 3, quality: int = 90) -> None:
        if num_levels < 1:
            raise CodecError("num_levels must be at least 1")
        self._num_levels = num_levels
        self._frame_codec = JpegCodec(quality=quality)

    def encode(self, image: Image) -> ProgressiveEncoded:
        """Encode an image into a coarse-to-fine resolution pyramid."""
        resolutions: list[Resolution] = []
        for level in range(self._num_levels):
            scale = 2 ** (self._num_levels - 1 - level)
            resolutions.append(Resolution(
                width=max(8, image.width // scale),
                height=max(8, image.height // scale),
            ))
        levels: list[JpegEncoded] = []
        reconstruction: np.ndarray | None = None
        for level, resolution in enumerate(resolutions):
            target = bilinear_resize(image.pixels, resolution.height,
                                     resolution.width)
            if level == 0:
                payload_pixels = target
            else:
                upsampled = bilinear_resize(reconstruction, resolution.height,
                                            resolution.width)
                residual = target.astype(np.int16) - upsampled.astype(np.int16)
                payload_pixels = np.clip(residual // 2 + 128, 0, 255).astype(
                    np.uint8
                )
            encoded = self._frame_codec.encode(Image(pixels=payload_pixels))
            levels.append(encoded)
            decoded_payload = self._frame_codec.decode(encoded).pixels
            if level == 0:
                reconstruction = decoded_payload
            else:
                upsampled = bilinear_resize(reconstruction, resolution.height,
                                            resolution.width)
                residual = (decoded_payload.astype(np.int16) - 128) * 2
                reconstruction = np.clip(
                    upsampled.astype(np.int16) + residual, 0, 255
                ).astype(np.uint8)
        return ProgressiveEncoded(
            width=image.width,
            height=image.height,
            levels=tuple(levels),
            level_resolutions=tuple(resolutions),
        )

    def decode(self, encoded: ProgressiveEncoded,
               max_level: int | None = None) -> Image:
        """Decode up to ``max_level`` (inclusive); None decodes all levels.

        Stopping early returns the lower-resolution reconstruction, exactly
        the behaviour Smol exploits to trade fidelity for decode cost.
        """
        last = encoded.num_levels - 1 if max_level is None else max_level
        if not 0 <= last < encoded.num_levels:
            raise CodecError(
                f"max_level {max_level} out of range [0, {encoded.num_levels})"
            )
        reconstruction: np.ndarray | None = None
        for level in range(last + 1):
            resolution = encoded.level_resolutions[level]
            decoded_payload = self._frame_codec.decode(encoded.levels[level]).pixels
            if level == 0:
                reconstruction = decoded_payload
            else:
                upsampled = bilinear_resize(reconstruction, resolution.height,
                                            resolution.width)
                residual = (decoded_payload.astype(np.int16) - 128) * 2
                reconstruction = np.clip(
                    upsampled.astype(np.int16) + residual, 0, 255
                ).astype(np.uint8)
        return Image(pixels=reconstruction)

    def decode_for_short_side(self, encoded: ProgressiveEncoded,
                              short_side: int) -> Image:
        """Decode the cheapest level whose short side covers ``short_side``."""
        if short_side <= 0:
            raise CodecError("short_side must be positive")
        for level, resolution in enumerate(encoded.level_resolutions):
            if resolution.short_side >= short_side:
                return self.decode(encoded, max_level=level)
        return self.decode(encoded)
