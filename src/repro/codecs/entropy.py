"""Entropy coding for the lossy codecs.

Real JPEG uses Huffman coding of run-length encoded, zig-zag ordered DCT
coefficients.  We implement run-length encoding of zero runs followed by a
canonical variable-length integer packing.  The important behavioural
properties are preserved: compressed size shrinks with aggressive
quantization, decoding cost scales with the number of coded symbols, and the
stream is decodable block-by-block (which is what makes macroblock ROI
decoding possible).

This coder is intentionally byte-aligned per block: each block's payload is
independently decodable given its offset, mirroring JPEG restart markers.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import CorruptBitstreamError

_MAGIC = b"RPRE"  # repro run-length entropy stream


def encode_coefficients(flat_coeffs: np.ndarray) -> bytes:
    """Encode one block's zig-zag coefficient vector.

    Encoding: pairs of (zero-run length, value) with values stored as
    zig-zag-signed varints, terminated by an end-of-block marker.
    """
    if flat_coeffs.ndim != 1:
        raise CorruptBitstreamError("expected a flat coefficient vector")
    out = bytearray()
    run = 0
    for value in flat_coeffs.tolist():
        if value == 0:
            run += 1
            continue
        _write_varint(out, run)
        _write_varint(out, _zigzag_signed(int(value)))
        run = 0
    # End-of-block marker: run of 0xFFFF (an impossible run length for 64
    # coefficient blocks) signals the remaining coefficients are zero.
    _write_varint(out, 0xFFFF)
    return bytes(out)


def decode_coefficients(payload: bytes, length: int) -> np.ndarray:
    """Decode one block's payload into a coefficient vector of ``length``."""
    coeffs = np.zeros(length, dtype=np.int16)
    pos = 0
    index = 0
    while True:
        run, pos = _read_varint(payload, pos)
        if run == 0xFFFF:
            break
        value, pos = _read_varint(payload, pos)
        index += run
        if index >= length:
            raise CorruptBitstreamError(
                f"coefficient index {index} exceeds block length {length}"
            )
        coeffs[index] = _unzigzag_signed(value)
        index += 1
    return coeffs


def pack_blocks(block_payloads: list[bytes]) -> bytes:
    """Pack per-block payloads with an offset index for random access.

    Layout: magic, block count, uint32 offsets table, concatenated payloads.
    The offsets table is what enables macroblock ROI decoding: a decoder can
    seek straight to the blocks intersecting the region of interest.
    """
    header = bytearray()
    header += _MAGIC
    header += struct.pack("<I", len(block_payloads))
    offsets = []
    cursor = 0
    for payload in block_payloads:
        offsets.append(cursor)
        cursor += len(payload)
    header += struct.pack(f"<{len(offsets)}I", *offsets) if offsets else b""
    header += struct.pack("<I", cursor)  # total payload size for bounds checks
    return bytes(header) + b"".join(block_payloads)


def unpack_block(data: bytes, block_index: int) -> bytes:
    """Extract the payload of a single block from a packed stream."""
    count, offsets_start = _read_header(data)
    if not 0 <= block_index < count:
        raise CorruptBitstreamError(
            f"block index {block_index} out of range [0, {count})"
        )
    offsets = struct.unpack_from(f"<{count}I", data, offsets_start)
    total = struct.unpack_from("<I", data, offsets_start + 4 * count)[0]
    payload_start = offsets_start + 4 * count + 4
    start = payload_start + offsets[block_index]
    end = (
        payload_start + offsets[block_index + 1]
        if block_index + 1 < count
        else payload_start + total
    )
    return data[start:end]


def block_count(data: bytes) -> int:
    """Number of blocks in a packed stream."""
    count, _ = _read_header(data)
    return count


def payload_size(data: bytes) -> int:
    """Total size in bytes of the packed coefficient payloads."""
    count, offsets_start = _read_header(data)
    return struct.unpack_from("<I", data, offsets_start + 4 * count)[0]


def _read_header(data: bytes) -> tuple[int, int]:
    if len(data) < 8 or data[:4] != _MAGIC:
        raise CorruptBitstreamError("not a repro entropy stream")
    count = struct.unpack_from("<I", data, 4)[0]
    return count, 8


def _zigzag_signed(value: int) -> int:
    """Map a signed int to an unsigned int (zig-zag signing, as in protobuf)."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def _unzigzag_signed(value: int) -> int:
    """Inverse of :func:`_zigzag_signed`."""
    return (value >> 1) if value % 2 == 0 else -((value + 1) >> 1)


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise CorruptBitstreamError("varints must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CorruptBitstreamError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise CorruptBitstreamError("varint too long")
