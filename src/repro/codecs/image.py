"""In-memory image containers used by the codecs and preprocessing operators.

Images are HWC uint8 arrays (the decoded representation) paired with light
metadata.  The DNN-facing representation (float32, CHW, normalized) is
produced by the preprocessing operators, not stored here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import CodecError


class ImageFormat(enum.Enum):
    """Encoded visual data formats supported by the substrate."""

    JPEG = "jpeg"
    PNG = "png"
    WEBP = "webp"
    HEIC = "heic"
    H264 = "h264"
    VP8 = "vp8"
    VP9 = "vp9"
    RAW = "raw"


@dataclass(frozen=True)
class Resolution:
    """An image resolution (width x height) with helpers for short-side sizing."""

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise CodecError(f"invalid resolution {self.width}x{self.height}")

    @property
    def pixels(self) -> int:
        """Number of pixels."""
        return self.width * self.height

    @property
    def short_side(self) -> int:
        """Length of the shorter edge."""
        return min(self.width, self.height)

    def scaled_to_short_side(self, short_side: int) -> "Resolution":
        """Resolution with the same aspect ratio whose shorter edge is given."""
        if short_side <= 0:
            raise CodecError("short side must be positive")
        scale = short_side / self.short_side
        return Resolution(
            width=max(1, round(self.width * scale)),
            height=max(1, round(self.height * scale)),
        )

    def __str__(self) -> str:
        return f"{self.width}x{self.height}"


@dataclass
class Image:
    """A decoded image: HWC uint8 pixels plus minimal metadata."""

    pixels: np.ndarray
    label: int | None = None
    source_id: str = ""

    def __post_init__(self) -> None:
        if self.pixels.ndim == 2:
            self.pixels = self.pixels[:, :, np.newaxis].repeat(3, axis=2)
        if self.pixels.ndim != 3 or self.pixels.shape[2] not in (1, 3):
            raise CodecError(
                f"expected HxWx3 (or HxWx1) pixel array, got shape {self.pixels.shape}"
            )
        if self.pixels.dtype != np.uint8:
            raise CodecError(f"expected uint8 pixels, got {self.pixels.dtype}")

    @property
    def height(self) -> int:
        """Image height in pixels."""
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        """Image width in pixels."""
        return int(self.pixels.shape[1])

    @property
    def channels(self) -> int:
        """Number of channels (1 or 3)."""
        return int(self.pixels.shape[2])

    @property
    def resolution(self) -> Resolution:
        """The image resolution."""
        return Resolution(width=self.width, height=self.height)

    def crop(self, left: int, top: int, width: int, height: int) -> "Image":
        """Return a copy cropped to the given rectangle."""
        if left < 0 or top < 0 or width <= 0 or height <= 0:
            raise CodecError("invalid crop rectangle")
        if left + width > self.width or top + height > self.height:
            raise CodecError(
                f"crop {left},{top},{width},{height} exceeds image "
                f"{self.width}x{self.height}"
            )
        return Image(
            pixels=self.pixels[top:top + height, left:left + width].copy(),
            label=self.label,
            source_id=self.source_id,
        )

    def mse(self, other: "Image") -> float:
        """Mean squared pixel error against ``other`` (must match shape)."""
        if self.pixels.shape != other.pixels.shape:
            raise CodecError(
                f"shape mismatch: {self.pixels.shape} vs {other.pixels.shape}"
            )
        diff = self.pixels.astype(np.float64) - other.pixels.astype(np.float64)
        return float(np.mean(diff * diff))

    def psnr(self, other: "Image") -> float:
        """Peak signal-to-noise ratio in dB against ``other``."""
        mse = self.mse(other)
        if mse == 0:
            return float("inf")
        return float(10.0 * np.log10(255.0 ** 2 / mse))

    def copy(self) -> "Image":
        """Deep copy of the image."""
        return Image(pixels=self.pixels.copy(), label=self.label,
                     source_id=self.source_id)
