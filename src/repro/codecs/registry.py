"""Format registry: which formats support which low-fidelity decode features.

Reproduces Table 4 of the paper.  The planner and the preprocessing placement
logic consult this registry to decide whether ROI decoding, early stopping, or
reduced-fidelity decoding are available for a given input format.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codecs.image import ImageFormat
from repro.errors import UnsupportedFormatError


@dataclass(frozen=True)
class FormatCapability:
    """Decode-time capabilities of a visual data format.

    Attributes
    ----------
    format:
        The visual data format.
    media_type:
        ``"image"``, ``"video"`` or ``"image/video"``.
    partial_decoding:
        True when independent macroblocks permit ROI decoding (JPEG).
    early_stopping:
        True when decoding can stop once enough raster rows are produced
        (PNG, WebP).
    reduced_fidelity:
        True when a post-processing filter (deblocking) can be disabled for
        a cheaper, lower-fidelity decode (H.264, HEVC, VP8/9).
    multi_resolution:
        True when the bitstream natively contains several resolutions
        (JPEG2000 progressive images).
    """

    format: ImageFormat
    media_type: str
    partial_decoding: bool = False
    early_stopping: bool = False
    reduced_fidelity: bool = False
    multi_resolution: bool = False

    @property
    def low_fidelity_feature(self) -> str:
        """Human-readable primary low-fidelity feature (Table 4 wording)."""
        if self.partial_decoding:
            return "Partial decoding"
        if self.early_stopping:
            return "Early stopping"
        if self.reduced_fidelity:
            return "Reduced fidelity decoding"
        if self.multi_resolution:
            return "Multi-resolution decoding"
        return "None"

    def supports_roi(self) -> bool:
        """True when an ROI-limited decode is cheaper than a full decode."""
        return self.partial_decoding or self.early_stopping


FORMAT_REGISTRY: dict[ImageFormat, FormatCapability] = {
    ImageFormat.JPEG: FormatCapability(
        format=ImageFormat.JPEG, media_type="image", partial_decoding=True
    ),
    ImageFormat.PNG: FormatCapability(
        format=ImageFormat.PNG, media_type="image", early_stopping=True
    ),
    ImageFormat.WEBP: FormatCapability(
        format=ImageFormat.WEBP, media_type="image", early_stopping=True
    ),
    ImageFormat.HEIC: FormatCapability(
        format=ImageFormat.HEIC, media_type="image/video", reduced_fidelity=True
    ),
    ImageFormat.H264: FormatCapability(
        format=ImageFormat.H264, media_type="video", reduced_fidelity=True
    ),
    ImageFormat.VP8: FormatCapability(
        format=ImageFormat.VP8, media_type="video", reduced_fidelity=True
    ),
    ImageFormat.VP9: FormatCapability(
        format=ImageFormat.VP9, media_type="video", reduced_fidelity=True
    ),
    ImageFormat.RAW: FormatCapability(format=ImageFormat.RAW, media_type="image"),
}


def get_format(fmt: ImageFormat | str) -> FormatCapability:
    """Look up the capability record for a format."""
    if isinstance(fmt, str):
        try:
            fmt = ImageFormat(fmt.lower())
        except ValueError as exc:
            raise UnsupportedFormatError(f"unknown format {fmt!r}") from exc
    if fmt not in FORMAT_REGISTRY:
        raise UnsupportedFormatError(f"no capability record for {fmt}")
    return FORMAT_REGISTRY[fmt]


def list_formats() -> list[FormatCapability]:
    """Return capability records for every registered format."""
    return [FORMAT_REGISTRY[fmt] for fmt in ImageFormat if fmt in FORMAT_REGISTRY]
