"""A JPEG-like lossy image codec with macroblock partial decoding.

Pipeline (per channel): level shift, 8x8 block DCT, quality-scaled
quantization, zig-zag run-length entropy coding, and a per-block offset index.
The offset index is the feature the paper's ROI decoding exploits: blocks are
independently decodable, so only the macroblocks intersecting a region of
interest need to be entropy-decoded and inverse-transformed.

Chroma handling is simplified: all three channels use the luminance
quantization table.  This does not change any of the behaviours the paper's
optimizations depend on (cost scaling with decoded blocks, quality-dependent
fidelity and size).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codecs import blocks as blk
from repro.codecs import entropy
from repro.codecs.image import Image, Resolution
from repro.codecs.roi import RegionOfInterest, expand_to_blocks
from repro.errors import CodecError


@dataclass(frozen=True)
class JpegEncoded:
    """An encoded JPEG-like image.

    Attributes
    ----------
    width, height:
        Original image dimensions (before block padding).
    channels:
        Number of channels (3 for RGB).
    quality:
        Encoding quality in [1, 100].
    blocks_x, blocks_y:
        Macroblock grid dimensions.
    data:
        Packed entropy-coded payload with a per-block offset index.
    """

    width: int
    height: int
    channels: int
    quality: int
    blocks_x: int
    blocks_y: int
    data: bytes

    @property
    def resolution(self) -> Resolution:
        """Resolution of the decoded image."""
        return Resolution(width=self.width, height=self.height)

    @property
    def num_blocks(self) -> int:
        """Total macroblocks across all channels."""
        return self.blocks_x * self.blocks_y * self.channels

    @property
    def compressed_bytes(self) -> int:
        """Size of the encoded payload in bytes."""
        return len(self.data)


class JpegCodec:
    """Encoder/decoder for the JPEG-like format."""

    def __init__(self, quality: int = 75) -> None:
        if not 1 <= quality <= 100:
            raise CodecError(f"quality must be in [1, 100], got {quality}")
        self._quality = quality
        self._quant_table = blk.quality_to_quant_table(quality)

    @property
    def quality(self) -> int:
        """The encoder quality factor."""
        return self._quality

    def encode(self, image: Image) -> JpegEncoded:
        """Encode an image into the JPEG-like format."""
        payloads: list[bytes] = []
        blocks_x = blocks_y = 0
        for channel_index in range(image.channels):
            channel = image.pixels[:, :, channel_index].astype(np.float64) - 128.0
            padded = blk.pad_to_blocks(channel)
            channel_blocks = blk.blockify(padded)
            blocks_y, blocks_x = channel_blocks.shape[:2]
            coeffs = blk.forward_dct_blocks(channel_blocks)
            quantized = blk.quantize_blocks(coeffs, self._quant_table)
            for by in range(blocks_y):
                for bx in range(blocks_x):
                    flat = blk.zigzag_scan(quantized[by, bx])
                    payloads.append(entropy.encode_coefficients(flat))
        return JpegEncoded(
            width=image.width,
            height=image.height,
            channels=image.channels,
            quality=self._quality,
            blocks_x=blocks_x,
            blocks_y=blocks_y,
            data=entropy.pack_blocks(payloads),
        )

    def decode(self, encoded: JpegEncoded) -> Image:
        """Fully decode an encoded image."""
        roi = RegionOfInterest(0, 0, encoded.width, encoded.height)
        return self.decode_roi(encoded, roi)

    def decode_roi(self, encoded: JpegEncoded, roi: RegionOfInterest) -> Image:
        """Decode only the macroblocks intersecting ``roi``.

        Returns the decoded ROI as an image (not the full frame); the returned
        image's size is the block-aligned expansion of the request clipped to
        the frame, which is what the downstream crop consumes.
        """
        quant_table = blk.quality_to_quant_table(encoded.quality)
        aligned = expand_to_blocks(roi, encoded.resolution)
        block_left = aligned.left // blk.BLOCK_SIZE
        block_top = aligned.top // blk.BLOCK_SIZE
        blocks_w = (aligned.width + blk.BLOCK_SIZE - 1) // blk.BLOCK_SIZE
        blocks_h = (aligned.height + blk.BLOCK_SIZE - 1) // blk.BLOCK_SIZE
        out = np.zeros(
            (blocks_h * blk.BLOCK_SIZE, blocks_w * blk.BLOCK_SIZE, encoded.channels),
            dtype=np.float64,
        )
        blocks_per_channel = encoded.blocks_x * encoded.blocks_y
        for channel_index in range(encoded.channels):
            for local_by in range(blocks_h):
                for local_bx in range(blocks_w):
                    by = block_top + local_by
                    bx = block_left + local_bx
                    block_index = (
                        channel_index * blocks_per_channel + by * encoded.blocks_x + bx
                    )
                    payload = entropy.unpack_block(encoded.data, block_index)
                    flat = entropy.decode_coefficients(
                        payload, blk.BLOCK_SIZE * blk.BLOCK_SIZE
                    )
                    quantized = blk.zigzag_unscan(flat)
                    coeffs = blk.dequantize_blocks(quantized, quant_table)
                    pixel_block = blk.inverse_dct_blocks(coeffs) + 128.0
                    top = local_by * blk.BLOCK_SIZE
                    left = local_bx * blk.BLOCK_SIZE
                    out[top:top + blk.BLOCK_SIZE, left:left + blk.BLOCK_SIZE,
                        channel_index] = pixel_block
        # Clip to the frame: edge blocks may extend past the true image size.
        height = min(aligned.height, encoded.height - aligned.top)
        width = min(aligned.width, encoded.width - aligned.left)
        pixels = np.clip(np.round(out[:height, :width]), 0, 255).astype(np.uint8)
        return Image(pixels=pixels)

    def decoded_block_fraction(self, encoded: JpegEncoded,
                               roi: RegionOfInterest) -> float:
        """Fraction of macroblocks an ROI decode touches (cost proxy)."""
        aligned = expand_to_blocks(roi, encoded.resolution)
        blocks_w = (aligned.width + blk.BLOCK_SIZE - 1) // blk.BLOCK_SIZE
        blocks_h = (aligned.height + blk.BLOCK_SIZE - 1) // blk.BLOCK_SIZE
        touched = blocks_w * blocks_h
        total = encoded.blocks_x * encoded.blocks_y
        return touched / total if total else 0.0
