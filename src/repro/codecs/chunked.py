"""Lossless chunked-array codec backing the rendition store.

The persistent store (:mod:`repro.store`) keeps decoded renditions and score
tables on disk as sequences of independently-decodable chunks, so a reader
can stream one shard's frames without materializing the whole array.  This
module provides the codec for those chunks, built from the same ingredients
the image codecs already use:

* each chunk is a self-describing array payload -- a small header (dtype,
  shape) followed by a DEFLATE-compressed body, the scheme
  :mod:`repro.codecs.png` applies to its row strips;
* chunks are packed into one stream with the entropy coder's random-access
  block container (:func:`repro.codecs.entropy.pack_blocks`), whose offset
  table lets a reader seek straight to the chunks covering a frame range --
  the same property that makes macroblock ROI decoding possible.

The codec is bit-exact for every numpy dtype the store uses (``uint8``
rendition pixels, ``float64``/``int64`` score tables, including NaN/inf bit
patterns), which is what lets warm, store-served query results be
bit-identical to cold recomputation.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.codecs.entropy import block_count, pack_blocks, unpack_block
from repro.errors import CorruptBitstreamError

_MAGIC = b"RCHU"
_MAX_NDIM = 8

#: zlib level used for chunk bodies; level 1 keeps warm reads and writes fast
#: while still collapsing the long runs synthetic renditions contain.
DEFAULT_COMPRESSION_LEVEL = 1


def encode_array(array: np.ndarray,
                 level: int = DEFAULT_COMPRESSION_LEVEL) -> bytes:
    """Encode one array chunk losslessly (header + DEFLATE body)."""
    arr = np.ascontiguousarray(array)
    if arr.ndim > _MAX_NDIM:
        raise CorruptBitstreamError(
            f"chunk arrays support up to {_MAX_NDIM} dimensions, got {arr.ndim}"
        )
    dtype_name = arr.dtype.str.encode("ascii")
    header = bytearray()
    header += _MAGIC
    header += struct.pack("<B", len(dtype_name))
    header += dtype_name
    header += struct.pack("<B", arr.ndim)
    header += struct.pack(f"<{arr.ndim}q", *arr.shape) if arr.ndim else b""
    body = zlib.compress(arr.tobytes(), level)
    return bytes(header) + body


def decode_array(payload: bytes) -> np.ndarray:
    """Decode one chunk back into the exact array that was encoded.

    The returned array is marked read-only so cached chunks can be shared
    between readers without defensive copies.
    """
    if len(payload) < 6 or payload[:4] != _MAGIC:
        raise CorruptBitstreamError("not a repro chunk payload")
    try:
        pos = 4
        dtype_len = payload[pos]
        pos += 1
        dtype = np.dtype(payload[pos:pos + dtype_len].decode("ascii"))
        pos += dtype_len
        ndim = payload[pos]
        pos += 1
        if ndim > _MAX_NDIM:
            raise CorruptBitstreamError(
                f"chunk payload claims {ndim} dimensions"
            )
        shape = struct.unpack_from(f"<{ndim}q", payload, pos) if ndim else ()
        pos += 8 * ndim
    except (IndexError, struct.error, TypeError,
            UnicodeDecodeError) as exc:
        raise CorruptBitstreamError(
            "chunk payload header is truncated or malformed"
        ) from exc
    try:
        raw = zlib.decompress(payload[pos:])
    except zlib.error as exc:
        raise CorruptBitstreamError("chunk body failed to inflate") from exc
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize if ndim \
        else dtype.itemsize
    if len(raw) != expected:
        raise CorruptBitstreamError(
            f"chunk body is {len(raw)} bytes, header promises {expected}"
        )
    array = np.frombuffer(raw, dtype=dtype).reshape(shape)
    array.flags.writeable = False
    return array


def pack_array_chunks(arrays: list[np.ndarray],
                      level: int = DEFAULT_COMPRESSION_LEVEL) -> bytes:
    """Encode and pack several chunks into one random-access stream."""
    return pack_blocks([encode_array(arr, level) for arr in arrays])


def unpack_array_chunk(data: bytes, index: int) -> np.ndarray:
    """Decode chunk ``index`` of a packed stream without touching the rest."""
    return decode_array(unpack_block(data, index))


def chunk_count(data: bytes) -> int:
    """Number of chunks in a packed stream."""
    return block_count(data)
