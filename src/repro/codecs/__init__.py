"""Visual compression substrate.

The paper's optimizations act on properties of real codecs: JPEG macroblocks
can be decoded independently (ROI decoding), raster-order formats permit early
stopping, and video codecs have an optional deblocking filter whose omission
trades fidelity for speed.  This package implements working numpy codecs with
exactly those hooks:

* :mod:`repro.codecs.jpeg` -- a block-DCT, quantized, entropy-coded lossy
  image codec with per-macroblock partial decoding.
* :mod:`repro.codecs.png` -- a filtered, losslessly compressed image codec
  with raster-order early stopping.
* :mod:`repro.codecs.video` -- an I/P-frame motion-compensated video codec
  with an optional deblocking filter (reduced-fidelity decoding).
* :mod:`repro.codecs.registry` -- the format registry reproducing Table 4.
"""

from repro.codecs.image import Image, ImageFormat, Resolution
from repro.codecs.jpeg import JpegCodec, JpegEncoded
from repro.codecs.png import PngCodec, PngEncoded
from repro.codecs.video import VideoCodec, EncodedVideo, VideoFrameRef
from repro.codecs.registry import (
    FormatCapability,
    FORMAT_REGISTRY,
    get_format,
    list_formats,
)
from repro.codecs.roi import RegionOfInterest, central_crop_roi, expand_to_blocks
from repro.codecs.progressive import ProgressiveCodec, ProgressiveEncoded

__all__ = [
    "ProgressiveCodec",
    "ProgressiveEncoded",
    "Image",
    "ImageFormat",
    "Resolution",
    "JpegCodec",
    "JpegEncoded",
    "PngCodec",
    "PngEncoded",
    "VideoCodec",
    "EncodedVideo",
    "VideoFrameRef",
    "FormatCapability",
    "FORMAT_REGISTRY",
    "get_format",
    "list_formats",
    "RegionOfInterest",
    "central_crop_roi",
    "expand_to_blocks",
]
