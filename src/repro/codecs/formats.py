"""Input format specifications.

An *input format* is one natively-available rendition of the visual data:
full-resolution JPEG, a 161-pixel PNG thumbnail, a 480p H.264 re-encode, and
so on.  Smol's plan space is the cross product of candidate DNNs and these
formats (Section 3.1), so the format spec carries everything the cost model
and the codecs need: codec kind, resolution, quality, and whether the
rendition is natively present (free) or must be produced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codecs.image import ImageFormat, Resolution
from repro.codecs.registry import FormatCapability, get_format
from repro.errors import UnsupportedFormatError


@dataclass(frozen=True)
class InputFormatSpec:
    """One available rendition of the input data.

    Attributes
    ----------
    name:
        Stable identifier, e.g. ``"full-jpeg"`` or ``"161-png"``.
    codec:
        The compression format of this rendition.
    short_side:
        Short-edge resolution in pixels of the stored rendition.
    quality:
        Encoder quality for lossy codecs (ignored for lossless).
    lossless:
        True for lossless codecs (PNG-like).
    natively_present:
        True when the serving system already stores this rendition
        (thumbnails, multi-bitrate video); False when it must be produced.
    typical_resolution:
        Representative full resolution of a stored asset (used by the cost
        models for full-resolution formats whose size varies per dataset).
    """

    name: str
    codec: ImageFormat
    short_side: int
    quality: int = 100
    lossless: bool = False
    natively_present: bool = True
    typical_resolution: Resolution = Resolution(500, 375)

    def __post_init__(self) -> None:
        if self.short_side <= 0:
            raise UnsupportedFormatError("short_side must be positive")
        if not 1 <= self.quality <= 100:
            raise UnsupportedFormatError("quality must be in [1, 100]")

    @property
    def capability(self) -> FormatCapability:
        """Low-fidelity decode capabilities of this rendition's codec."""
        return get_format(self.codec)

    @property
    def resolution(self) -> Resolution:
        """Stored resolution of this rendition."""
        if self.is_full_resolution:
            return self.typical_resolution
        return self.typical_resolution.scaled_to_short_side(self.short_side)

    @property
    def is_full_resolution(self) -> bool:
        """True when this rendition is the original (non-thumbnail) data."""
        return self.short_side >= self.typical_resolution.short_side

    @property
    def is_video(self) -> bool:
        """True for video codecs."""
        return self.codec in (ImageFormat.H264, ImageFormat.VP8, ImageFormat.VP9)

    def describe(self) -> str:
        """Human-readable one-liner."""
        fidelity = "lossless" if self.lossless else f"q={self.quality}"
        return f"{self.name} ({self.codec.value}, short side {self.short_side}, {fidelity})"


# ---------------------------------------------------------------------------
# Standard image format catalog used across the evaluation (Section 8.1):
# full-resolution JPEG plus 161-short-side thumbnails in PNG and JPEG.
# ---------------------------------------------------------------------------
FULL_JPEG = InputFormatSpec(
    name="full-jpeg",
    codec=ImageFormat.JPEG,
    short_side=375,
    quality=95,
    natively_present=True,
)
THUMB_PNG_161 = InputFormatSpec(
    name="161-png",
    codec=ImageFormat.PNG,
    short_side=161,
    lossless=True,
    natively_present=True,
)
THUMB_JPEG_161_Q95 = InputFormatSpec(
    name="161-jpeg-q95",
    codec=ImageFormat.JPEG,
    short_side=161,
    quality=95,
    natively_present=True,
)
THUMB_JPEG_161_Q75 = InputFormatSpec(
    name="161-jpeg-q75",
    codec=ImageFormat.JPEG,
    short_side=161,
    quality=75,
    natively_present=True,
)

# Video renditions used by the BlazeIt-style aggregation experiments.
VIDEO_1080P_H264 = InputFormatSpec(
    name="1080p-h264",
    codec=ImageFormat.H264,
    short_side=1080,
    quality=85,
    natively_present=True,
    typical_resolution=Resolution(1920, 1080),
)
VIDEO_480P_H264 = InputFormatSpec(
    name="480p-h264",
    codec=ImageFormat.H264,
    short_side=480,
    quality=85,
    natively_present=True,
    typical_resolution=Resolution(1920, 1080),
)

STANDARD_IMAGE_FORMATS: tuple[InputFormatSpec, ...] = (
    FULL_JPEG,
    THUMB_PNG_161,
    THUMB_JPEG_161_Q95,
    THUMB_JPEG_161_Q75,
)
STANDARD_VIDEO_FORMATS: tuple[InputFormatSpec, ...] = (
    VIDEO_1080P_H264,
    VIDEO_480P_H264,
)

_FORMATS_BY_NAME = {
    spec.name: spec
    for spec in STANDARD_IMAGE_FORMATS + STANDARD_VIDEO_FORMATS
}


def get_input_format(name: str) -> InputFormatSpec:
    """Look up a standard input format by name."""
    if name not in _FORMATS_BY_NAME:
        raise UnsupportedFormatError(
            f"unknown input format {name!r}; known: {sorted(_FORMATS_BY_NAME)}"
        )
    return _FORMATS_BY_NAME[name]


def list_input_formats(include_video: bool = False) -> list[InputFormatSpec]:
    """The standard format catalog (optionally including video renditions)."""
    formats = list(STANDARD_IMAGE_FORMATS)
    if include_video:
        formats.extend(STANDARD_VIDEO_FORMATS)
    return formats
