"""Block transforms shared by the lossy codecs.

The JPEG-like and H.264-like codecs both operate on 8x8 macroblocks with a
type-II DCT, quantization by a quality-scaled matrix, and zig-zag ordering.
These are the building blocks the partial-decoding optimizations depend on:
each block is independently decodable.
"""

from __future__ import annotations

import numpy as np
from scipy.fftpack import dctn, idctn

from repro.errors import CodecError

BLOCK_SIZE = 8

# The standard JPEG luminance quantization table (Annex K of the JPEG spec),
# widely used as the base matrix scaled by the quality factor.
BASE_QUANT_TABLE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)


def quality_to_quant_table(quality: int) -> np.ndarray:
    """Scale the base quantization table by a JPEG-style quality in [1, 100]."""
    if not 1 <= quality <= 100:
        raise CodecError(f"quality must be in [1, 100], got {quality}")
    if quality < 50:
        scale = 5000.0 / quality
    else:
        scale = 200.0 - 2.0 * quality
    table = np.floor((BASE_QUANT_TABLE * scale + 50.0) / 100.0)
    return np.clip(table, 1.0, 255.0)


def pad_to_blocks(channel: np.ndarray) -> np.ndarray:
    """Pad a 2-D channel with edge replication to a multiple of the block size."""
    height, width = channel.shape
    pad_h = (-height) % BLOCK_SIZE
    pad_w = (-width) % BLOCK_SIZE
    if pad_h == 0 and pad_w == 0:
        return channel
    return np.pad(channel, ((0, pad_h), (0, pad_w)), mode="edge")


def blockify(channel: np.ndarray) -> np.ndarray:
    """Split a padded 2-D channel into an array of 8x8 blocks.

    Returns an array of shape (blocks_y, blocks_x, 8, 8).
    """
    height, width = channel.shape
    if height % BLOCK_SIZE or width % BLOCK_SIZE:
        raise CodecError("channel must be padded to a multiple of the block size")
    blocks_y = height // BLOCK_SIZE
    blocks_x = width // BLOCK_SIZE
    return (
        channel.reshape(blocks_y, BLOCK_SIZE, blocks_x, BLOCK_SIZE)
        .swapaxes(1, 2)
        .copy()
    )


def unblockify(blocks: np.ndarray) -> np.ndarray:
    """Inverse of :func:`blockify`: reassemble blocks into a 2-D channel."""
    if blocks.ndim != 4 or blocks.shape[2:] != (BLOCK_SIZE, BLOCK_SIZE):
        raise CodecError(f"expected (by, bx, 8, 8) blocks, got {blocks.shape}")
    blocks_y, blocks_x = blocks.shape[:2]
    return (
        blocks.swapaxes(1, 2)
        .reshape(blocks_y * BLOCK_SIZE, blocks_x * BLOCK_SIZE)
        .copy()
    )


def forward_dct_blocks(blocks: np.ndarray) -> np.ndarray:
    """Apply a 2-D type-II DCT to each 8x8 block (expects level-shifted input)."""
    return dctn(blocks, type=2, axes=(-2, -1), norm="ortho")


def inverse_dct_blocks(coeffs: np.ndarray) -> np.ndarray:
    """Apply the inverse DCT to each 8x8 coefficient block."""
    return idctn(coeffs, type=2, axes=(-2, -1), norm="ortho")


def quantize_blocks(coeffs: np.ndarray, quant_table: np.ndarray) -> np.ndarray:
    """Quantize DCT coefficients to int16 with the given table."""
    return np.round(coeffs / quant_table).astype(np.int16)


def dequantize_blocks(quantized: np.ndarray, quant_table: np.ndarray) -> np.ndarray:
    """Dequantize int16 coefficient blocks back to float."""
    return quantized.astype(np.float64) * quant_table


def _zigzag_order() -> np.ndarray:
    """Return the zig-zag scan order for an 8x8 block as flat indices."""
    indices = []
    for diagonal in range(2 * BLOCK_SIZE - 1):
        cells = [
            (i, diagonal - i)
            for i in range(BLOCK_SIZE)
            if 0 <= diagonal - i < BLOCK_SIZE
        ]
        if diagonal % 2 == 0:
            cells = cells[::-1]
        indices.extend(r * BLOCK_SIZE + c for r, c in cells)
    return np.array(indices, dtype=np.int64)


ZIGZAG = _zigzag_order()
ZIGZAG_INVERSE = np.argsort(ZIGZAG)


def zigzag_scan(block: np.ndarray) -> np.ndarray:
    """Flatten an 8x8 block in zig-zag order."""
    return block.reshape(-1)[ZIGZAG]


def zigzag_unscan(flat: np.ndarray) -> np.ndarray:
    """Rebuild an 8x8 block from its zig-zag flattened form."""
    if flat.shape[-1] != BLOCK_SIZE * BLOCK_SIZE:
        raise CodecError("zig-zag vector must have 64 elements")
    return flat[..., ZIGZAG_INVERSE].reshape(*flat.shape[:-1], BLOCK_SIZE, BLOCK_SIZE)
