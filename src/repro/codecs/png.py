"""A PNG-like lossless image codec with raster-order early stopping.

Real PNG applies per-scanline prediction filters followed by DEFLATE.  We
implement per-scanline Paeth-style filtering followed by zlib compression of
row groups.  Rows are grouped into independently-compressed strips so a
decoder can stop early once it has produced all the rows a region of interest
needs -- the "early stopping" capability the paper lists for PNG/WebP in
Table 4.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro.codecs.image import Image, Resolution
from repro.codecs.roi import RegionOfInterest, raster_rows_required
from repro.errors import CodecError, CorruptBitstreamError

_MAGIC = b"RPNG"
DEFAULT_STRIP_ROWS = 16


@dataclass(frozen=True)
class PngEncoded:
    """An encoded PNG-like image: independently-compressed row strips."""

    width: int
    height: int
    channels: int
    strip_rows: int
    strips: tuple[bytes, ...]

    @property
    def resolution(self) -> Resolution:
        """Resolution of the decoded image."""
        return Resolution(width=self.width, height=self.height)

    @property
    def compressed_bytes(self) -> int:
        """Total compressed size in bytes."""
        return sum(len(s) for s in self.strips) + 16

    @property
    def num_strips(self) -> int:
        """Number of independently decodable row strips."""
        return len(self.strips)


def _filter_rows(rows: np.ndarray) -> np.ndarray:
    """Apply an up-predictor filter: each row stores its delta to the row above."""
    filtered = rows.astype(np.int16)
    filtered[1:] -= rows[:-1].astype(np.int16)
    return filtered.astype(np.int16)


def _unfilter_rows(filtered: np.ndarray) -> np.ndarray:
    """Invert the up-predictor filter via a cumulative sum down the rows."""
    return np.cumsum(filtered.astype(np.int64), axis=0).astype(np.int64)


class PngCodec:
    """Encoder/decoder for the PNG-like lossless format."""

    def __init__(self, strip_rows: int = DEFAULT_STRIP_ROWS,
                 compression_level: int = 6) -> None:
        if strip_rows <= 0:
            raise CodecError("strip_rows must be positive")
        if not 0 <= compression_level <= 9:
            raise CodecError("compression level must be in [0, 9]")
        self._strip_rows = strip_rows
        self._level = compression_level

    def encode(self, image: Image) -> PngEncoded:
        """Encode an image losslessly."""
        strips: list[bytes] = []
        pixels = image.pixels
        for start in range(0, image.height, self._strip_rows):
            rows = pixels[start:start + self._strip_rows]
            filtered = _filter_rows(rows.reshape(rows.shape[0], -1))
            raw = struct.pack("<HH", rows.shape[0], rows.shape[1] * image.channels)
            raw += filtered.tobytes()
            strips.append(zlib.compress(raw, self._level))
        return PngEncoded(
            width=image.width,
            height=image.height,
            channels=image.channels,
            strip_rows=self._strip_rows,
            strips=tuple(strips),
        )

    def decode(self, encoded: PngEncoded) -> Image:
        """Fully decode an encoded image (exact reconstruction)."""
        return self.decode_rows(encoded, encoded.height)

    def decode_rows(self, encoded: PngEncoded, rows_needed: int) -> Image:
        """Decode only the first ``rows_needed`` rows (early stopping).

        Strips are independent, so decoding stops after the strip containing
        the last needed row; the returned image has exactly ``rows_needed``
        rows.
        """
        if rows_needed <= 0:
            raise CodecError("rows_needed must be positive")
        rows_needed = min(rows_needed, encoded.height)
        decoded_rows: list[np.ndarray] = []
        produced = 0
        for strip in encoded.strips:
            if produced >= rows_needed:
                break
            raw = zlib.decompress(strip)
            strip_height, row_width = struct.unpack_from("<HH", raw, 0)
            expected = strip_height * row_width * 2
            body = raw[4:4 + expected]
            if len(body) != expected:
                raise CorruptBitstreamError("strip payload has unexpected size")
            filtered = np.frombuffer(body, dtype=np.int16).reshape(
                strip_height, row_width
            )
            rows = _unfilter_rows(filtered)
            decoded_rows.append(rows)
            produced += strip_height
        stacked = np.concatenate(decoded_rows, axis=0)[:rows_needed]
        pixels = stacked.reshape(rows_needed, encoded.width, encoded.channels)
        return Image(pixels=np.clip(pixels, 0, 255).astype(np.uint8))

    def decode_roi(self, encoded: PngEncoded, roi: RegionOfInterest) -> Image:
        """Decode the minimum raster prefix covering ``roi`` and crop it."""
        clamped = roi.clamp_to(encoded.resolution)
        rows = raster_rows_required(clamped)
        prefix = self.decode_rows(encoded, rows)
        return prefix.crop(clamped.left, clamped.top, clamped.width, clamped.height)

    def decoded_row_fraction(self, encoded: PngEncoded,
                             roi: RegionOfInterest) -> float:
        """Fraction of rows an early-stopping decode touches (cost proxy)."""
        clamped = roi.clamp_to(encoded.resolution)
        return raster_rows_required(clamped) / encoded.height
