"""An H.264-like video codec with an optional deblocking filter.

The codec models the decode-time behaviours the paper relies on:

* group-of-pictures structure with intra (I) frames and predicted (P) frames
  carrying block-based residuals against the previous frame;
* a deblocking filter that smooths block boundaries after reconstruction and
  can be disabled for reduced-fidelity, faster decoding (Section 6.4);
* multi-resolution encodings of the same video (full resolution plus 480p),
  matching how serving systems natively store several renditions.

Frames are internally compressed with the JPEG-like block codec for I frames
and a residual variant for P frames, so decode cost genuinely scales with
resolution and with the deblocking setting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codecs import blocks as blk
from repro.codecs.image import Image, Resolution
from repro.codecs.jpeg import JpegCodec, JpegEncoded
from repro.errors import CodecError


@dataclass(frozen=True)
class VideoFrameRef:
    """Reference to one encoded frame inside an :class:`EncodedVideo`."""

    index: int
    is_keyframe: bool
    payload: JpegEncoded


@dataclass(frozen=True)
class EncodedVideo:
    """An encoded video: a sequence of I/P frames at a single resolution."""

    width: int
    height: int
    frames: tuple[VideoFrameRef, ...]
    gop_size: int
    quality: int

    @property
    def resolution(self) -> Resolution:
        """Frame resolution."""
        return Resolution(width=self.width, height=self.height)

    @property
    def num_frames(self) -> int:
        """Number of frames in the video."""
        return len(self.frames)

    @property
    def compressed_bytes(self) -> int:
        """Total compressed size of all frames."""
        return sum(ref.payload.compressed_bytes for ref in self.frames)


def deblock(pixels: np.ndarray, strength: float = 0.5) -> np.ndarray:
    """Apply a simple deblocking filter along 8-pixel block boundaries.

    Averages the two pixels straddling each block edge toward each other.
    Disabling this filter is the "reduced fidelity decoding" option.
    """
    if not 0.0 <= strength <= 1.0:
        raise CodecError("deblocking strength must be in [0, 1]")
    out = pixels.astype(np.float64)
    height, width = out.shape[:2]
    for edge in range(blk.BLOCK_SIZE, width, blk.BLOCK_SIZE):
        left = out[:, edge - 1]
        right = out[:, edge]
        mean = (left + right) / 2.0
        out[:, edge - 1] = left * (1 - strength) + mean * strength
        out[:, edge] = right * (1 - strength) + mean * strength
    for edge in range(blk.BLOCK_SIZE, height, blk.BLOCK_SIZE):
        top = out[edge - 1, :]
        bottom = out[edge, :]
        mean = (top + bottom) / 2.0
        out[edge - 1, :] = top * (1 - strength) + mean * strength
        out[edge, :] = bottom * (1 - strength) + mean * strength
    return np.clip(np.round(out), 0, 255).astype(np.uint8)


class VideoCodec:
    """Encoder/decoder for the H.264-like video format."""

    def __init__(self, quality: int = 75, gop_size: int = 8) -> None:
        if gop_size <= 0:
            raise CodecError("gop_size must be positive")
        self._gop_size = gop_size
        self._quality = quality
        self._frame_codec = JpegCodec(quality=quality)

    def encode(self, frames: list[Image]) -> EncodedVideo:
        """Encode a list of frames into an I/P-frame stream."""
        if not frames:
            raise CodecError("cannot encode an empty frame list")
        width, height = frames[0].width, frames[0].height
        refs: list[VideoFrameRef] = []
        reference: np.ndarray | None = None
        for index, frame in enumerate(frames):
            if frame.width != width or frame.height != height:
                raise CodecError("all frames must share a resolution")
            is_keyframe = index % self._gop_size == 0 or reference is None
            if is_keyframe:
                payload = self._frame_codec.encode(frame)
                reference = self._frame_codec.decode(payload).pixels
            else:
                residual = (
                    frame.pixels.astype(np.int16) - reference.astype(np.int16)
                )
                shifted = np.clip(residual // 2 + 128, 0, 255).astype(np.uint8)
                payload = self._frame_codec.encode(Image(pixels=shifted))
                decoded_residual = (
                    self._frame_codec.decode(payload).pixels.astype(np.int16) - 128
                ) * 2
                reference = np.clip(
                    reference.astype(np.int16) + decoded_residual, 0, 255
                ).astype(np.uint8)
            refs.append(VideoFrameRef(index=index, is_keyframe=is_keyframe,
                                      payload=payload))
        return EncodedVideo(width=width, height=height, frames=tuple(refs),
                            gop_size=self._gop_size, quality=self._quality)

    def decode(self, video: EncodedVideo, deblocking: bool = True,
               limit: int | None = None) -> list[Image]:
        """Decode frames, optionally disabling the deblocking filter.

        Parameters
        ----------
        video:
            The encoded video.
        deblocking:
            When False, skip the deblocking filter (reduced-fidelity decode).
        limit:
            Decode only the first ``limit`` frames.
        """
        decoded: list[Image] = []
        reference: np.ndarray | None = None
        count = video.num_frames if limit is None else min(limit, video.num_frames)
        for ref in video.frames[:count]:
            raw = self._frame_codec.decode(ref.payload).pixels
            if ref.is_keyframe or reference is None:
                reconstructed = raw
            else:
                residual = (raw.astype(np.int16) - 128) * 2
                reconstructed = np.clip(
                    reference.astype(np.int16) + residual, 0, 255
                ).astype(np.uint8)
            reference = reconstructed
            if deblocking:
                reconstructed = deblock(reconstructed)
            decoded.append(Image(pixels=reconstructed))
        return decoded

    def decode_frame(self, video: EncodedVideo, index: int,
                     deblocking: bool = True) -> Image:
        """Decode a single frame (decodes from its GOP's keyframe forward)."""
        if not 0 <= index < video.num_frames:
            raise CodecError(f"frame index {index} out of range")
        gop_start = (index // video.gop_size) * video.gop_size
        window = EncodedVideo(
            width=video.width,
            height=video.height,
            frames=video.frames[gop_start:index + 1],
            gop_size=video.gop_size,
            quality=video.quality,
        )
        return self.decode(window, deblocking=deblocking)[-1]
