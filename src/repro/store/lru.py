"""Byte-budgeted in-memory LRU tier in front of the on-disk store.

The serving layer's :class:`~repro.serving.cache.LruCache` bounds entry
*count*; decoded chunks vary wildly in size (a score chunk is a few KiB, a
rendition chunk can be megabytes), so the store's tier bounds total *bytes*
instead.  Eviction order is strict least-recently-used: ``get`` refreshes
recency, ``put`` evicts from the cold end until the new entry fits.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.errors import StoreError


@dataclass(frozen=True)
class ChunkCacheStats:
    """Counters of the in-memory chunk tier."""

    hits: int
    misses: int
    evictions: int
    entries: int
    bytes_used: int
    bytes_budget: int

    @property
    def hit_rate(self) -> float:
        """Fraction of chunk lookups served from memory."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ByteLruCache:
    """Thread-safe LRU map bounded by the total byte size of its values.

    ``sizeof`` maps a cached value to its byte cost (defaults to
    ``value.nbytes``, the numpy convention).  A value larger than the whole
    budget is simply never cached -- lookups fall through to the backing
    store instead of thrashing every other entry out.
    """

    def __init__(self, bytes_budget: int,
                 sizeof: Callable[[object], int] | None = None) -> None:
        if bytes_budget <= 0:
            raise StoreError("cache byte budget must be positive")
        self._budget = bytes_budget
        self._sizeof = sizeof or (lambda value: int(value.nbytes))
        self._items: OrderedDict[Hashable, tuple[object, int]] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def bytes_budget(self) -> int:
        """Maximum total bytes of cached values."""
        return self._budget

    @property
    def bytes_used(self) -> int:
        """Current total bytes of cached values."""
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def get(self, key: Hashable):
        """Look up ``key``, refreshing its recency; None on miss."""
        with self._lock:
            if key in self._items:
                self._items.move_to_end(key)
                self._hits += 1
                return self._items[key][0]
            self._misses += 1
            return None

    def put(self, key: Hashable, value) -> None:
        """Insert ``key``, evicting least-recently-used entries to fit."""
        size = self._sizeof(value)
        with self._lock:
            if key in self._items:
                _, old_size = self._items.pop(key)
                self._bytes -= old_size
            if size > self._budget:
                return
            while self._bytes + size > self._budget and self._items:
                _, (_, evicted_size) = self._items.popitem(last=False)
                self._bytes -= evicted_size
                self._evictions += 1
            self._items[key] = (value, size)
            self._bytes += size

    def keys(self) -> list[Hashable]:
        """Cached keys from least to most recently used."""
        with self._lock:
            return list(self._items)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._items.clear()
            self._bytes = 0

    def stats(self) -> ChunkCacheStats:
        """Snapshot of the tier's counters."""
        with self._lock:
            return ChunkCacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._items),
                bytes_used=self._bytes,
                bytes_budget=self._budget,
            )
