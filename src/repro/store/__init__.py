"""Smol-Store: persistent rendition & score store with cache-aware planning.

Preprocessing dominates end-to-end cost (the paper's Figure 1), so decoded
low-resolution renditions and the per-item scores computed from them are
worth persisting and reusing.  This package provides:

* :class:`~repro.store.store.RenditionStore` -- content-addressed on-disk
  store for chunked, codec-compressed renditions and score tables, with an
  in-memory LRU tier, an atomic versioned manifest, fingerprint-based
  invalidation, and GC.
* :class:`~repro.store.store.ChunkedReader` -- streaming reads over stored
  chunks: a shard scan touches one chunk at a time instead of the full
  array.
* :class:`~repro.store.catalog.StoreCatalog` -- the planner-facing view
  that lets the cost model discount decode for materialized renditions.

Integration points: :class:`~repro.query.scan.ScanSession` read/writes
through the store, :class:`~repro.query.engine.QueryEngine` and
:class:`~repro.serving.server.SmolServer` accept ``store=``, the core
:class:`~repro.core.costmodel.CostModel` accepts ``catalog=``, and the
``smol-repro store`` CLI exposes stats/gc/warm.
"""

from repro.store.catalog import (
    MATERIALIZED_DECODE_FRACTION,
    StoreCatalog,
    materialized_discount,
)
from repro.store.lru import ByteLruCache, ChunkCacheStats
from repro.store.manifest import Manifest, ManifestEntry
from repro.store.store import (
    ChunkedReader,
    GcReport,
    RenditionKey,
    RenditionStore,
    ScoreKey,
    StoreEvent,
    StoreStats,
    dag_fingerprint,
    fingerprint_of,
)

__all__ = [
    "ByteLruCache",
    "ChunkCacheStats",
    "ChunkedReader",
    "GcReport",
    "Manifest",
    "ManifestEntry",
    "MATERIALIZED_DECODE_FRACTION",
    "RenditionKey",
    "RenditionStore",
    "ScoreKey",
    "StoreCatalog",
    "StoreEvent",
    "StoreStats",
    "dag_fingerprint",
    "fingerprint_of",
    "materialized_discount",
]
