"""The store's atomic, versioned manifest.

The manifest is the single source of truth for what the store contains: a
JSON document mapping logical entry keys (``scores/...``, ``rendition/...``)
to the content-addressed objects holding their chunks, plus the fingerprint
each entry was computed under.  Two properties make it safe:

* **Atomic updates.**  Every save writes a writer-unique temporary file in
  the same directory and then ``os.replace``\\ s it over ``manifest.json``.
  The rename is atomic on POSIX, so a crash at any point leaves either the
  old or the new manifest -- never a torn one.  A leftover temp file from
  a crashed writer is ignored on load and reaped by the store's GC once
  provably stale.
* **Versioned invalidation.**  Each entry records the ``fingerprint`` of the
  computation that produced it (preprocessing-DAG spec, model identity,
  codec parameters).  A reader presents its own fingerprint; a mismatch is a
  miss, so changing a DAG or model silently invalidates every stale entry
  without a coordinated flush.  ``schema_version`` guards the manifest
  layout itself the same way.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.errors import StoreCorruptionError

SCHEMA_VERSION = 1
MANIFEST_NAME = "manifest.json"


@dataclass
class ManifestEntry:
    """One logical array stored as a sequence of content-addressed chunks.

    Attributes
    ----------
    kind:
        ``"scores"`` or ``"rendition"``.
    fingerprint:
        Version tag of the producing computation; compared on every read.
    objects:
        Content hashes of the entry's chunks, in order.
    chunk_lengths:
        Leading-axis length of each chunk (frames per chunk), so a reader
        can map a frame range onto chunk indices without decoding anything.
    dtype / shape_suffix:
        Array dtype string and the per-frame shape (everything after the
        leading frame axis).
    meta:
        Free-form producer metadata (dataset, model, rendition parameters).
    """

    kind: str
    fingerprint: str
    objects: list[str]
    chunk_lengths: list[int]
    dtype: str
    shape_suffix: list[int] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def length(self) -> int:
        """Total leading-axis length across all chunks."""
        return sum(self.chunk_lengths)


class Manifest:
    """In-memory view of the manifest with atomic persistence."""

    def __init__(self, entries: dict[str, ManifestEntry] | None = None,
                 sequence: int = 0) -> None:
        self.entries: dict[str, ManifestEntry] = dict(entries or {})
        self.sequence = sequence

    @classmethod
    def load(cls, directory: Path) -> "Manifest":
        """Load the manifest from ``directory`` (empty if absent).

        Leftover temporary files from crashed saves are ignored: their
        rename never happened, so their contents were never committed.
        (They are reaped by the store's GC once provably stale -- load
        must not delete them, because another live writer's in-flight
        temp file looks identical to a crashed one.)
        """
        path = directory / MANIFEST_NAME
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreCorruptionError(
                f"manifest at {path} is unreadable: {exc}"
            ) from exc
        if payload.get("schema_version") != SCHEMA_VERSION:
            raise StoreCorruptionError(
                f"manifest schema {payload.get('schema_version')!r} is not "
                f"the supported version {SCHEMA_VERSION}"
            )
        entries = {}
        for key, raw in payload.get("entries", {}).items():
            try:
                entries[key] = ManifestEntry(**raw)
            except TypeError as exc:
                raise StoreCorruptionError(
                    f"manifest entry {key!r} is malformed: {exc}"
                ) from exc
        return cls(entries=entries, sequence=int(payload.get("sequence", 0)))

    def save(self, directory: Path) -> None:
        """Persist atomically: write a sibling temp file, then rename.

        The temp name is unique per writer (pid + thread id), so
        concurrent saves from different handles or processes never
        clobber each other's in-flight file; the final ``os.replace``
        serializes them (last rename wins, both manifests are intact).
        """
        self.sequence += 1
        payload = {
            "schema_version": SCHEMA_VERSION,
            "sequence": self.sequence,
            "entries": {key: asdict(entry)
                        for key, entry in sorted(self.entries.items())},
        }
        path = directory / MANIFEST_NAME
        tmp = directory / (f"{MANIFEST_NAME}.{os.getpid()}"
                           f"-{threading.get_ident()}.tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                       encoding="utf-8")
        os.replace(tmp, path)

    def get(self, key: str, fingerprint: str) -> ManifestEntry | None:
        """The entry for ``key`` iff it matches ``fingerprint``; else None."""
        entry = self.entries.get(key)
        if entry is None or entry.fingerprint != fingerprint:
            return None
        return entry

    def referenced_objects(self) -> set[str]:
        """Content hashes referenced by any live entry."""
        refs: set[str] = set()
        for entry in self.entries.values():
            refs.update(entry.objects)
        return refs
