"""Smol-Store: the persistent, content-addressed rendition and score store.

The paper's central measurement is that preprocessing -- decode + resize --
dominates end-to-end cost, which makes decoded low-resolution renditions and
the per-frame scores computed from them first-class, *reusable* artifacts.
:class:`RenditionStore` persists both so repeat queries become cache hits:

* **Renditions** -- decoded low-resolution pixel arrays, chunked along the
  frame axis and losslessly compressed with the chunk codec
  (:mod:`repro.codecs.chunked`).
* **Scores** -- per-item model outputs keyed by
  ``(item, model, rendition-spec)`` (:class:`ScoreKey`), stored the same
  chunked way so shard scans can stream a frame range without loading the
  whole table.

On-disk layout (all under one ``root`` directory)::

    root/
      manifest.json           # atomic (write-then-rename), versioned
      objects/<aa>/<sha256>   # content-addressed chunk payloads

Chunks are content-addressed: an object's filename is the SHA-256 of its
encoded payload, so concurrent writers that race on the same deterministic
computation write identical bytes to identical names -- last rename wins and
nothing is corrupted.  The manifest maps logical keys to chunk hashes and
records the *fingerprint* (DAG spec, model identity) each entry was computed
under; a fingerprint mismatch is a miss, which is how a changed
preprocessing DAG or retrained model invalidates stale entries without a
flush (see :mod:`repro.store.manifest`).

An in-memory byte-budgeted LRU tier (:class:`~repro.store.lru.ByteLruCache`)
fronts the disk objects, so hot chunks decode once per process.  The memory
bound of a store-backed reader is ``O(chunk_frames x itemsize)`` per
in-flight chunk plus the shared LRU budget -- *not* ``O(total frames)``.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import threading
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

import numpy as np

from repro.chaos.faults import NULL_FAULTS
from repro.codecs.chunked import decode_array, encode_array
from repro.errors import StoreCorruptionError, StoreError
from repro.obs import NULL_OBS
from repro.store.lru import ByteLruCache, ChunkCacheStats
from repro.store.manifest import Manifest, ManifestEntry

DEFAULT_CHUNK_FRAMES = 2048
DEFAULT_CACHE_BYTES = 32 * 1024 * 1024

#: A ``.tmp`` file this old is a crashed writer's leftover, not an
#: in-flight write (writers hold their temp files for milliseconds); GC
#: reaps only temps past this age so it never races a live rename.
TMP_REAP_SECONDS = 60.0

#: One-time flag for the non-POSIX degraded-locking warning, so a busy
#: store does not spam a warning per manifest mutation.
_FCNTL_WARNING_EMITTED = False


def _warn_no_flock() -> None:
    global _FCNTL_WARNING_EMITTED
    if _FCNTL_WARNING_EMITTED:
        return
    _FCNTL_WARNING_EMITTED = True
    warnings.warn(
        "fcntl is unavailable on this platform: manifest mutations are "
        "serialized in-process only, and cross-process writers on the "
        "same store root may clobber each other's entries",
        RuntimeWarning,
        stacklevel=3,
    )


def fingerprint_of(*parts: object) -> str:
    """A short stable fingerprint of the given computation identifiers.

    Feed it everything that, when changed, must invalidate stored results:
    the preprocessing-DAG description, the model name/variant, codec
    parameters.  Readers and writers must derive fingerprints from the same
    parts.
    """
    text = "\x1f".join(str(part) for part in parts)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def dag_fingerprint(dag) -> str:
    """Fingerprint of a preprocessing DAG's executable spec.

    Uses the DAG's operator sequence and device placement (its
    ``describe()`` string plus per-op public attributes), so any spec change
    -- op order, parameters, placement -- produces a new fingerprint and
    invalidates renditions and scores computed under the old one.
    """
    parts: list[object] = [dag.describe()]
    for node in dag.topological_ops():
        parts.append(sorted(
            (k, repr(v)) for k, v in vars(node.op).items()
            if not k.startswith("_")
        ))
    return fingerprint_of(*parts)


@dataclass(frozen=True)
class StoreEvent:
    """One observable change to the store's catalog state.

    Delivered to :meth:`RenditionStore.subscribe` listeners whenever an
    entry lands (``kind`` ``"rendition"`` / ``"scores"``) or entries are
    dropped (``kind`` ``"invalidate"``).  The adaptive replanning loop
    (:mod:`repro.adapt`) listens for these to notice *catalog drift* -- a
    rendition becoming warm mid-query changes which plan is cheapest even
    though no measured cost moved.

    Attributes
    ----------
    kind:
        ``"rendition"``, ``"scores"``, or ``"invalidate"``.
    key:
        The manifest key written (or the invalidated prefix).
    """

    kind: str
    key: str


@dataclass(frozen=True)
class ScoreKey:
    """Identity of one stored score table: (item, model, rendition-spec).

    ``item`` is the corpus the scores cover (a dataset name), ``model`` the
    scoring network, ``rendition`` the input format the model read, and
    ``params`` any scoring parameters that change the values (e.g. the
    specialized NN's accuracy factor and the frame count).
    """

    item: str
    model: str
    rendition: str
    params: tuple[tuple[str, str], ...] = ()

    @classmethod
    def for_scan(cls, dataset: str, model: str, rendition: str,
                 accuracy: float, frames: int) -> "ScoreKey":
        """The key of one cheap-pass scan's score table."""
        return cls(item=dataset, model=model, rendition=rendition,
                   params=(("accuracy", repr(float(accuracy))),
                           ("frames", str(int(frames)))))

    def key(self) -> str:
        """The manifest key string."""
        suffix = "/".join(f"{name}={value}" for name, value in self.params)
        base = f"scores/{self.item}/{self.model}/{self.rendition}"
        return f"{base}/{suffix}" if suffix else base


@dataclass(frozen=True)
class RenditionKey:
    """Identity of one stored decoded rendition: (item, rendition-spec)."""

    item: str
    rendition: str

    def key(self) -> str:
        """The manifest key string."""
        return f"rendition/{self.item}/{self.rendition}"


@dataclass(frozen=True)
class StoreStats:
    """Snapshot of the store's contents and traffic."""

    score_entries: int
    rendition_entries: int
    objects: int
    disk_bytes: int
    read_through_hits: int
    read_through_misses: int
    chunk_cache: ChunkCacheStats

    def describe(self) -> str:
        """Multi-line human-readable summary (the ``store stats`` CLI)."""
        total = self.read_through_hits + self.read_through_misses
        hit_rate = self.read_through_hits / total if total else 0.0
        return "\n".join([
            f"entries:      {self.score_entries} score tables, "
            f"{self.rendition_entries} renditions",
            f"objects:      {self.objects} chunks, "
            f"{self.disk_bytes / 1e6:.2f} MB on disk",
            f"read-through: {self.read_through_hits}/{total} warm "
            f"({hit_rate * 100:.1f}%)",
            f"chunk cache:  {self.chunk_cache.entries} chunks, "
            f"{self.chunk_cache.bytes_used / 1e6:.2f}/"
            f"{self.chunk_cache.bytes_budget / 1e6:.0f} MB, "
            f"{self.chunk_cache.hit_rate * 100:.1f}% hits",
        ])


@dataclass(frozen=True)
class GcReport:
    """Outcome of one garbage-collection pass."""

    removed_objects: int
    freed_bytes: int
    live_objects: int


class ChunkedReader:
    """Streaming view over one stored entry's chunks.

    Reads decode only the chunks covering the requested frame range, through
    the store's shared LRU tier, so a shard scan over a huge table holds at
    most a few chunks in memory (``chunk_frames x row nbytes`` each) instead
    of the whole array.
    """

    def __init__(self, store: "RenditionStore", entry: ManifestEntry) -> None:
        self._store = store
        self._entry = entry
        starts = np.cumsum([0] + list(entry.chunk_lengths))
        self._starts = starts          # chunk i covers [starts[i], starts[i+1])
        self._length = int(starts[-1])

    @property
    def length(self) -> int:
        """Total leading-axis length (frames)."""
        return self._length

    @property
    def dtype(self) -> np.dtype:
        """Element dtype of the stored array."""
        return np.dtype(self._entry.dtype)

    def _chunk(self, index: int) -> np.ndarray:
        return self._store._load_chunk(self._entry, index)

    def read(self, lo: int, hi: int) -> np.ndarray:
        """The rows in ``[lo, hi)``, decoded chunk by chunk."""
        if not 0 <= lo <= hi <= self._length:
            raise StoreError(
                f"range [{lo}, {hi}) outside stored length {self._length}"
            )
        obs = self._store._obs
        if obs.enabled:
            with obs.span("store.read", rows=hi - lo, mode="range"):
                return self._read_impl(lo, hi)
        return self._read_impl(lo, hi)

    def _read_impl(self, lo: int, hi: int) -> np.ndarray:
        if lo == hi:
            shape = (0, *self._entry.shape_suffix)
            return np.empty(shape, dtype=self.dtype)
        first = int(np.searchsorted(self._starts, lo, side="right")) - 1
        last = int(np.searchsorted(self._starts, hi, side="left"))
        parts = []
        for index in range(first, last):
            chunk = self._chunk(index)
            start = int(self._starts[index])
            begin = max(lo - start, 0)
            end = min(hi - start, chunk.shape[0])
            parts.append(chunk[begin:end])
        if len(parts) == 1:
            return parts[0].copy()
        return np.concatenate(parts, axis=0)

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """The rows at ``indices`` (any order), decoded chunk by chunk."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return np.empty((0, *self._entry.shape_suffix), dtype=self.dtype)
        if idx.min() < 0 or idx.max() >= self._length:
            raise StoreError(
                f"index outside the stored range [0, {self._length})"
            )
        obs = self._store._obs
        if obs.enabled:
            with obs.span("store.read", rows=int(idx.size), mode="gather"):
                return self._gather_impl(idx)
        return self._gather_impl(idx)

    def _gather_impl(self, idx: np.ndarray) -> np.ndarray:
        out = np.empty((idx.size, *self._entry.shape_suffix),
                       dtype=self.dtype)
        owner = np.searchsorted(self._starts, idx, side="right") - 1
        for chunk_index in np.unique(owner):
            mask = owner == chunk_index
            chunk = self._chunk(int(chunk_index))
            out[mask] = chunk[idx[mask] - int(self._starts[chunk_index])]
        return out

    def read_all(self) -> np.ndarray:
        """The whole array (convenience; defeats the streaming bound)."""
        return self.read(0, self._length)


class RenditionStore:
    """Persistent content-addressed store for renditions and score tables.

    Parameters
    ----------
    root:
        Directory holding the manifest and object files; created on demand.
    chunk_frames:
        Leading-axis rows per chunk.  This fixes the streaming memory bound:
        a reader touches one chunk (``chunk_frames`` rows) at a time.
    cache_bytes:
        Budget of the in-memory decoded-chunk LRU tier.
    compression_level:
        zlib level for chunk bodies (see :mod:`repro.codecs.chunked`).
    obs:
        Observability handle (:mod:`repro.obs`).  With tracing enabled,
        reads, puts, and invalidations open ``store.*`` spans parented to
        the ambient trace context (so a traced query shows its store
        traffic), and cache/read-through traffic ticks registry counters.
        The default :data:`~repro.obs.NULL_OBS` keeps every store path
        observation-free; :meth:`attach_obs` rebinds a live handle later.

    The store is safe for concurrent use from multiple threads: manifest
    mutations serialize on an internal lock, object writes are
    write-to-temp-then-rename, and identical content always lands at the
    same content-addressed name, so racing writers are idempotent.
    """

    def __init__(self, root: str | Path,
                 chunk_frames: int = DEFAULT_CHUNK_FRAMES,
                 cache_bytes: int = DEFAULT_CACHE_BYTES,
                 compression_level: int = 1, obs=NULL_OBS,
                 faults=NULL_FAULTS) -> None:
        if chunk_frames <= 0:
            raise StoreError("chunk_frames must be positive")
        self._faults = faults if faults is not None else NULL_FAULTS
        self._root = Path(root)
        self._objects = self._root / "objects"
        self._objects.mkdir(parents=True, exist_ok=True)
        self._chunk_frames = chunk_frames
        self._level = compression_level
        self._lock = threading.RLock()
        self._manifest = Manifest.load(self._root)
        self._cache = ByteLruCache(cache_bytes)
        self._read_through_hits = 0
        self._read_through_misses = 0
        self._listeners: list = []
        self.attach_obs(obs)

    def attach_obs(self, obs) -> None:
        """Bind an observability handle (pre-binding the hot counters)."""
        self._obs = obs if obs is not None else NULL_OBS
        self._chunk_hits_metric = self._obs.counter(
            "store_chunk_cache_hits_total")
        self._chunk_misses_metric = self._obs.counter(
            "store_chunk_cache_misses_total")
        self._warm_metric = self._obs.counter(
            "store_read_through_total", result="hit")
        self._cold_metric = self._obs.counter(
            "store_read_through_total", result="miss")
        self._puts_metric = self._obs.counter("store_puts_total")
        self._invalidations_metric = self._obs.counter(
            "store_invalidated_entries_total")

    @property
    def root(self) -> Path:
        """The store's root directory."""
        return self._root

    @property
    def chunk_frames(self) -> int:
        """Rows per chunk (the streaming granularity)."""
        return self._chunk_frames

    # ------------------------------------------------------------------
    # Object layer (content-addressed chunks)
    # ------------------------------------------------------------------
    def _object_path(self, digest: str) -> Path:
        return self._objects / digest[:2] / digest

    def _write_object(self, payload: bytes) -> str:
        digest = hashlib.sha256(payload).hexdigest()
        path = self._object_path(digest)
        if path.exists():
            try:
                # Refresh the mtime: GC's age guard treats young objects
                # as possibly-uncommitted, so a re-put of content that
                # already exists (e.g. after an invalidation) must look
                # young again or a concurrent GC could sweep it between
                # this dedupe and the manifest commit.
                os.utime(path)
                return digest
            except OSError:
                pass  # reaped concurrently; fall through and rewrite
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}"
                             f"-{threading.get_ident()}")
        tmp.write_bytes(payload)
        os.replace(tmp, path)
        return digest

    def _load_chunk(self, entry: ManifestEntry, index: int) -> np.ndarray:
        digest = entry.objects[index]
        cached = self._cache.get(digest)
        if cached is not None:
            self._chunk_hits_metric.inc()
            return cached
        self._chunk_misses_metric.inc()
        path = self._object_path(digest)
        try:
            payload = path.read_bytes()
        except OSError as exc:
            raise StoreCorruptionError(
                f"chunk object {digest} is missing from {self._objects}"
            ) from exc
        if hashlib.sha256(payload).hexdigest() != digest:
            raise StoreCorruptionError(
                f"chunk object {digest} fails its content address"
            )
        array = decode_array(payload)
        self._cache.put(digest, array)
        return array

    # ------------------------------------------------------------------
    # Entry layer (put / get / read-through)
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def _manifest_lock(self):
        """Serialize manifest read-modify-write across handles & processes.

        The in-process ``RLock`` serializes this handle's threads; the
        ``flock`` on a sibling lockfile serializes *other* handles and
        processes on the same root, so two concurrent puts merge instead
        of the later ``os.replace`` dropping the earlier writer's entry.
        (On platforms without ``fcntl`` only the in-process lock applies.)
        """
        with self._lock:
            if fcntl is None:
                _warn_no_flock()
                yield
                return
            with open(self._root / "manifest.lock", "w") as lockfile:
                fcntl.flock(lockfile, fcntl.LOCK_EX)
                try:
                    yield
                finally:
                    fcntl.flock(lockfile, fcntl.LOCK_UN)

    def _put_entry(self, key: str, kind: str, array: np.ndarray,
                   fingerprint: str, meta: dict | None = None) -> None:
        arr = np.asarray(array)
        if arr.ndim < 1:
            raise StoreError("stored arrays need at least a frame axis")
        arr = np.ascontiguousarray(arr)
        objects: list[str] = []
        chunk_lengths: list[int] = []
        for offset in range(0, arr.shape[0], self._chunk_frames):
            chunk = arr[offset:offset + self._chunk_frames]
            objects.append(
                self._write_object(encode_array(chunk, self._level))
            )
            chunk_lengths.append(int(chunk.shape[0]))
        entry = ManifestEntry(
            kind=kind, fingerprint=fingerprint, objects=objects,
            chunk_lengths=chunk_lengths, dtype=arr.dtype.str,
            shape_suffix=list(arr.shape[1:]), meta=dict(meta or {}),
        )
        self._puts_metric.inc()
        if self._obs.enabled:
            self._obs.record("store.put", 0.0, key=key, kind=kind,
                             chunks=len(objects), rows=int(arr.shape[0]))
        with self._manifest_lock():
            # Chaos seam: a torn-manifest fault here leaves garbage
            # ``.tmp`` debris (and aborts the commit) exactly where a
            # crashed writer would -- the entry must NOT become visible.
            self._faults.hit("store.manifest.save", store=self,
                             root=self._root, key=key)
            # Reload before mutating so entries committed by other store
            # handles on the same root are merged, not clobbered (the
            # lock makes reload-modify-save atomic across processes).
            self._manifest = Manifest.load(self._root)
            self._manifest.entries[key] = entry
            self._manifest.save(self._root)
        self._notify(StoreEvent(kind=kind, key=key))

    def _open_entry(self, key: str, kind: str,
                    fingerprint: str) -> ChunkedReader | None:
        with self._lock:
            entry = self._manifest.get(key, fingerprint)
            if entry is None:
                # Reload once on a miss: another handle or process may
                # have committed the entry since this handle last read
                # the manifest (e.g. `store warm` ran while a server with
                # a long-lived handle was up).  A miss is about to
                # trigger an expensive recompute, so the reload is free
                # by comparison.
                self._manifest = Manifest.load(self._root)
                entry = self._manifest.get(key, fingerprint)
        if entry is None or entry.kind != kind:
            return None
        return ChunkedReader(self, entry)

    # -- scores --------------------------------------------------------
    def put_scores(self, key: ScoreKey, scores: np.ndarray,
                   fingerprint: str = "") -> None:
        """Write-through one score table (chunked, lossless)."""
        self._put_entry(key.key(), "scores", np.asarray(scores), fingerprint,
                        meta={"item": key.item, "model": key.model,
                              "rendition": key.rendition})

    def open_scores(self, key: ScoreKey,
                    fingerprint: str = "") -> ChunkedReader | None:
        """A streaming reader over a stored score table; None on miss."""
        return self._open_entry(key.key(), "scores", fingerprint)

    def get_scores(self, key: ScoreKey,
                   fingerprint: str = "") -> np.ndarray | None:
        """The full score table; None on miss (prefer :meth:`open_scores`)."""
        reader = self.open_scores(key, fingerprint)
        return None if reader is None else reader.read_all()

    def scores_or_compute(self, key: ScoreKey,
                          compute: Callable[[], np.ndarray],
                          fingerprint: str = "") -> ChunkedReader:
        """Read-through: open the stored table or compute-and-store it.

        ``compute`` runs at most once per miss; concurrent misses on the
        same key may each compute, but the results are deterministic and
        content-addressed, so the duplicate writes are idempotent.
        """
        reader = self.open_scores(key, fingerprint)
        if reader is not None:
            with self._lock:
                self._read_through_hits += 1
            self._warm_metric.inc()
            return reader
        with self._lock:
            self._read_through_misses += 1
        self._cold_metric.inc()
        self.put_scores(key, compute(), fingerprint)
        reader = self.open_scores(key, fingerprint)
        if reader is None:  # pragma: no cover - write-then-open cannot miss
            raise StoreError(f"entry {key.key()!r} vanished after write")
        return reader

    # -- renditions ----------------------------------------------------
    def put_rendition(self, key: RenditionKey, frames: np.ndarray,
                      fingerprint: str = "") -> None:
        """Write-through one decoded rendition (frames on the leading axis)."""
        self._put_entry(key.key(), "rendition", np.asarray(frames),
                        fingerprint,
                        meta={"item": key.item, "rendition": key.rendition})

    def open_rendition(self, key: RenditionKey,
                       fingerprint: str = "") -> ChunkedReader | None:
        """A streaming reader over a stored rendition; None on miss."""
        return self._open_entry(key.key(), "rendition", fingerprint)

    def rendition_materialized(self, rendition: str,
                               item: str | None = None,
                               fingerprint: str | None = None) -> bool:
        """True when a decoded rendition with this spec is stored.

        ``item`` restricts the check to one dataset; without it, any stored
        rendition of the spec counts (the planner-facing question).
        ``fingerprint`` (when not None) additionally requires the entry to
        match that version -- a rendition invalidated by a DAG or model
        change must not count as materialized, or the planner would price
        a discount the read path cannot deliver.
        """
        def match() -> bool:
            for entry in self._manifest.entries.values():
                if entry.kind != "rendition":
                    continue
                if entry.meta.get("rendition") != rendition:
                    continue
                if item is not None and entry.meta.get("item") != item:
                    continue
                if fingerprint is not None \
                        and entry.fingerprint != fingerprint:
                    continue
                return True
            return False

        with self._lock:
            if match():
                return True
            # Reload once on a miss (see _open_entry): another process may
            # have materialized the rendition since this handle last read
            # the manifest.
            self._manifest = Manifest.load(self._root)
            return match()

    def materialized_renditions(self, item: str | None = None,
                                fingerprint: str | None = None) -> set[str]:
        """Rendition spec names with at least one stored decoded copy."""
        with self._lock:
            self._manifest = Manifest.load(self._root)
            return {
                entry.meta.get("rendition", "")
                for entry in self._manifest.entries.values()
                if entry.kind == "rendition"
                and (item is None or entry.meta.get("item") == item)
                and (fingerprint is None
                     or entry.fingerprint == fingerprint)
            }

    def catalog(self, item: str | None = None,
                fingerprint: str | None = None):
        """A planner-facing :class:`~repro.store.catalog.StoreCatalog`."""
        from repro.store.catalog import StoreCatalog

        return StoreCatalog(self, item=item, fingerprint=fingerprint)

    # ------------------------------------------------------------------
    # Change notification
    # ------------------------------------------------------------------
    def subscribe(self, listener) -> None:
        """Register ``listener(event: StoreEvent)`` for catalog changes.

        Fired after an entry commits (``put_scores`` / ``put_rendition``,
        including read-through computes) and after :meth:`invalidate`
        drops entries -- the moments a cache-aware plan's relative price
        changes.  Listeners run on the writing thread, outside the
        manifest lock; exceptions are swallowed (notification is advisory,
        persistence is not allowed to fail because a subscriber did).
        """
        with self._lock:
            self._listeners.append(listener)

    def unsubscribe(self, listener) -> None:
        """Remove a previously subscribed listener (no-op if absent)."""
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    def _notify(self, event: StoreEvent) -> None:
        # Catalog changes are replan triggers; a breadcrumb in the flight
        # recorder lets a postmortem correlate a swap with what moved.
        self._obs.note("store.event", event_kind=event.kind, key=event.key)
        with self._lock:
            listeners = list(self._listeners)
        for listener in listeners:
            try:
                listener(event)
            except Exception:
                continue

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def invalidate(self, prefix: str = "") -> int:
        """Drop every entry whose key starts with ``prefix``; returns count.

        Dropping the entries leaves their chunk objects unreferenced; run
        :meth:`gc` afterwards to reclaim the disk space.
        """
        with self._manifest_lock():
            self._manifest = Manifest.load(self._root)
            doomed = [key for key in self._manifest.entries
                      if key.startswith(prefix)]
            for key in doomed:
                del self._manifest.entries[key]
            if doomed:
                self._manifest.save(self._root)
        if doomed:
            self._invalidations_metric.inc(len(doomed))
            if self._obs.enabled:
                self._obs.record("store.invalidate", 0.0, prefix=prefix,
                                 dropped=len(doomed))
            self._notify(StoreEvent(kind="invalidate", key=prefix))
        return len(doomed)

    def gc(self, min_age_seconds: float = TMP_REAP_SECONDS) -> GcReport:
        """Remove object files no manifest entry references.

        The manifest is reloaded from disk first, so entries committed by
        other store handles (or processes) on the same root are counted as
        live -- GC never deletes data a committed manifest references.

        ``min_age_seconds`` guards against racing in-flight writers: a
        concurrent ``put`` renames its chunk objects into place *before*
        committing the manifest entry that references them, so a young
        unreferenced object (and likewise a young ``.tmp`` file) may
        belong to a write still in progress and is left alone.  The
        default (:data:`TMP_REAP_SECONDS`) is far above any real write's
        window; pass ``0.0`` only when no other writer can be active
        (tests, single-process demos) to reclaim immediately.

        On platforms without ``fcntl`` the cross-process manifest lock is
        unavailable, so the age guard cannot be trusted against writers
        in other processes: age-guarded GC refuses to run
        (:class:`~repro.errors.StoreError`).  An explicit
        ``min_age_seconds=0.0`` -- the caller asserting no other writer
        exists -- is still honored.
        """
        if fcntl is None and min_age_seconds > 0:
            raise StoreError(
                "gc with an age guard needs cross-process manifest "
                "locking (fcntl), which this platform lacks; pass "
                "min_age_seconds=0.0 only if no other writer can be "
                "active"
            )
        now = time.time()
        removed = 0
        freed = 0
        live = 0

        def stale(path: Path) -> bool:
            return now - path.stat().st_mtime > min_age_seconds

        # Hold the cross-process manifest lock for the whole sweep: no
        # writer can commit a manifest entry mid-GC, so the referenced
        # set cannot go stale between snapshot and unlink.  (A writer's
        # pre-commit object writes/utimes can still interleave -- the
        # age guard covers those.)
        with self._manifest_lock():
            self._manifest = Manifest.load(self._root)
            referenced = self._manifest.referenced_objects()
            temps = [path
                     for path in (list(self._objects.glob("*/*"))
                                  + [p for p in self._root.iterdir()
                                     if p.is_file()])
                     if ".tmp" in path.name]
            for path in temps:
                try:
                    if stale(path):
                        path.unlink()
                except OSError:
                    pass  # already renamed or reaped by its writer
            for path in self._objects.glob("*/*"):
                if ".tmp" in path.name:
                    continue
                if path.name in referenced:
                    live += 1
                    continue
                try:
                    if not stale(path):
                        # Possibly an in-flight put's uncommitted chunk
                        # (fresh writes and re-put dedupes both refresh
                        # the mtime).
                        continue
                    size = path.stat().st_size
                    path.unlink()
                except OSError:
                    continue  # committed or reaped concurrently
                freed += size
                removed += 1
        return GcReport(removed_objects=removed, freed_bytes=freed,
                        live_objects=live)

    def stats(self) -> StoreStats:
        """Snapshot of entries, disk usage, and cache traffic.

        Entry counts reflect the on-disk manifest (reloaded here, so
        entries committed by other handles are visible); in-flight or
        crashed writers' ``.tmp`` files are not counted as objects --
        they are uncommitted, the same view :meth:`gc` takes.
        """
        with self._lock:
            self._manifest = Manifest.load(self._root)
            scores = sum(1 for e in self._manifest.entries.values()
                         if e.kind == "scores")
            renditions = sum(1 for e in self._manifest.entries.values()
                             if e.kind == "rendition")
            hits = self._read_through_hits
            misses = self._read_through_misses
        objects = 0
        disk = 0
        for path in self._objects.glob("*/*"):
            if ".tmp" in path.name:
                continue
            objects += 1
            disk += path.stat().st_size
        return StoreStats(
            score_entries=scores,
            rendition_entries=renditions,
            objects=objects,
            disk_bytes=disk,
            read_through_hits=hits,
            read_through_misses=misses,
            chunk_cache=self._cache.stats(),
        )
