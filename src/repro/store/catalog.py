"""Cache-aware plan costing: what the store tells the planner.

The planner prices a plan's preprocessing stage as decode + resize +
normalize + layout.  When the store already holds a *decoded* rendition of a
plan's input format, the engine can read chunk-compressed pixels instead of
running the full decode, so the decode stage collapses to the (much cheaper)
chunk-inflate cost.  :class:`StoreCatalog` exposes that fact to the cost
model as a throughput *discount factor* per input format, derived from the
paper's measured stage breakdown (decode is ~82% of preprocessing time,
:data:`repro.inference.perfmodel.STAGE_FRACTIONS`).

The catalog is duck-typed: the core cost model accepts anything with a
``decode_discount(format_name) -> float`` method, so :mod:`repro.core` never
imports the store package (the store sits *above* core in the layer stack).
"""

from __future__ import annotations

from repro.inference.perfmodel import STAGE_FRACTIONS

#: Reading and inflating a stored chunk of already-decoded pixels costs this
#: fraction of a full codec decode (DEFLATE inflate vs. entropy decode + DCT
#: for JPEG-like formats; modelled, consistent with the chunk codec's design).
MATERIALIZED_DECODE_FRACTION = 0.15


def materialized_discount(
        decode_fraction: float = STAGE_FRACTIONS["decode"],
        residual: float = MATERIALIZED_DECODE_FRACTION) -> float:
    """Preprocessing-throughput multiplier once decode collapses to a read.

    Per-image preprocessing time drops from ``1`` to
    ``1 - decode_fraction * (1 - residual)``; throughput scales by the
    inverse.  With the paper's 82% decode share and a 15% residual read
    cost, materialization buys roughly a 3.3x preprocessing speedup.
    """
    warm = 1.0 - decode_fraction * (1.0 - residual)
    return 1.0 / warm


class StoreCatalog:
    """Planner-facing view of which renditions a store has materialized.

    Built via :meth:`repro.store.store.RenditionStore.catalog`.  The
    materialized set is snapshotted once at construction (one manifest
    read, fresh across processes); the planner then queries it once per
    candidate plan without touching disk.  Catalogs are rebuilt per
    planning pass (e.g. ``QueryEngine`` builds one per ``stage_plans``
    call), so plans priced after a warmup see the new materializations.
    """

    def __init__(self, store, item: str | None = None,
                 fingerprint: str | None = None) -> None:
        self._store = store
        self._item = item
        self._fingerprint = fingerprint
        self._materialized = frozenset(
            store.materialized_renditions(item, fingerprint=fingerprint)
        )

    def is_materialized(self, format_name: str) -> bool:
        """True when a current decoded rendition of ``format_name`` is stored.

        With a ``fingerprint``, entries invalidated by a DAG/model change
        do not count -- the discount must only be priced when the read
        path can actually deliver it.
        """
        return format_name in self._materialized

    def decode_discount(self, format_name: str) -> float:
        """Throughput multiplier for ``format_name`` (1.0 = no discount)."""
        if not self.is_materialized(format_name):
            return 1.0
        return materialized_discount()

    def describe(self) -> str:
        """One-line summary for plan reports."""
        names = sorted(self._materialized)
        scope = self._item or "any item"
        if not names:
            return f"store catalog ({scope}): nothing materialized"
        return (f"store catalog ({scope}): materialized "
                + ", ".join(names)
                + f" ({materialized_discount():.2f}x preprocessing)")
