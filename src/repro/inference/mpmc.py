"""A bounded multi-producer, multi-consumer queue.

Smol overlaps CPU preprocessing with accelerator execution by connecting
producer (preprocessing) threads to consumer (CUDA stream) threads through an
MPMC queue; the original system uses folly's MPMCQueue.  This implementation
provides the same interface semantics on top of a condition variable: bounded
capacity (so producers cannot run unboundedly ahead), blocking put/get with
optional timeouts, and a close protocol so consumers drain remaining items and
then stop.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Generic, TypeVar

from repro.chaos.faults import NULL_FAULTS
from repro.errors import EngineError

T = TypeVar("T")


class QueueClosed(EngineError):
    """Raised when putting to, or getting from, an exhausted closed queue."""


class MpmcQueue(Generic[T]):
    """Bounded blocking queue safe for multiple producers and consumers.

    ``faults`` is a chaos seam (:data:`~repro.chaos.faults.NULL_FAULTS`
    by default): the harness hits ``queue.put`` / ``queue.get`` before
    either call blocks, so injected stalls contend the queue without
    holding its lock.
    """

    def __init__(self, capacity: int, faults=NULL_FAULTS) -> None:
        if capacity <= 0:
            raise EngineError("queue capacity must be positive")
        self._capacity = capacity
        self._faults = faults if faults is not None else NULL_FAULTS
        self._items: deque[T] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._total_put = 0
        self._total_got = 0

    @property
    def capacity(self) -> int:
        """Maximum number of items the queue holds."""
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        with self._lock:
            return self._closed

    def put(self, item: T, timeout: float | None = None) -> None:
        """Block until there is room, then enqueue ``item``.

        ``timeout`` bounds the *total* block time: the wait runs against a
        monotonic deadline, so spurious wakeups and notify storms (another
        producer winning the freed slot) cannot re-arm it.  Raises
        :class:`QueueClosed` if the queue has been closed, and
        :class:`EngineError` on timeout.
        """
        self._faults.hit("queue.put", queue=self)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_full:
            if self._closed:
                raise QueueClosed("cannot put to a closed queue")
            while len(self._items) >= self._capacity:
                if deadline is None:
                    self._not_full.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or \
                            not self._not_full.wait(timeout=remaining):
                        raise EngineError("timed out waiting to enqueue")
                if self._closed:
                    raise QueueClosed("queue closed while waiting to enqueue")
            self._items.append(item)
            self._total_put += 1
            self._not_empty.notify()

    def get(self, timeout: float | None = None) -> T:
        """Block until an item is available, then dequeue it.

        ``timeout`` bounds the *total* block time against a monotonic
        deadline (see :meth:`put`).  Raises :class:`QueueClosed` once the
        queue is closed and drained, and :class:`EngineError` on timeout.
        """
        self._faults.hit("queue.get", queue=self)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_empty:
            while not self._items:
                if self._closed:
                    raise QueueClosed("queue closed and drained")
                if deadline is None:
                    self._not_empty.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or \
                            not self._not_empty.wait(timeout=remaining):
                        raise EngineError("timed out waiting to dequeue")
            item = self._items.popleft()
            self._total_got += 1
            self._not_full.notify()
            return item

    def close(self) -> None:
        """Mark the queue closed; waiting producers and drained consumers wake."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def stats(self) -> dict[str, int]:
        """Lifetime put/get counters (for tests and engine statistics)."""
        with self._lock:
            return {
                "put": self._total_put,
                "got": self._total_got,
                "depth": len(self._items),
            }
