"""Optimized runtime engine for end-to-end visual inference (Section 6).

Components:

* :mod:`repro.inference.mpmc` -- a thread-safe multi-producer, multi-consumer
  queue (the pipelining primitive Smol uses between preprocessing workers and
  accelerator streams).
* :mod:`repro.inference.memory` -- buffer pools with pinned-memory accounting
  and reuse, modelling the paper's memory optimizations.
* :mod:`repro.inference.backends` -- execution-backend efficiency models
  (Keras-, PyTorch-, and TensorRT-like) reproducing Table 1.
* :mod:`repro.inference.perfmodel` -- calibrated per-stage cost models for
  preprocessing and DNN execution on a given instance and engine config.
* :mod:`repro.inference.pipeline_sim` -- an event-driven simulator of the
  producer/consumer pipeline, used to "measure" pipelined throughput.
* :mod:`repro.inference.engine` -- the Smol runtime engine facade with both a
  functional mode (real arrays through real threads) and a simulated mode
  (calibrated costs through the pipeline simulator).
"""

from repro.inference.mpmc import MpmcQueue, QueueClosed
from repro.inference.memory import BufferPool, PinnedBufferPool, MemoryStats
from repro.inference.backends import ExecutionBackend, get_backend, list_backends
from repro.inference.perfmodel import (
    EngineConfig,
    StageEstimate,
    PerformanceModel,
    PreprocessingCostModel,
    DnnCostModel,
)
from repro.inference.pipeline_sim import PipelineSimulator, PipelineRunStats
from repro.inference.engine import SmolRuntimeEngine, InferenceResult
from repro.inference.calibrator import PreprocessingCalibrator, FormatProfile

__all__ = [
    "PreprocessingCalibrator",
    "FormatProfile",
    "MpmcQueue",
    "QueueClosed",
    "BufferPool",
    "PinnedBufferPool",
    "MemoryStats",
    "ExecutionBackend",
    "get_backend",
    "list_backends",
    "EngineConfig",
    "StageEstimate",
    "PerformanceModel",
    "PreprocessingCostModel",
    "DnnCostModel",
    "PipelineSimulator",
    "PipelineRunStats",
    "SmolRuntimeEngine",
    "InferenceResult",
]
