"""Profile-based calibration of the preprocessing cost model.

The shipped performance model is anchored to the paper's measured
throughputs.  When Smol is deployed on new hardware (or when the functional
numpy codecs themselves are the "hardware", as in this reproduction's tests),
the preprocessing side can instead be calibrated by profiling: decode and
preprocess a sample of real encoded images per rendition, measure the per-image
wall time, and scale to the target core count with the CPU's parallelism
model.  This mirrors how Smol benchmarks candidate plans cheaply before
selecting one (Section 3.1: exhaustively benchmarking D x F is cheap compared
to training).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.codecs.formats import InputFormatSpec
from repro.datasets.store import MultiResolutionStore
from repro.errors import EngineError
from repro.hardware.devices import CpuSpec
from repro.preprocessing.dag import PreprocessingDAG
from repro.preprocessing.ops import standard_pipeline_ops


@dataclass(frozen=True)
class FormatProfile:
    """Measured preprocessing profile for one rendition format."""

    format_name: str
    images_profiled: int
    per_image_seconds: float
    decode_fraction: float

    @property
    def single_thread_throughput(self) -> float:
        """Measured single-thread images/second."""
        if self.per_image_seconds <= 0:
            raise EngineError("per-image time must be positive")
        return 1.0 / self.per_image_seconds


class PreprocessingCalibrator:
    """Profiles real decode + preprocessing cost per rendition format."""

    def __init__(self, store: MultiResolutionStore,
                 crop_size: int = 32, resize_short_side: int = 36) -> None:
        if len(store) == 0:
            raise EngineError("the store must contain at least one asset")
        self._store = store
        self._pipeline = PreprocessingDAG.from_ops(
            standard_pipeline_ops(input_short_side=resize_short_side,
                                  crop_size=crop_size)[1:]
        )

    def profile_format(self, fmt: InputFormatSpec,
                       sample_size: int = 8) -> FormatProfile:
        """Measure per-image decode + preprocessing time for ``fmt``."""
        if sample_size <= 0:
            raise EngineError("sample_size must be positive")
        asset_ids = self._store.asset_ids()[:sample_size]
        if not asset_ids:
            raise EngineError("no assets available to profile")
        decode_seconds = 0.0
        total_seconds = 0.0
        for asset_id in asset_ids:
            start = time.perf_counter()
            decoded = self._store.decode(asset_id, fmt.name)
            after_decode = time.perf_counter()
            self._pipeline.execute(decoded.pixels)
            end = time.perf_counter()
            decode_seconds += after_decode - start
            total_seconds += end - start
        per_image = total_seconds / len(asset_ids)
        decode_fraction = decode_seconds / total_seconds if total_seconds else 0.0
        return FormatProfile(
            format_name=fmt.name,
            images_profiled=len(asset_ids),
            per_image_seconds=per_image,
            decode_fraction=decode_fraction,
        )

    def profile_all(self, sample_size: int = 8) -> dict[str, FormatProfile]:
        """Profile every rendition format the store holds."""
        return {
            fmt.name: self.profile_format(fmt, sample_size=sample_size)
            for fmt in self._store.formats
        }

    def estimated_throughput(self, profile: FormatProfile, cpu: CpuSpec,
                             vcpus: int | None = None) -> float:
        """Scale a single-thread profile to a multi-vCPU throughput estimate."""
        parallelism = cpu.effective_parallelism(vcpus)
        return profile.single_thread_throughput * parallelism

    def relative_costs(self, profiles: dict[str, FormatProfile]) -> dict[str, float]:
        """Per-format cost relative to the cheapest profiled format."""
        if not profiles:
            raise EngineError("no profiles provided")
        cheapest = min(p.per_image_seconds for p in profiles.values())
        if cheapest <= 0:
            raise EngineError("profiled times must be positive")
        return {
            name: profile.per_image_seconds / cheapest
            for name, profile in profiles.items()
        }
