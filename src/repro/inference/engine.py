"""The Smol runtime engine.

The engine executes a (DNN, input format) plan end-to-end.  It has two modes:

* **functional** -- real decoded arrays flow through real preprocessing
  operators and a real numpy model, using producer threads, the MPMC queue and
  the buffer pools.  Used by the tests, the examples, and the accuracy
  experiments.
* **simulated** -- per-image costs from the calibrated performance model flow
  through the event-driven pipeline simulator.  Used by the throughput
  benchmarks, where the absolute rates must match modern-accelerator scales
  no laptop CPU can reach.

Both modes share the same configuration (:class:`EngineConfig`) and report the
same result structure, so the planner and the analytics layer are agnostic to
which mode ran.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.codecs.formats import InputFormatSpec
from repro.errors import EngineError
from repro.inference.memory import MemoryStats, PinnedBufferPool
from repro.inference.mpmc import MpmcQueue, QueueClosed
from repro.inference.perfmodel import (
    EngineConfig,
    PerformanceModel,
    StageEstimate,
)
from repro.inference.pipeline_sim import PipelineRunStats, PipelineSimulator
from repro.nn.model import Sequential
from repro.nn.zoo import ModelProfile
from repro.preprocessing.dag import PreprocessingDAG


@dataclass
class InferenceResult:
    """Result of an engine run.

    Attributes
    ----------
    num_images:
        Images processed.
    predictions:
        Predicted class indices (functional mode only).
    throughput:
        End-to-end images/second (simulated time for simulated mode, a
        modelled value for functional mode runs where wall time is
        irrelevant to the paper's claims).
    stage_estimate:
        The per-stage estimate the run was based on (simulated mode).
    pipeline_stats:
        Detailed simulator statistics (simulated mode).
    memory_stats:
        Buffer pool statistics (functional mode).
    """

    num_images: int
    predictions: np.ndarray | None = None
    throughput: float = 0.0
    stage_estimate: StageEstimate | None = None
    pipeline_stats: PipelineRunStats | None = None
    memory_stats: MemoryStats | None = None
    errors: list[str] = field(default_factory=list)


class SmolRuntimeEngine:
    """Pipelined end-to-end inference engine."""

    def __init__(self, config: EngineConfig | None = None,
                 performance_model: PerformanceModel | None = None) -> None:
        self._config = config or EngineConfig()
        self._performance_model = performance_model

    @property
    def config(self) -> EngineConfig:
        """The engine configuration."""
        return self._config

    # ------------------------------------------------------------------
    # Simulated mode
    # ------------------------------------------------------------------
    def run_simulated(self, model: ModelProfile, fmt: InputFormatSpec,
                      num_images: int = 4096, roi_fraction: float = 1.0,
                      offloaded_fraction: float | None = None,
                      deblocking: bool = True) -> InferenceResult:
        """Simulate a pipelined run of ``num_images`` images.

        When ``offloaded_fraction`` is None the engine asks the performance
        model for the best operator placement (Section 6.3).
        """
        if self._performance_model is None:
            raise EngineError("simulated mode requires a performance model")
        perf = self._performance_model
        if offloaded_fraction is None:
            offloaded_fraction = perf.best_offload_fraction(
                model, fmt, self._config, roi_fraction=roi_fraction
            )
        estimate = perf.estimate(
            model, fmt, self._config, roi_fraction=roi_fraction,
            offloaded_fraction=offloaded_fraction, deblocking=deblocking,
        )
        simulator = PipelineSimulator(self._config)
        stats = simulator.run(estimate, num_images=num_images)
        return InferenceResult(
            num_images=num_images,
            throughput=stats.throughput,
            stage_estimate=estimate,
            pipeline_stats=stats,
        )

    def measure_stages(self, model: ModelProfile, fmt: InputFormatSpec,
                       num_images: int = 2048,
                       roi_fraction: float = 1.0) -> dict[str, float]:
        """Measure preprocessing-only, DNN-only, and pipelined throughput."""
        if self._performance_model is None:
            raise EngineError("simulated mode requires a performance model")
        estimate = self._performance_model.estimate(
            model, fmt, self._config, roi_fraction=roi_fraction
        )
        simulator = PipelineSimulator(self._config)
        return simulator.measured_stage_throughputs(estimate, num_images)

    # ------------------------------------------------------------------
    # Functional mode
    # ------------------------------------------------------------------
    def run_functional(
        self,
        decode_fn: Callable[[int], np.ndarray],
        preprocessing: PreprocessingDAG,
        model: Sequential,
        num_images: int,
        batch_size: int | None = None,
    ) -> InferenceResult:
        """Run real data through the threaded pipeline.

        Parameters
        ----------
        decode_fn:
            Callable mapping an image index to a decoded HWC uint8 array
            (typically a closure over a dataset and codec).
        preprocessing:
            The preprocessing DAG to execute on each decoded image.
        model:
            The numpy model producing predictions.
        num_images:
            Number of images to process.
        batch_size:
            Batch size for model execution (defaults to the engine config,
            capped at the image count).
        """
        if num_images <= 0:
            raise EngineError("num_images must be positive")
        preprocessing.validate()
        batch = min(batch_size or self._config.batch_size, num_images)
        producers = self._config.num_producers if self._config.use_threading else 1
        queue: MpmcQueue[tuple[int, np.ndarray]] = MpmcQueue(
            capacity=max(2, self._config.queue_capacity) * batch
        )
        errors: list[str] = []
        errors_lock = threading.Lock()

        # Determine the preprocessed tensor shape from the first image so the
        # buffer pool can be sized; the pool is only exercised when buffer
        # reuse is enabled.
        probe = preprocessing.execute(decode_fn(0))
        # Size the pool for the worst case of in-flight buffers: everything
        # sitting in the queue, one per producer being filled, and one batch
        # held by the consumer while the model runs.
        max_in_flight = queue.capacity + producers + batch
        pool = PinnedBufferPool(
            shape=probe.shape,
            dtype=str(probe.dtype),
            max_buffers=max_in_flight,
            reuse=self._config.reuse_buffers,
            pinned=self._config.pinned_memory,
        )

        next_index = {"value": 0}
        index_lock = threading.Lock()

        def producer_loop() -> None:
            while True:
                with index_lock:
                    index = next_index["value"]
                    if index >= num_images:
                        return
                    next_index["value"] = index + 1
                try:
                    decoded = decode_fn(index)
                    preprocessed = preprocessing.execute(decoded)
                    buffer = pool.acquire()
                    buffer[...] = preprocessed
                    queue.put((index, buffer))
                except QueueClosed:
                    return
                except Exception as exc:  # pragma: no cover - defensive
                    with errors_lock:
                        errors.append(f"image {index}: {exc}")
                    return

        threads = [threading.Thread(target=producer_loop, daemon=True)
                   for _ in range(producers)]
        for thread in threads:
            thread.start()

        predictions = np.full(num_images, -1, dtype=np.int64)
        consumed = 0
        batch_buffers: list[tuple[int, np.ndarray]] = []
        while consumed < num_images:
            if errors:
                break
            try:
                batch_buffers.append(queue.get(timeout=30.0))
            except QueueClosed:
                break
            if len(batch_buffers) == batch or consumed + len(batch_buffers) == num_images:
                indices = [item[0] for item in batch_buffers]
                stacked = np.stack([item[1] for item in batch_buffers]).astype(
                    np.float32
                )
                batch_predictions = model.predict(stacked)
                predictions[indices] = batch_predictions
                for _, buffer in batch_buffers:
                    pool.release(buffer)
                consumed += len(batch_buffers)
                batch_buffers = []
        queue.close()
        for thread in threads:
            thread.join(timeout=10.0)
        if errors:
            raise EngineError("; ".join(errors))
        return InferenceResult(
            num_images=num_images,
            predictions=predictions,
            memory_stats=pool.stats,
        )

    def run_functional_batched(
        self,
        images: Sequence[np.ndarray],
        preprocessing: PreprocessingDAG,
        model: Sequential,
    ) -> InferenceResult:
        """Convenience wrapper running a list of decoded images."""
        if not images:
            raise EngineError("images must be non-empty")
        return self.run_functional(
            decode_fn=lambda index: images[index],
            preprocessing=preprocessing,
            model=model,
            num_images=len(images),
        )
