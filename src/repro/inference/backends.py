"""Execution backend efficiency models (Table 1).

The same ResNet-50 runs at 243 im/s under Keras, 424 im/s under PyTorch, and
4,513 im/s under TensorRT on the T4 -- a 17x spread purely from how well the
software uses the accelerator.  The planner and the measurement study treat
the backend as a multiplicative efficiency factor relative to the optimized
compiler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError
from repro.hardware import calibration as cal


@dataclass(frozen=True)
class ExecutionBackend:
    """A DNN execution environment.

    Attributes
    ----------
    name:
        Backend name (``"keras"``, ``"pytorch"``, ``"tensorrt"``).
    efficiency:
        Throughput relative to the optimized compiler (TensorRT = 1.0).
    optimal_batch_size:
        Batch size at which the paper measured the backend's best throughput.
    supports_onnx:
        Whether the backend ingests ONNX-like graphs directly.
    """

    name: str
    efficiency: float
    optimal_batch_size: int
    supports_onnx: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.efficiency <= 1.0:
            raise HardwareError("efficiency must be in (0, 1]")
        if self.optimal_batch_size <= 0:
            raise HardwareError("batch size must be positive")

    def batch_efficiency(self, batch_size: int) -> float:
        """Efficiency discount for running at a non-optimal batch size.

        Smaller batches underutilize the accelerator; larger batches give no
        extra benefit but also little harm.  The discount is mild and smooth.
        """
        if batch_size <= 0:
            raise HardwareError("batch size must be positive")
        if batch_size >= self.optimal_batch_size:
            return 1.0
        return 0.55 + 0.45 * batch_size / self.optimal_batch_size


_TENSORRT_THROUGHPUT = cal.RESNET50_T4_BY_BACKEND["tensorrt"]

_BACKENDS: dict[str, ExecutionBackend] = {
    name: ExecutionBackend(
        name=name,
        efficiency=throughput / _TENSORRT_THROUGHPUT,
        optimal_batch_size=cal.BACKEND_OPTIMAL_BATCH[name],
        supports_onnx=name != "keras",
    )
    for name, throughput in cal.RESNET50_T4_BY_BACKEND.items()
}


def get_backend(name: str) -> ExecutionBackend:
    """Look up an execution backend by name."""
    key = name.lower()
    if key not in _BACKENDS:
        raise HardwareError(
            f"unknown backend {name!r}; known: {sorted(_BACKENDS)}"
        )
    return _BACKENDS[key]


def list_backends() -> list[ExecutionBackend]:
    """All backends ordered from least to most efficient."""
    return sorted(_BACKENDS.values(), key=lambda b: b.efficiency)
