"""Buffer pools with reuse and pinned-memory accounting.

Unlike training data loaders (which must hand freshly allocated buffers to the
caller), an inference engine only needs to return predictions, so Smol reuses
preprocessed-image buffers between batches and keeps them pinned for fast
copies to the accelerator (Section 6.1 and Appendix A).  The pools below
implement that reuse and track the statistics the systems-optimization
benchmarks (Figures 7 and 8) report: allocations avoided, bytes pinned, and
copy-speed factors.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.errors import BufferPoolExhaustedError, EngineError

# Pinned (page-locked) host memory roughly doubles host-to-device copy
# bandwidth compared to pageable memory; this factor feeds the perf model.
PINNED_COPY_SPEEDUP = 2.0


@dataclass
class MemoryStats:
    """Counters describing pool behaviour during a run."""

    allocations: int = 0
    reuses: int = 0
    bytes_allocated: int = 0
    bytes_pinned: int = 0
    peak_outstanding: int = 0
    outstanding: int = field(default=0, repr=False)

    @property
    def reuse_fraction(self) -> float:
        """Fraction of buffer requests served without a new allocation."""
        total = self.allocations + self.reuses
        return self.reuses / total if total else 0.0


class BufferPool:
    """A pool of reusable fixed-shape numpy buffers.

    When reuse is disabled (``reuse=False``) the pool degenerates to plain
    allocation, which is the "- mem reuse" lesion condition.
    """

    def __init__(self, shape: tuple[int, ...], dtype: str = "float32",
                 max_buffers: int = 64, reuse: bool = True) -> None:
        if max_buffers <= 0:
            raise EngineError("max_buffers must be positive")
        self._shape = tuple(shape)
        self._dtype = np.dtype(dtype)
        self._max_buffers = max_buffers
        self._reuse = reuse
        self._free: list[np.ndarray] = []
        self._lock = threading.Lock()
        self.stats = MemoryStats()

    @property
    def buffer_nbytes(self) -> int:
        """Size in bytes of one buffer."""
        return int(np.prod(self._shape)) * self._dtype.itemsize

    def acquire(self) -> np.ndarray:
        """Get a buffer, reusing a released one when possible."""
        with self._lock:
            if self._reuse and self._free:
                buffer = self._free.pop()
                self.stats.reuses += 1
            else:
                if self.stats.outstanding >= self._max_buffers:
                    raise BufferPoolExhaustedError(
                        f"pool exhausted: {self._max_buffers} buffers outstanding"
                    )
                buffer = np.empty(self._shape, dtype=self._dtype)
                self.stats.allocations += 1
                self.stats.bytes_allocated += self.buffer_nbytes
            self.stats.outstanding += 1
            self.stats.peak_outstanding = max(
                self.stats.peak_outstanding, self.stats.outstanding
            )
            return buffer

    def release(self, buffer: np.ndarray) -> None:
        """Return a buffer to the pool."""
        if buffer.shape != self._shape or buffer.dtype != self._dtype:
            raise EngineError(
                "released buffer does not match the pool's shape/dtype"
            )
        with self._lock:
            self.stats.outstanding = max(0, self.stats.outstanding - 1)
            if self._reuse and len(self._free) < self._max_buffers:
                self._free.append(buffer)


class PinnedBufferPool(BufferPool):
    """A buffer pool whose buffers model pinned (page-locked) host memory.

    There is no real pinning in numpy; the pool tracks pinned bytes and
    exposes the copy-speed factor the performance model applies to
    host-to-device transfers.
    """

    def __init__(self, shape: tuple[int, ...], dtype: str = "float32",
                 max_buffers: int = 64, reuse: bool = True,
                 pinned: bool = True) -> None:
        super().__init__(shape=shape, dtype=dtype, max_buffers=max_buffers,
                         reuse=reuse)
        self._pinned = pinned

    @property
    def pinned(self) -> bool:
        """Whether buffers are (modelled as) page-locked."""
        return self._pinned

    @property
    def copy_speedup(self) -> float:
        """Host-to-device copy speedup factor for these buffers."""
        return PINNED_COPY_SPEEDUP if self._pinned else 1.0

    def acquire(self) -> np.ndarray:
        buffer = super().acquire()
        if self._pinned:
            self.stats.bytes_pinned = max(
                self.stats.bytes_pinned,
                self.stats.outstanding * self.buffer_nbytes,
            )
        return buffer
