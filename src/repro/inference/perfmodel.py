"""Calibrated per-stage cost models for preprocessing and DNN execution.

The performance model answers two questions for a candidate plan on a given
instance and engine configuration:

* what is the CPU-side preprocessing throughput (decode + resize + normalize +
  layout, with Smol's engine and DAG optimizations applied)?
* what is the accelerator-side throughput (DNN execution plus any preprocessing
  operators placed on the accelerator, plus host-to-device copies)?

The absolute levels are anchored to the paper's measurements (see
:mod:`repro.hardware.calibration`); the structure (how costs scale with
resolution, quality, ROI fraction, vCPU count, and engine optimizations) is
modelled so that lesion/factor analyses and scaling studies reproduce the
paper's shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.codecs.formats import InputFormatSpec
from repro.errors import EngineError
from repro.hardware import calibration as cal
from repro.hardware.devices import CpuSpec, GpuSpec
from repro.hardware.instance import CloudInstance
from repro.inference.backends import ExecutionBackend, get_backend
from repro.inference.memory import PINNED_COPY_SPEEDUP
from repro.nn.zoo import ModelProfile

# Per-image preprocessing stage fractions measured in Figure 1 (decode
# dominates, then resize, normalize, and the channel split/copy).
STAGE_FRACTIONS = {"decode": 0.82, "resize": 0.10, "normalize": 0.06, "split": 0.02}

# Engine-optimization penalty factors (multiplicative throughput loss when an
# optimization is disabled), calibrated to the spreads in Figures 7 and 8.
THREADING_OFF_PENALTY = 2.9      # no thread pool: a single producer thread
MEM_REUSE_OFF_PENALTY = 1.35     # allocate fresh buffers for every image
PINNED_OFF_PENALTY = 1.22        # pageable host-to-device copies
DAG_OFF_PENALTY_FULL = 1.18      # unoptimized operator order/fusion, full res
DAG_OFF_PENALTY_LOWRES = 1.45    # DAG optimization matters more at low res

# Host-to-device copy cost per megabyte of pinned memory, in microseconds.
COPY_US_PER_MB_PINNED = 85.0


@dataclass(frozen=True)
class EngineConfig:
    """Runtime engine configuration (the knobs of Figures 7 and 8).

    Attributes
    ----------
    num_producers:
        Preprocessing worker threads; Smol's heuristic sets this to the vCPU
        count on non-NUMA servers.
    num_streams:
        Accelerator execution streams (CUDA streams).
    batch_size:
        DNN execution batch size.
    use_threading, reuse_buffers, pinned_memory, optimize_dag:
        The four systems optimizations studied in Figures 7 and 8.
    queue_capacity:
        Bounded MPMC queue capacity in batches.
    """

    num_producers: int = 4
    num_streams: int = 2
    batch_size: int = 64
    use_threading: bool = True
    reuse_buffers: bool = True
    pinned_memory: bool = True
    optimize_dag: bool = True
    queue_capacity: int = 8

    def __post_init__(self) -> None:
        if self.num_producers <= 0 or self.num_streams <= 0:
            raise EngineError("producers and streams must be positive")
        if self.batch_size <= 0 or self.queue_capacity <= 0:
            raise EngineError("batch size and queue capacity must be positive")

    def without(self, optimization: str) -> "EngineConfig":
        """Return a copy with one named optimization disabled (lesion study)."""
        mapping = {
            "threading": "use_threading",
            "mem-reuse": "reuse_buffers",
            "pinned": "pinned_memory",
            "dag": "optimize_dag",
        }
        if optimization not in mapping:
            raise EngineError(
                f"unknown optimization {optimization!r}; known: {sorted(mapping)}"
            )
        return replace(self, **{mapping[optimization]: False})

    @classmethod
    def all_disabled(cls, **kwargs) -> "EngineConfig":
        """Configuration with every systems optimization turned off."""
        return cls(use_threading=False, reuse_buffers=False,
                   pinned_memory=False, optimize_dag=False, **kwargs)


@dataclass(frozen=True)
class StageEstimate:
    """Per-stage throughput estimates for one plan on one configuration.

    Attributes
    ----------
    preprocessing_throughput:
        CPU-side preprocessing images/second (all producers combined).
    dnn_throughput:
        Accelerator-side images/second (DNN execution plus any offloaded
        preprocessing and the host-to-device copy).
    preprocessing_us_per_image:
        Single-thread per-image preprocessing latency broken down by stage.
    dnn_us_per_image:
        Per-image accelerator latency.
    """

    preprocessing_throughput: float
    dnn_throughput: float
    preprocessing_us_per_image: dict[str, float] = field(default_factory=dict)
    dnn_us_per_image: float = 0.0

    @property
    def bottleneck(self) -> str:
        """Which side limits pipelined throughput."""
        if self.preprocessing_throughput <= self.dnn_throughput:
            return "preprocessing"
        return "dnn"

    @property
    def pipelined_upper_bound(self) -> float:
        """The min() of the two stage throughputs (Smol's cost model)."""
        return min(self.preprocessing_throughput, self.dnn_throughput)

    def observed_stage_seconds(self) -> dict[str, float]:
        """Aggregate per-image seconds by coarse runtime stage.

        This is the shape runtime telemetry reports in (see
        :mod:`repro.adapt.telemetry`): ``decode`` and ``preprocess``
        partition the aggregate CPU-side per-image time (``1 /
        preprocessing_throughput``) by the calibrated stage shares, and
        ``inference`` is the accelerator-side per-image time.  Sessions
        that report these exact values produce observed/modelled cost
        ratios of exactly 1.0, so a drift-free system calibrates to the
        identity.
        """
        preprocess_per_image = 1.0 / self.preprocessing_throughput
        total_us = sum(self.preprocessing_us_per_image.values())
        decode_share = (self.preprocessing_us_per_image.get("decode", 0.0)
                        / total_us if total_us > 0 else 0.0)
        decode = preprocess_per_image * decode_share
        return {
            "decode": decode,
            "preprocess": preprocess_per_image - decode,
            "inference": 1.0 / self.dnn_throughput,
        }


class PreprocessingCostModel:
    """CPU preprocessing cost model calibrated to Section 2 / 5.2."""

    def __init__(self, cpu: CpuSpec) -> None:
        self._cpu = cpu

    def base_throughput_4vcpu(self, fmt: InputFormatSpec) -> float:
        """Calibrated preprocessing throughput of ``fmt`` on 4 vCPUs."""
        if fmt.name in cal.PREPROC_THROUGHPUT_4VCPU:
            return cal.PREPROC_THROUGHPUT_4VCPU[fmt.name]
        if fmt.is_video:
            # Video decode cost scales with pixel count relative to 1080p,
            # anchored to the full-resolution image rate (decode dominates).
            full_rate = cal.PREPROC_THROUGHPUT_4VCPU["full-jpeg"]
            pixels_1080p = 1920 * 1080
            scale = pixels_1080p / fmt.resolution.pixels
            return full_rate * 0.55 * scale
        # Unknown image format: scale the nearest calibrated anchor by pixel
        # count and a lossless/lossy factor.
        anchor = cal.PREPROC_THROUGHPUT_4VCPU["161-png" if fmt.lossless
                                               else "161-jpeg-q95"]
        anchor_pixels = 161 * 161 * (4.0 / 3.0)
        return anchor * anchor_pixels / fmt.resolution.pixels

    def per_image_us(self, fmt: InputFormatSpec, roi_fraction: float = 1.0,
                     dag_optimized: bool = True,
                     deblocking: bool = True) -> dict[str, float]:
        """Single-producer per-image stage latencies in microseconds."""
        if not 0 < roi_fraction <= 1.0:
            raise EngineError("roi_fraction must be in (0, 1]")
        base_tp = self.base_throughput_4vcpu(fmt)
        four_vcpu_parallelism = self._cpu.effective_parallelism(4)
        per_image_total = four_vcpu_parallelism * 1e6 / base_tp
        stages = {
            stage: per_image_total * fraction
            for stage, fraction in STAGE_FRACTIONS.items()
        }
        # ROI / partial decoding reduces only the decode stage; lossless
        # raster formats (early stopping) save proportionally fewer blocks
        # because rows above the ROI must still be decoded.
        capability = fmt.capability
        if roi_fraction < 1.0 and capability.supports_roi():
            if capability.partial_decoding:
                stages["decode"] *= roi_fraction
            else:
                stages["decode"] *= min(1.0, roi_fraction + 0.35)
            stages["resize"] *= roi_fraction
            stages["normalize"] *= roi_fraction
        if not deblocking and capability.reduced_fidelity:
            stages["decode"] *= 0.80
        if not dag_optimized:
            penalty = (DAG_OFF_PENALTY_FULL if fmt.is_full_resolution
                       else DAG_OFF_PENALTY_LOWRES)
            for stage in ("resize", "normalize", "split"):
                stages[stage] *= penalty
            stages["decode"] *= 1.0 + (penalty - 1.0) * 0.25
        return stages

    def throughput(self, fmt: InputFormatSpec, config: EngineConfig,
                   roi_fraction: float = 1.0, deblocking: bool = True,
                   cpu_op_fraction: float = 1.0) -> float:
        """Aggregate CPU preprocessing throughput under ``config``.

        ``cpu_op_fraction`` is the fraction of post-decode preprocessing work
        left on the CPU after operator placement (1.0 = everything on CPU).
        """
        stages = self.per_image_us(fmt, roi_fraction=roi_fraction,
                                   dag_optimized=config.optimize_dag,
                                   deblocking=deblocking)
        decode_us = stages["decode"]
        other_us = sum(v for k, v in stages.items() if k != "decode")
        per_image = decode_us + other_us * cpu_op_fraction
        parallelism = (
            self._cpu.effective_parallelism(config.num_producers)
            if config.use_threading
            else 1.0
        )
        throughput = parallelism * 1e6 / per_image
        if not config.reuse_buffers:
            throughput /= MEM_REUSE_OFF_PENALTY
        return throughput


class DnnCostModel:
    """Accelerator-side cost model: DNN execution, offloaded ops, and copies."""

    def __init__(self, gpu: GpuSpec, backend: ExecutionBackend | str = "tensorrt") -> None:
        self._gpu = gpu
        self._backend = (get_backend(backend) if isinstance(backend, str)
                         else backend)

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend in use."""
        return self._backend

    def execution_throughput(self, model: ModelProfile,
                             batch_size: int = 64) -> float:
        """DNN graph execution throughput on this GPU and backend."""
        efficiency = self._backend.efficiency * self._backend.batch_efficiency(
            batch_size
        )
        return model.throughput_on(self._gpu, backend_efficiency=efficiency)

    def copy_us_per_image(self, input_size: int, pinned: bool) -> float:
        """Host-to-device copy latency per image (float32 CHW tensor)."""
        nbytes = 3 * input_size * input_size * 4
        megabytes = nbytes / 1e6
        base = COPY_US_PER_MB_PINNED * megabytes
        return base if pinned else base * PINNED_COPY_SPEEDUP

    def offloaded_preproc_us(self, offloaded_fraction: float,
                             input_size: int) -> float:
        """Accelerator time for preprocessing operators moved to the GPU.

        Resize/normalize-style operators map well onto accelerators, so the
        cost per image is small relative to DNN execution: proportional to
        the tensor size with a fixed kernel-launch overhead.
        """
        if not 0.0 <= offloaded_fraction <= 1.0:
            raise EngineError("offloaded_fraction must be in [0, 1]")
        if offloaded_fraction == 0.0:
            return 0.0
        elements = 3 * input_size * input_size
        per_element_us = 4.0e-4 * (cal.RESNET_T4_THROUGHPUT[50]
                                   / self._gpu.resnet50_throughput)
        launch_overhead_us = 4.0
        return offloaded_fraction * (elements * per_element_us / 1000.0
                                     + launch_overhead_us)

    def throughput(self, model: ModelProfile, config: EngineConfig,
                   offloaded_fraction: float = 0.0) -> float:
        """Aggregate accelerator throughput (execution + copies + offloads)."""
        exec_us = 1e6 / self.execution_throughput(model, config.batch_size)
        copy_us = self.copy_us_per_image(model.input_size, config.pinned_memory)
        offload_us = self.offloaded_preproc_us(offloaded_fraction,
                                               model.input_size)
        per_image = exec_us + copy_us + offload_us
        # Multiple streams overlap copies with execution; with two or more
        # streams most of the copy latency hides behind execution.
        if config.num_streams >= 2:
            per_image = exec_us + offload_us + copy_us * 0.25
        return 1e6 / per_image


class PerformanceModel:
    """End-to-end per-plan performance estimates on one cloud instance."""

    def __init__(self, instance: CloudInstance,
                 backend: ExecutionBackend | str = "tensorrt") -> None:
        self._instance = instance
        self._preproc = PreprocessingCostModel(instance.cpu)
        self._dnn = DnnCostModel(instance.gpu, backend)

    @property
    def instance(self) -> CloudInstance:
        """The instance this model describes."""
        return self._instance

    @property
    def preprocessing_model(self) -> PreprocessingCostModel:
        """The CPU-side cost model."""
        return self._preproc

    @property
    def dnn_model(self) -> DnnCostModel:
        """The accelerator-side cost model."""
        return self._dnn

    def estimate(self, model: ModelProfile, fmt: InputFormatSpec,
                 config: EngineConfig, roi_fraction: float = 1.0,
                 offloaded_fraction: float = 0.0,
                 deblocking: bool = True) -> StageEstimate:
        """Per-stage estimates for one (DNN, format) plan under ``config``."""
        cpu_tp = self._preproc.throughput(
            fmt, config, roi_fraction=roi_fraction, deblocking=deblocking,
            cpu_op_fraction=1.0 - offloaded_fraction,
        )
        dnn_tp = self._dnn.throughput(model, config,
                                      offloaded_fraction=offloaded_fraction)
        stages_us = self._preproc.per_image_us(
            fmt, roi_fraction=roi_fraction,
            dag_optimized=config.optimize_dag, deblocking=deblocking,
        )
        return StageEstimate(
            preprocessing_throughput=cpu_tp,
            dnn_throughput=dnn_tp,
            preprocessing_us_per_image=stages_us,
            dnn_us_per_image=1e6 / dnn_tp,
        )

    def best_offload_fraction(self, model: ModelProfile, fmt: InputFormatSpec,
                              config: EngineConfig,
                              roi_fraction: float = 1.0) -> float:
        """Pick the operator-placement split maximizing pipelined throughput.

        Preprocessing operators form a short chain, so only a few candidate
        fractions need to be evaluated (Section 6.3).
        """
        candidates = (0.0, 0.25, 0.5, 0.75, 1.0)
        best_fraction = 0.0
        best_throughput = -1.0
        for fraction in candidates:
            estimate = self.estimate(model, fmt, config,
                                     roi_fraction=roi_fraction,
                                     offloaded_fraction=fraction)
            if estimate.pipelined_upper_bound > best_throughput:
                best_throughput = estimate.pipelined_upper_bound
                best_fraction = fraction
        return best_fraction
