"""Event-driven simulation of the pipelined producer/consumer runtime.

The analytic cost model predicts pipelined throughput as the ``min`` of the
stage throughputs.  To *measure* pipelined throughput (the way the paper's
experimental harness does), this module runs a discrete-event simulation of
the actual pipeline structure: N producer threads preprocess images with
per-image costs (with deterministic per-image variation), push them into a
bounded queue, and C accelerator streams drain the queue in batches.  Queue
blocking, batch formation, and pipeline fill/drain produce the realistic
overheads versus the ``min`` bound that Section 8.2 reports (roughly 16% under
full load, a few percent otherwise).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import EngineError
from repro.inference.perfmodel import EngineConfig, StageEstimate
from repro.utils.rng import deterministic_rng


@dataclass(frozen=True)
class PipelineRunStats:
    """Results of one simulated pipelined run.

    Attributes
    ----------
    num_images:
        Number of images processed.
    elapsed_us:
        Simulated makespan in microseconds.
    throughput:
        End-to-end images/second.
    producer_busy_us, consumer_busy_us:
        Total busy time across producers / consumer streams.
    producer_utilization, consumer_utilization:
        Busy fraction of each side over the makespan.
    queue_full_stalls:
        Number of producer stalls caused by a full queue.
    """

    num_images: int
    elapsed_us: float
    throughput: float
    producer_busy_us: float
    consumer_busy_us: float
    producer_utilization: float
    consumer_utilization: float
    queue_full_stalls: int


class PipelineSimulator:
    """Simulates the MPMC-pipelined engine for a given stage estimate."""

    def __init__(self, config: EngineConfig, jitter: float = 0.18,
                 seed: int = 0) -> None:
        if not 0.0 <= jitter < 1.0:
            raise EngineError("jitter must be in [0, 1)")
        self._config = config
        self._jitter = jitter
        self._seed = seed

    def run(self, estimate: StageEstimate, num_images: int = 4096) -> PipelineRunStats:
        """Simulate processing ``num_images`` images under ``estimate``."""
        if num_images <= 0:
            raise EngineError("num_images must be positive")
        config = self._config
        producers = config.num_producers if config.use_threading else 1
        streams = config.num_streams
        batch_size = config.batch_size
        queue_capacity_items = config.queue_capacity * batch_size

        # Per-image CPU cost: total producer-side microseconds divided across
        # the producers is implied by the aggregate throughput estimate.
        # Streams share one accelerator, so each stream's per-image cost is
        # scaled by the stream count to keep the aggregate device rate equal
        # to the estimated DNN throughput.
        producer_us_per_image = producers * 1e6 / estimate.preprocessing_throughput
        consumer_us_per_image = streams * 1e6 / estimate.dnn_throughput
        batch_us = consumer_us_per_image * batch_size

        rng = deterministic_rng("pipeline-sim", self._seed)
        # Deterministic per-image cost variation: image sizes and content vary.
        image_costs = producer_us_per_image * (
            1.0 + self._jitter * (rng.random(num_images) * 2.0 - 1.0)
        )

        producer_free_at = np.zeros(producers)
        stream_free_at = np.zeros(streams)
        queue_times: list[float] = []   # completion time of each queued image
        queue_depth = 0
        consumed = 0
        next_image = 0
        queue_full_stalls = 0
        producer_busy = 0.0
        consumer_busy = 0.0
        finish_time = 0.0

        # Event loop: alternate between scheduling producer work and draining
        # full batches onto free streams.  Simple greedy scheduling suffices
        # because both sides are homogeneous.
        ready_heap: list[float] = []  # times at which images become available
        while consumed < num_images:
            progressed = False
            # Producers pick up work when the queue has room.
            while next_image < num_images:
                producer_index = int(np.argmin(producer_free_at))
                start = producer_free_at[producer_index]
                if queue_depth >= queue_capacity_items:
                    # Queue full: the producer must wait for a batch to drain.
                    break
                cost = float(image_costs[next_image])
                done = start + cost
                producer_free_at[producer_index] = done
                producer_busy += cost
                heapq.heappush(ready_heap, done)
                queue_depth += 1
                next_image += 1
                progressed = True
            # Consumers drain a batch when one is ready.
            remaining = num_images - consumed
            batch_needed = min(batch_size, remaining)
            if len(ready_heap) >= batch_needed and batch_needed > 0:
                batch_ready_time = 0.0
                for _ in range(batch_needed):
                    batch_ready_time = max(batch_ready_time, heapq.heappop(ready_heap))
                stream_index = int(np.argmin(stream_free_at))
                start = max(stream_free_at[stream_index], batch_ready_time)
                cost = batch_us * batch_needed / batch_size
                done = start + cost
                stream_free_at[stream_index] = done
                consumer_busy += cost
                consumed += batch_needed
                queue_depth -= batch_needed
                finish_time = max(finish_time, done)
                progressed = True
            elif next_image >= num_images and ready_heap:
                # Drain a final partial batch.
                continue
            if not progressed:
                if queue_depth >= queue_capacity_items:
                    queue_full_stalls += 1
                    # Advance the blocked producer to when the earliest stream
                    # finishes, freeing queue space.
                    earliest_stream = float(np.min(stream_free_at))
                    blocked = int(np.argmin(producer_free_at))
                    producer_free_at[blocked] = max(
                        producer_free_at[blocked], earliest_stream
                    )
                else:
                    raise EngineError("pipeline simulation deadlocked")

        elapsed = max(finish_time, float(np.max(producer_free_at)))
        if elapsed <= 0:
            raise EngineError("simulation produced a non-positive makespan")
        return PipelineRunStats(
            num_images=num_images,
            elapsed_us=elapsed,
            throughput=num_images * 1e6 / elapsed,
            producer_busy_us=producer_busy,
            consumer_busy_us=consumer_busy,
            producer_utilization=producer_busy / (elapsed * producers),
            consumer_utilization=consumer_busy / (elapsed * streams),
            queue_full_stalls=queue_full_stalls,
        )

    def measured_throughput(self, estimate: StageEstimate,
                            num_images: int = 4096) -> float:
        """Convenience wrapper returning just the simulated throughput."""
        return self.run(estimate, num_images=num_images).throughput

    def measured_stage_throughputs(
        self, estimate: StageEstimate, num_images: int = 2048
    ) -> dict[str, float]:
        """Measure each stage in isolation plus the pipelined whole.

        Mirrors the Section 8.2 experiment: preprocessing only, DNN execution
        only, and the pipelined end-to-end run.  Isolated stage measurements
        incur a small harness overhead because the measurement harness is
        built for pipelined execution (the paper's footnote 1).
        """
        harness_overhead = 0.97
        pipelined = self.measured_throughput(estimate, num_images=num_images)
        return {
            "preprocessing": estimate.preprocessing_throughput * harness_overhead,
            "dnn": estimate.dnn_throughput * harness_overhead,
            "pipelined": pipelined,
        }
