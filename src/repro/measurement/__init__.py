"""The Section 2 measurement study and the Section 7 power/cost analysis.

These modules reproduce the paper's motivating measurements: the breakdown of
end-to-end DNN inference into preprocessing and execution (Figure 1), the
effect of the execution backend (Table 1), the hardware trend across GPU
generations (Table 5), and the dollar/power asymmetry between preprocessing
and DNN execution (Section 7, Table 8).
"""

from repro.measurement.study import (
    MeasurementStudy,
    InferenceBreakdown,
    BackendComparison,
)
from repro.measurement.costs import CostAnalysis, CostBreakdown

__all__ = [
    "MeasurementStudy",
    "InferenceBreakdown",
    "BackendComparison",
    "CostAnalysis",
    "CostBreakdown",
]
