"""Dollar-cost and power analysis (Section 7 and Table 8).

Two analyses:

* the asymmetry between preprocessing and DNN execution: the vCPUs (hence
  dollars and watts) needed to keep an accelerator fed exceed the cost of the
  accelerator itself for modern inference-optimized GPUs;
* the cost per million images of reaching a target accuracy with and without
  Smol's optimizations, as the vCPU count of the instance scales.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codecs.formats import FULL_JPEG, THUMB_PNG_161, InputFormatSpec
from repro.errors import HardwareError
from repro.hardware.instance import CloudInstance, get_instance
from repro.hardware.power import PowerModel
from repro.inference.perfmodel import EngineConfig, PerformanceModel
from repro.nn.zoo import ModelProfile, get_model_profile


@dataclass(frozen=True)
class CostBreakdown:
    """Dollar and power comparison of preprocessing vs DNN execution."""

    model_name: str
    dnn_throughput: float
    preproc_vcpus_needed: float
    preproc_usd_per_hour: float
    dnn_usd_per_hour: float
    preproc_watts: float
    dnn_watts: float

    @property
    def cost_ratio(self) -> float:
        """Preprocessing dollars per DNN-execution dollar."""
        return self.preproc_usd_per_hour / self.dnn_usd_per_hour

    @property
    def power_ratio(self) -> float:
        """Preprocessing watts per DNN-execution watt."""
        return self.preproc_watts / self.dnn_watts


@dataclass(frozen=True)
class ScalingPoint:
    """Throughput and per-image cost at one vCPU count (Table 8 rows)."""

    condition: str
    vcpus: int
    throughput: float
    cents_per_million_images: float


class CostAnalysis:
    """Computes the Section 7 and Table 8 analyses."""

    def __init__(self, instance: CloudInstance | str = "g4dn.xlarge") -> None:
        if isinstance(instance, str):
            instance = get_instance(instance)
        self._instance = instance

    def preprocessing_vs_execution(self, model_name: str = "resnet-50",
                                   fmt: InputFormatSpec = FULL_JPEG) -> CostBreakdown:
        """How much the CPU side costs to keep the accelerator busy."""
        model = get_model_profile(model_name)
        perf = PerformanceModel(self._instance)
        config = EngineConfig(num_producers=self._instance.vcpus)
        dnn_throughput = perf.dnn_model.execution_throughput(model,
                                                             config.batch_size)
        # Per-vCPU preprocessing rate for the format (single hyperthread).
        preproc_4vcpu = perf.preprocessing_model.base_throughput_4vcpu(fmt)
        per_vcpu = preproc_4vcpu / self._instance.cpu.effective_parallelism(4)
        power_model = PowerModel(self._instance.cpu, self._instance.gpu)
        breakdown = power_model.breakdown(per_vcpu, dnn_throughput)
        costs = power_model.hourly_cost_breakdown(per_vcpu, dnn_throughput)
        return CostBreakdown(
            model_name=model.name,
            dnn_throughput=dnn_throughput,
            preproc_vcpus_needed=breakdown.preproc_vcpus,
            preproc_usd_per_hour=costs["preproc_usd_per_hour"],
            dnn_usd_per_hour=costs["dnn_usd_per_hour"],
            preproc_watts=breakdown.preproc_watts,
            dnn_watts=breakdown.dnn_watts,
        )

    def accuracy_target_scaling(
        self, vcpu_counts: tuple[int, ...] = (4, 8, 16),
        model: ModelProfile | None = None,
    ) -> list[ScalingPoint]:
        """Table 8: reaching 75% ImageNet accuracy with and without Smol.

        The optimized condition reads 161-pixel PNG thumbnails with the
        low-resolution-trained ResNet-50 and all engine optimizations; the
        unoptimized condition decodes full-resolution JPEGs with a plain
        runtime (no DAG optimization, no buffer reuse).
        """
        if model is None:
            model = get_model_profile("resnet-50")
        points: list[ScalingPoint] = []
        for vcpus in vcpu_counts:
            if vcpus <= 0:
                raise HardwareError("vCPU counts must be positive")
            instance = self._instance.with_vcpus(vcpus)
            perf = PerformanceModel(instance)
            optimized_config = EngineConfig(num_producers=vcpus)
            unoptimized_config = EngineConfig(
                num_producers=vcpus, optimize_dag=False,
                reuse_buffers=False, pinned_memory=False,
            )
            optimized = perf.estimate(model, THUMB_PNG_161, optimized_config,
                                      roi_fraction=1.0)
            unoptimized = perf.estimate(model, FULL_JPEG, unoptimized_config)
            for condition, estimate in (("opt", optimized), ("no-opt", unoptimized)):
                throughput = estimate.pipelined_upper_bound
                points.append(ScalingPoint(
                    condition=condition,
                    vcpus=vcpus,
                    throughput=throughput,
                    cents_per_million_images=instance.price_per_million_images(
                        throughput
                    ),
                ))
        return points
