"""Measurement study of end-to-end DNN inference (Section 2).

The study isolates preprocessing from DNN execution on the configured
instance, mirroring the paper's methodology: DNN execution is measured on
synthetic (already-preprocessed) inputs, preprocessing is measured alone
across all vCPU cores, and the two are compared per model and per backend.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codecs.formats import FULL_JPEG, InputFormatSpec
from repro.hardware import calibration as cal
from repro.hardware.devices import get_gpu, list_gpus
from repro.hardware.instance import CloudInstance, get_instance
from repro.inference.backends import list_backends
from repro.inference.perfmodel import EngineConfig, PerformanceModel
from repro.nn.zoo import get_model_profile


@dataclass(frozen=True)
class InferenceBreakdown:
    """Per-image breakdown of end-to-end inference for one model (Figure 1)."""

    model_name: str
    dnn_execution_us: float
    preprocessing_us: dict[str, float]

    @property
    def preprocessing_total_us(self) -> float:
        """Total single-thread preprocessing time per image."""
        return sum(self.preprocessing_us.values())

    @property
    def preprocessing_slowdown(self) -> float:
        """How many times slower preprocessing is than DNN execution.

        Computed from aggregate throughputs: preprocessing parallelized over
        the instance's vCPUs versus DNN execution on the accelerator.
        """
        return self.preprocessing_total_us / self.dnn_execution_us


@dataclass(frozen=True)
class BackendComparison:
    """Throughput of one model under one execution backend (Table 1)."""

    backend_name: str
    batch_size: int
    throughput: float


class MeasurementStudy:
    """Reproduces the Section 2 measurements on a configured instance."""

    def __init__(self, instance: CloudInstance | str = "g4dn.xlarge") -> None:
        if isinstance(instance, str):
            instance = get_instance(instance)
        self._instance = instance
        self._config = EngineConfig(num_producers=instance.vcpus)

    @property
    def instance(self) -> CloudInstance:
        """The measured instance."""
        return self._instance

    def backend_comparison(self, model_name: str = "resnet-50") -> list[BackendComparison]:
        """Table 1: the same model under Keras-, PyTorch- and TensorRT-like backends."""
        model = get_model_profile(model_name)
        rows = []
        for backend in list_backends():
            perf = PerformanceModel(self._instance, backend=backend.name)
            throughput = perf.dnn_model.execution_throughput(
                model, batch_size=backend.optimal_batch_size
            )
            rows.append(BackendComparison(
                backend_name=backend.name,
                batch_size=backend.optimal_batch_size,
                throughput=throughput,
            ))
        return sorted(rows, key=lambda r: r.throughput)

    def inference_breakdown(self, model_name: str,
                            fmt: InputFormatSpec = FULL_JPEG) -> InferenceBreakdown:
        """Figure 1: per-image stage latencies for one model on one format."""
        model = get_model_profile(model_name)
        perf = PerformanceModel(self._instance)
        estimate = perf.estimate(model, fmt, self._config)
        return InferenceBreakdown(
            model_name=model.name,
            dnn_execution_us=estimate.dnn_us_per_image,
            preprocessing_us=dict(estimate.preprocessing_us_per_image),
        )

    def preprocessing_vs_execution(self, model_name: str,
                                   fmt: InputFormatSpec = FULL_JPEG) -> dict[str, float]:
        """Aggregate throughput comparison for one model and one format."""
        model = get_model_profile(model_name)
        perf = PerformanceModel(self._instance)
        estimate = perf.estimate(model, fmt, self._config)
        return {
            "preprocessing_throughput": estimate.preprocessing_throughput,
            "dnn_throughput": estimate.dnn_throughput,
            "ratio": estimate.dnn_throughput / estimate.preprocessing_throughput,
        }

    def gpu_generation_trend(self, model_name: str = "resnet-50") -> list[dict]:
        """Table 5: the model's throughput across GPU generations."""
        model = get_model_profile(model_name)
        rows = []
        for gpu in list_gpus():
            rows.append({
                "gpu": gpu.name,
                "release_year": gpu.release_year,
                "throughput": model.throughput_on(gpu),
            })
        return rows

    def resnet_depth_tradeoff(self) -> list[dict]:
        """Table 2: accuracy/throughput trade-off across ResNet depths."""
        rows = []
        for depth in (18, 34, 50):
            model = get_model_profile(f"resnet-{depth}")
            rows.append({
                "model": model.name,
                "throughput": model.throughput_on(get_gpu("T4")),
                "top1_accuracy": cal.RESNET_IMAGENET_TOP1[depth],
            })
        return rows

    def mobilenet_ssd_gap(self) -> dict[str, float]:
        """The MobileNet-SSD execution vs preprocessing gap quoted in Section 2."""
        model = get_model_profile("mobilenet-ssd")
        return {
            "dnn_throughput": model.throughput_on(get_gpu("T4")),
            "preprocessing_throughput": cal.MOBILENET_SSD_PREPROC_THROUGHPUT,
            "ratio": (model.throughput_on(get_gpu("T4"))
                      / cal.MOBILENET_SSD_PREPROC_THROUGHPUT),
        }
