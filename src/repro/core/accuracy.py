"""Accuracy estimation for candidate plans.

Accuracy is estimated on a held-out validation (calibration) set, following
standard practice (Section 4).  Two sources are supported:

* **measured** -- when the caller provides a trained numpy model and a
  validation set, accuracy is measured directly;
* **calibrated** -- for the paper's standard ResNets on the paper's datasets,
  the accuracy surface is interpolated from the calibration anchors (Tables 2
  and 7), with dataset difficulty scaling so easy binary tasks saturate near
  100% while ImageNet-like tasks track the published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codecs.formats import InputFormatSpec
from repro.errors import PlanError
from repro.hardware import calibration as cal
from repro.nn.zoo import ModelProfile

# Dataset difficulty: the accuracy a ResNet-50 on full-resolution data reaches
# on each evaluation dataset (Section 8.3 / Figure 4 axis ranges).
DATASET_TOP_ACCURACY: dict[str, float] = {
    "imagenet": 0.7516,
    "birds-200": 0.762,
    "animals-10": 0.978,
    "bike-bird": 0.996,
}

# How strongly each dataset's accuracy responds to model capacity and input
# fidelity: 1.0 behaves exactly like ImageNet, 0.0 is insensitive (easy
# binary tasks lose almost nothing from low-resolution inputs).
DATASET_SENSITIVITY: dict[str, float] = {
    "imagenet": 1.0,
    "birds-200": 0.55,
    "animals-10": 0.18,
    "bike-bird": 0.05,
}


@dataclass(frozen=True)
class AccuracyEstimate:
    """An accuracy estimate with its provenance."""

    accuracy: float
    source: str  # "measured" or "calibrated"
    dataset: str

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy <= 1.0:
            raise PlanError("accuracy must be in [0, 1]")


class AccuracyEstimator:
    """Estimates plan accuracy for one dataset."""

    def __init__(self, dataset_name: str,
                 top_accuracy: float | None = None,
                 sensitivity: float | None = None) -> None:
        self._dataset = dataset_name
        if top_accuracy is None:
            if dataset_name not in DATASET_TOP_ACCURACY:
                raise PlanError(
                    f"unknown dataset {dataset_name!r}: provide top_accuracy"
                )
            top_accuracy = DATASET_TOP_ACCURACY[dataset_name]
        if sensitivity is None:
            sensitivity = DATASET_SENSITIVITY.get(dataset_name, 0.6)
        if not 0.0 <= top_accuracy <= 1.0:
            raise PlanError("top_accuracy must be in [0, 1]")
        if not 0.0 <= sensitivity <= 1.5:
            raise PlanError("sensitivity must be in [0, 1.5]")
        self._top_accuracy = top_accuracy
        self._sensitivity = sensitivity

    @property
    def dataset(self) -> str:
        """The dataset this estimator describes."""
        return self._dataset

    def measured(self, predictions: np.ndarray,
                 labels: np.ndarray) -> AccuracyEstimate:
        """Accuracy measured on a validation set."""
        if predictions.shape != labels.shape:
            raise PlanError("predictions and labels must have the same shape")
        if predictions.size == 0:
            raise PlanError("cannot estimate accuracy from an empty set")
        accuracy = float((predictions == labels).mean())
        return AccuracyEstimate(accuracy=accuracy, source="measured",
                                dataset=self._dataset)

    def calibrated(self, model: ModelProfile, fmt: InputFormatSpec,
                   training: str = "regular",
                   accuracy_factor: float = 1.0) -> AccuracyEstimate:
        """Calibrated accuracy of ``model`` on ``fmt`` under ``training``.

        The ImageNet accuracy surface (Table 7) is mapped onto this dataset
        by scaling deviations from the ResNet-50/full-resolution reference by
        the dataset's sensitivity.  ``accuracy_factor`` lets specialized NNs
        express their reduced discriminative power.
        """
        imagenet_accuracy = self._imagenet_surface(model, fmt, training)
        reference = cal.TABLE7_ACCURACY[("full", 50, "regular")]
        delta = imagenet_accuracy - reference
        accuracy = self._top_accuracy + delta * self._sensitivity
        accuracy *= accuracy_factor
        accuracy = float(np.clip(accuracy, 1.0 / 1000.0, 0.999))
        return AccuracyEstimate(accuracy=accuracy, source="calibrated",
                                dataset=self._dataset)

    def _imagenet_surface(self, model: ModelProfile, fmt: InputFormatSpec,
                          training: str) -> float:
        """ImageNet accuracy of a model/format/training combination."""
        depth = _model_depth(model)
        format_key = _format_key(fmt)
        key = (format_key, depth, training)
        if key in cal.TABLE7_ACCURACY:
            return cal.TABLE7_ACCURACY[key]
        # Depths without a Table 7 entry (18, 101, 152): take the model's
        # full-resolution accuracy and apply the format/training penalty
        # measured for ResNet-34 (the closest calibrated depth).
        base = model.imagenet_top1
        if base is None:
            base = cal.RESNET_IMAGENET_TOP1[50]
        ref_full = cal.TABLE7_ACCURACY[("full", 34, "regular")]
        ref_key = (format_key, 34, training)
        if ref_key not in cal.TABLE7_ACCURACY:
            return base
        penalty = ref_full - cal.TABLE7_ACCURACY[ref_key]
        return max(0.0, base - penalty)


def _model_depth(model: ModelProfile) -> int:
    """Extract the ResNet depth from a profile name, defaulting to 50."""
    name = model.name.lower()
    if name.startswith("resnet-"):
        try:
            return int(name.split("-", 1)[1])
        except ValueError:
            return 50
    return 50


def _format_key(fmt: InputFormatSpec) -> str:
    """Map an input format spec to the Table 7 format key."""
    if fmt.is_full_resolution:
        return "full"
    if fmt.lossless:
        return "161-png"
    if fmt.quality >= 90:
        return "161-jpeg-q95"
    return "161-jpeg-q75"
