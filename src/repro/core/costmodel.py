"""Throughput cost models for end-to-end DNN inference (Section 4).

Three estimators are implemented:

* :class:`ExecutionOnlyCostModel` -- prior work's estimator (BlazeIt,
  NoScope, probabilistic predicates): end-to-end throughput equals the
  cascade's DNN execution throughput; preprocessing is ignored (Equation 2).
* :class:`SerialSumCostModel` -- Tahoma's estimator: preprocessing and DNN
  execution run back-to-back, so their per-image times add (Equation 3).
* :class:`SmolCostModel` -- the paper's corrected estimator: preprocessing is
  pipelined with DNN execution, so end-to-end throughput is the minimum of
  the two stage throughputs (Equation 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plans import Plan
from repro.errors import PlanError
from repro.inference.perfmodel import EngineConfig, PerformanceModel, StageEstimate


@dataclass(frozen=True)
class ThroughputEstimate:
    """A cost model's estimate for one plan."""

    plan: Plan
    estimated_throughput: float
    preprocessing_throughput: float
    dnn_throughput: float
    model_name: str

    def error_against(self, measured_throughput: float) -> float:
        """Absolute relative error versus a measured throughput."""
        if measured_throughput <= 0:
            raise PlanError("measured throughput must be positive")
        return abs(self.estimated_throughput - measured_throughput) / measured_throughput


class CostModel:
    """Base class: computes stage throughputs, subclasses combine them.

    ``catalog`` makes the costing *cache-aware*: any object with a
    ``decode_discount(format_name) -> float`` method (e.g.
    :class:`repro.store.catalog.StoreCatalog`) reporting which renditions
    are already materialized on disk.  For those formats the decode stage
    collapses to a chunk read, so preprocessing throughput is multiplied by
    the catalog's discount factor and already-materialized plans price
    accordingly cheaper.

    ``observations`` makes the costing *feedback-aware*: any object with
    ``preprocessing_scale(format_name, decoding=True) -> float`` and
    ``dnn_scale(model_name) -> float`` methods (e.g.
    :class:`repro.adapt.calibrator.ObservedCosts`) reporting how measured
    runtime stage costs compare to the calibrated model.  The scales are
    throughput multipliers (1.0 = the model was right; 0.25 = the stage
    runs 4x slower than modelled), so replanning under drift prices every
    candidate against the world as observed, not as calibrated.  When a
    catalog discount applies (decode bypassed by a materialized rendition),
    only the non-decode share of the observations is charged
    (``decoding=False``).
    """

    #: Short name used in benchmark tables.
    name = "base"

    def __init__(self, performance_model: PerformanceModel,
                 config: EngineConfig | None = None,
                 catalog=None, observations=None) -> None:
        self._perf = performance_model
        self._config = config or EngineConfig(
            num_producers=performance_model.instance.vcpus
        )
        self._catalog = catalog
        self._observations = observations

    @property
    def config(self) -> EngineConfig:
        """The engine configuration assumed by the estimates."""
        return self._config

    @property
    def performance_model(self) -> PerformanceModel:
        """The calibrated performance model the estimates are derived from."""
        return self._perf

    @property
    def catalog(self):
        """The materialized-rendition catalog, or None (cold costing)."""
        return self._catalog

    @property
    def observations(self):
        """The observed runtime cost scales, or None (calibrated costing)."""
        return self._observations

    def with_config(self, config: EngineConfig) -> "CostModel":
        """A cost model of the same estimator family under ``config``."""
        return type(self)(self._perf, config, catalog=self._catalog,
                          observations=self._observations)

    def with_catalog(self, catalog) -> "CostModel":
        """A cost model of the same family pricing against ``catalog``."""
        return type(self)(self._perf, self._config, catalog=catalog,
                          observations=self._observations)

    def with_observations(self, observations) -> "CostModel":
        """A cost model of the same family pricing with observed scales."""
        return type(self)(self._perf, self._config, catalog=self._catalog,
                          observations=observations)

    def stage_estimate(self, plan: Plan) -> StageEstimate:
        """Per-stage estimate for the plan's primary model and format."""
        offloaded = plan.offloaded_fraction
        if offloaded is None:
            offloaded = self._perf.best_offload_fraction(
                plan.primary_model, plan.input_format, self._config,
                roi_fraction=plan.roi_fraction,
            )
        return self._perf.estimate(
            plan.primary_model, plan.input_format, self._config,
            roi_fraction=plan.roi_fraction,
            offloaded_fraction=offloaded,
            deblocking=plan.deblocking,
        )

    def cascade_dnn_throughput(self, plan: Plan) -> float:
        """DNN-side throughput of a cascade (Equation 2's denominator).

        Each stage ``j`` processes a fraction of the inputs given by the
        product of upstream pass-through rates; total per-image time is the
        sum of the stage times weighted by those fractions.
        """
        per_image_us = 0.0
        reach = 1.0
        for stage in plan.stages:
            stage_estimate = self._perf.estimate(
                stage.model, plan.input_format, self._config,
                roi_fraction=plan.roi_fraction,
                offloaded_fraction=0.0,
                deblocking=plan.deblocking,
            )
            dnn_throughput = stage_estimate.dnn_throughput
            if self._observations is not None:
                dnn_throughput *= self._observations.dnn_scale(
                    stage.model.name
                )
            per_image_us += reach * (1e6 / dnn_throughput)
            reach *= stage.pass_through_rate
        if per_image_us <= 0:
            raise PlanError("cascade produced a non-positive per-image time")
        return 1e6 / per_image_us

    def preprocessing_throughput(self, plan: Plan) -> float:
        """CPU-side preprocessing throughput for the plan's input format.

        When a catalog reports the plan's rendition as materialized, the
        cold estimate is scaled by the catalog's decode discount.  When
        runtime observations are attached, the result is further scaled by
        the observed-vs-modelled preprocessing ratio for the format --
        excluding the decode share whenever the catalog discount already
        bypasses decode (reading a materialized rendition does not pay an
        observed decode slowdown).
        """
        throughput = self.stage_estimate(plan).preprocessing_throughput
        decoding = True
        if self._catalog is not None:
            format_name = plan.input_format.name
            discount = self._catalog.decode_discount(format_name)
            throughput *= discount
            # Prefer the catalog's explicit materialization bit (see
            # StoreCatalog.is_materialized); fall back to inferring it
            # from the discount for minimal duck-typed catalogs.
            is_materialized = getattr(self._catalog, "is_materialized",
                                      None)
            if is_materialized is not None:
                decoding = not is_materialized(format_name)
            else:
                decoding = discount == 1.0
        if self._observations is not None:
            throughput *= self._observations.preprocessing_scale(
                plan.input_format.name, decoding=decoding
            )
        return throughput

    def estimate(self, plan: Plan) -> ThroughputEstimate:
        """Estimate end-to-end throughput for ``plan``."""
        raise NotImplementedError


class ExecutionOnlyCostModel(CostModel):
    """Prior work's estimator: end-to-end throughput = DNN throughput."""

    name = "exec-only"

    def estimate(self, plan: Plan) -> ThroughputEstimate:
        dnn = self.cascade_dnn_throughput(plan)
        preproc = self.preprocessing_throughput(plan)
        return ThroughputEstimate(
            plan=plan,
            estimated_throughput=dnn,
            preprocessing_throughput=preproc,
            dnn_throughput=dnn,
            model_name=self.name,
        )


class SerialSumCostModel(CostModel):
    """Tahoma's estimator: per-image times of the two stages add."""

    name = "serial-sum"

    def estimate(self, plan: Plan) -> ThroughputEstimate:
        dnn = self.cascade_dnn_throughput(plan)
        preproc = self.preprocessing_throughput(plan)
        combined = 1.0 / (1.0 / preproc + 1.0 / dnn)
        return ThroughputEstimate(
            plan=plan,
            estimated_throughput=combined,
            preprocessing_throughput=preproc,
            dnn_throughput=dnn,
            model_name=self.name,
        )


class SmolCostModel(CostModel):
    """The paper's pipelined estimator: min of the stage throughputs."""

    name = "smol"

    def estimate(self, plan: Plan) -> ThroughputEstimate:
        dnn = self.cascade_dnn_throughput(plan)
        preproc = self.preprocessing_throughput(plan)
        return ThroughputEstimate(
            plan=plan,
            estimated_throughput=min(preproc, dnn),
            preprocessing_throughput=preproc,
            dnn_throughput=dnn,
            model_name=self.name,
        )


def all_cost_models(performance_model: PerformanceModel,
                    config: EngineConfig | None = None) -> list[CostModel]:
    """Instantiate the three cost models for comparison benchmarks."""
    return [
        SmolCostModel(performance_model, config),
        ExecutionOnlyCostModel(performance_model, config),
        SerialSumCostModel(performance_model, config),
    ]
