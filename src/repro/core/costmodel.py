"""Throughput cost models for end-to-end DNN inference (Section 4).

Three estimators are implemented:

* :class:`ExecutionOnlyCostModel` -- prior work's estimator (BlazeIt,
  NoScope, probabilistic predicates): end-to-end throughput equals the
  cascade's DNN execution throughput; preprocessing is ignored (Equation 2).
* :class:`SerialSumCostModel` -- Tahoma's estimator: preprocessing and DNN
  execution run back-to-back, so their per-image times add (Equation 3).
* :class:`SmolCostModel` -- the paper's corrected estimator: preprocessing is
  pipelined with DNN execution, so end-to-end throughput is the minimum of
  the two stage throughputs (Equation 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plans import Plan
from repro.errors import PlanError
from repro.inference.perfmodel import EngineConfig, PerformanceModel, StageEstimate


@dataclass(frozen=True)
class ThroughputEstimate:
    """A cost model's estimate for one plan."""

    plan: Plan
    estimated_throughput: float
    preprocessing_throughput: float
    dnn_throughput: float
    model_name: str

    def error_against(self, measured_throughput: float) -> float:
        """Absolute relative error versus a measured throughput."""
        if measured_throughput <= 0:
            raise PlanError("measured throughput must be positive")
        return abs(self.estimated_throughput - measured_throughput) / measured_throughput


class CostModel:
    """Base class: computes stage throughputs, subclasses combine them.

    ``catalog`` makes the costing *cache-aware*: any object with a
    ``decode_discount(format_name) -> float`` method (e.g.
    :class:`repro.store.catalog.StoreCatalog`) reporting which renditions
    are already materialized on disk.  For those formats the decode stage
    collapses to a chunk read, so preprocessing throughput is multiplied by
    the catalog's discount factor and already-materialized plans price
    accordingly cheaper.
    """

    #: Short name used in benchmark tables.
    name = "base"

    def __init__(self, performance_model: PerformanceModel,
                 config: EngineConfig | None = None,
                 catalog=None) -> None:
        self._perf = performance_model
        self._config = config or EngineConfig(
            num_producers=performance_model.instance.vcpus
        )
        self._catalog = catalog

    @property
    def config(self) -> EngineConfig:
        """The engine configuration assumed by the estimates."""
        return self._config

    @property
    def performance_model(self) -> PerformanceModel:
        """The calibrated performance model the estimates are derived from."""
        return self._perf

    @property
    def catalog(self):
        """The materialized-rendition catalog, or None (cold costing)."""
        return self._catalog

    def with_config(self, config: EngineConfig) -> "CostModel":
        """A cost model of the same estimator family under ``config``."""
        return type(self)(self._perf, config, catalog=self._catalog)

    def with_catalog(self, catalog) -> "CostModel":
        """A cost model of the same family pricing against ``catalog``."""
        return type(self)(self._perf, self._config, catalog=catalog)

    def stage_estimate(self, plan: Plan) -> StageEstimate:
        """Per-stage estimate for the plan's primary model and format."""
        offloaded = plan.offloaded_fraction
        if offloaded is None:
            offloaded = self._perf.best_offload_fraction(
                plan.primary_model, plan.input_format, self._config,
                roi_fraction=plan.roi_fraction,
            )
        return self._perf.estimate(
            plan.primary_model, plan.input_format, self._config,
            roi_fraction=plan.roi_fraction,
            offloaded_fraction=offloaded,
            deblocking=plan.deblocking,
        )

    def cascade_dnn_throughput(self, plan: Plan) -> float:
        """DNN-side throughput of a cascade (Equation 2's denominator).

        Each stage ``j`` processes a fraction of the inputs given by the
        product of upstream pass-through rates; total per-image time is the
        sum of the stage times weighted by those fractions.
        """
        per_image_us = 0.0
        reach = 1.0
        for stage in plan.stages:
            stage_estimate = self._perf.estimate(
                stage.model, plan.input_format, self._config,
                roi_fraction=plan.roi_fraction,
                offloaded_fraction=0.0,
                deblocking=plan.deblocking,
            )
            per_image_us += reach * (1e6 / stage_estimate.dnn_throughput)
            reach *= stage.pass_through_rate
        if per_image_us <= 0:
            raise PlanError("cascade produced a non-positive per-image time")
        return 1e6 / per_image_us

    def preprocessing_throughput(self, plan: Plan) -> float:
        """CPU-side preprocessing throughput for the plan's input format.

        When a catalog reports the plan's rendition as materialized, the
        cold estimate is scaled by the catalog's decode discount.
        """
        throughput = self.stage_estimate(plan).preprocessing_throughput
        if self._catalog is not None:
            throughput *= self._catalog.decode_discount(
                plan.input_format.name
            )
        return throughput

    def estimate(self, plan: Plan) -> ThroughputEstimate:
        """Estimate end-to-end throughput for ``plan``."""
        raise NotImplementedError


class ExecutionOnlyCostModel(CostModel):
    """Prior work's estimator: end-to-end throughput = DNN throughput."""

    name = "exec-only"

    def estimate(self, plan: Plan) -> ThroughputEstimate:
        dnn = self.cascade_dnn_throughput(plan)
        preproc = self.preprocessing_throughput(plan)
        return ThroughputEstimate(
            plan=plan,
            estimated_throughput=dnn,
            preprocessing_throughput=preproc,
            dnn_throughput=dnn,
            model_name=self.name,
        )


class SerialSumCostModel(CostModel):
    """Tahoma's estimator: per-image times of the two stages add."""

    name = "serial-sum"

    def estimate(self, plan: Plan) -> ThroughputEstimate:
        dnn = self.cascade_dnn_throughput(plan)
        preproc = self.preprocessing_throughput(plan)
        combined = 1.0 / (1.0 / preproc + 1.0 / dnn)
        return ThroughputEstimate(
            plan=plan,
            estimated_throughput=combined,
            preprocessing_throughput=preproc,
            dnn_throughput=dnn,
            model_name=self.name,
        )


class SmolCostModel(CostModel):
    """The paper's pipelined estimator: min of the stage throughputs."""

    name = "smol"

    def estimate(self, plan: Plan) -> ThroughputEstimate:
        dnn = self.cascade_dnn_throughput(plan)
        preproc = self.preprocessing_throughput(plan)
        return ThroughputEstimate(
            plan=plan,
            estimated_throughput=min(preproc, dnn),
            preprocessing_throughput=preproc,
            dnn_throughput=dnn,
            model_name=self.name,
        )


def all_cost_models(performance_model: PerformanceModel,
                    config: EngineConfig | None = None) -> list[CostModel]:
    """Instantiate the three cost models for comparison benchmarks."""
    return [
        SmolCostModel(performance_model, config),
        ExecutionOnlyCostModel(performance_model, config),
        SerialSumCostModel(performance_model, config),
    ]
