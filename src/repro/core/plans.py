"""Query plans: a DNN (or cascade) paired with an input format and options.

A Smol plan fixes everything the runtime engine needs: which DNN(s) to run,
which natively-available input rendition to read, how much of each image to
decode (ROI fraction), whether to use reduced-fidelity decoding, and which
training variant of the model to use (regular or low-resolution-augmented).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codecs.formats import InputFormatSpec
from repro.errors import PlanError
from repro.nn.zoo import ModelProfile


@dataclass(frozen=True)
class CascadeStage:
    """One stage of a model cascade.

    Attributes
    ----------
    model:
        The DNN executed at this stage.
    pass_through_rate:
        Expected fraction of inputs forwarded to the next stage (alpha in the
        paper's Equation 2).  The final stage's rate is irrelevant.
    """

    model: ModelProfile
    pass_through_rate: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.pass_through_rate <= 1.0:
            raise PlanError("pass-through rate must be in (0, 1]")


@dataclass(frozen=True)
class Plan:
    """An executable query plan.

    Attributes
    ----------
    stages:
        The model cascade; a single-element tuple for non-cascaded plans.
    input_format:
        The input rendition the plan reads.
    training:
        ``"regular"`` or ``"lowres"`` -- which training variant of the model
        to use (Section 5.3).
    roi_fraction:
        Fraction of each image decoded (1.0 = full decode).
    deblocking:
        Whether video decoding applies the deblocking filter.
    offloaded_fraction:
        Fraction of post-decode preprocessing placed on the accelerator; None
        lets the engine pick (Section 6.3).
    label:
        Optional human-readable label for reports.
    """

    stages: tuple[CascadeStage, ...]
    input_format: InputFormatSpec
    training: str = "regular"
    roi_fraction: float = 1.0
    deblocking: bool = True
    offloaded_fraction: float | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if not self.stages:
            raise PlanError("a plan needs at least one model stage")
        if self.training not in ("regular", "lowres"):
            raise PlanError("training must be 'regular' or 'lowres'")
        if not 0.0 < self.roi_fraction <= 1.0:
            raise PlanError("roi_fraction must be in (0, 1]")
        if self.offloaded_fraction is not None and not (
            0.0 <= self.offloaded_fraction <= 1.0
        ):
            raise PlanError("offloaded_fraction must be in [0, 1]")

    @classmethod
    def single(cls, model: ModelProfile, input_format: InputFormatSpec,
               **kwargs) -> "Plan":
        """Build a plan with a single (non-cascaded) model."""
        return cls(stages=(CascadeStage(model=model),),
                   input_format=input_format, **kwargs)

    @classmethod
    def cascade(cls, proxy: ModelProfile, target: ModelProfile,
                pass_through_rate: float, input_format: InputFormatSpec,
                **kwargs) -> "Plan":
        """Build a two-stage cascade: a cheap proxy filtering for a target DNN."""
        stages = (
            CascadeStage(model=proxy, pass_through_rate=pass_through_rate),
            CascadeStage(model=target),
        )
        return cls(stages=stages, input_format=input_format, **kwargs)

    @property
    def primary_model(self) -> ModelProfile:
        """The first (cheapest / always-executed) model of the plan."""
        return self.stages[0].model

    @property
    def is_cascade(self) -> bool:
        """True when the plan chains more than one model."""
        return len(self.stages) > 1

    def describe(self) -> str:
        """Human-readable plan description."""
        models = " -> ".join(stage.model.name for stage in self.stages)
        suffix = f" [{self.training}]" if self.training != "regular" else ""
        return f"{models} on {self.input_format.name}{suffix}"


@dataclass(frozen=True)
class PlanEstimate:
    """Cost-model output for one plan: throughput and accuracy estimates."""

    plan: Plan
    throughput: float
    accuracy: float
    preprocessing_throughput: float
    dnn_throughput: float

    def objectives(self) -> tuple[float, float]:
        """(throughput, accuracy) vector for Pareto-frontier computation."""
        return (self.throughput, self.accuracy)

    @property
    def bottleneck(self) -> str:
        """Which stage the cost model predicts will limit throughput."""
        if self.preprocessing_throughput <= self.dnn_throughput:
            return "preprocessing"
        return "dnn"


@dataclass(frozen=True)
class PlanConstraints:
    """Optional constraints on plan selection (Section 3.1).

    Exactly one of the two optimization modes applies:

    * ``accuracy_floor`` set: maximize throughput subject to accuracy.
    * ``throughput_floor`` set: maximize accuracy subject to throughput.
    * neither set: Smol returns the highest-throughput plan (or the Pareto
      set when the caller asks for it).
    """

    accuracy_floor: float | None = None
    throughput_floor: float | None = None

    def __post_init__(self) -> None:
        if self.accuracy_floor is not None and not 0.0 <= self.accuracy_floor <= 1.0:
            raise PlanError("accuracy_floor must be in [0, 1]")
        if self.throughput_floor is not None and self.throughput_floor <= 0:
            raise PlanError("throughput_floor must be positive")

    def satisfied_by(self, estimate: PlanEstimate) -> bool:
        """Whether an estimate meets every specified constraint."""
        if self.accuracy_floor is not None and estimate.accuracy < self.accuracy_floor:
            return False
        if (self.throughput_floor is not None
                and estimate.throughput < self.throughput_floor):
            return False
        return True
