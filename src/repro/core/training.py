"""Low-resolution-aware fine-tuning driver (Sections 3.1 and 5.3).

Given the set of candidate DNN architectures and the natively available
formats, Smol fine-tunes each architecture on the cross product of models and
resolutions (one fine-tune per resolution; formats of the same resolution
share a model).  Fine-tuning adds at most ~30% training overhead because the
low-resolution variants start from the full-resolution weights and train for
a fraction of the original schedule.

This module drives the numpy trainer on the synthetic datasets; for the
calibrated (paper-scale) path, the resulting accuracy surface is read from
the calibration tables instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TrainingError
from repro.nn.model import Sequential, build_mini_resnet, evaluate_accuracy
from repro.nn.train import Trainer, TrainingConfig, lowres_roundtrip


@dataclass
class FineTuneResult:
    """Outcome of fine-tuning one (architecture, resolution) pair."""

    model_name: str
    target_short_side: int | None
    baseline_accuracy: float
    finetuned_accuracy: float
    epochs: int

    @property
    def accuracy_recovered(self) -> float:
        """Accuracy gained by low-resolution-aware training."""
        return self.finetuned_accuracy - self.baseline_accuracy


@dataclass
class LowResolutionTrainer:
    """Trains regular and low-resolution-augmented variants of a model family.

    Attributes
    ----------
    num_classes:
        Number of classes in the dataset.
    input_size:
        Square input resolution of the trainable models.
    base_config:
        Training hyperparameters for the full-resolution baseline; the
        low-resolution fine-tune reuses them with fewer epochs.
    finetune_epoch_fraction:
        Fraction of the baseline epochs used for each fine-tune (the <=30%
        overhead the paper quotes).
    """

    num_classes: int
    input_size: int = 32
    base_config: TrainingConfig = field(default_factory=TrainingConfig)
    finetune_epoch_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.num_classes <= 1:
            raise TrainingError("num_classes must be at least 2")
        if not 0.0 < self.finetune_epoch_fraction <= 1.0:
            raise TrainingError("finetune_epoch_fraction must be in (0, 1]")

    def train_baseline(self, depth: int, train_images: np.ndarray,
                       train_labels: np.ndarray, val_images: np.ndarray,
                       val_labels: np.ndarray, seed: int = 0) -> tuple[Sequential, float]:
        """Train the full-resolution (regular) model for one depth."""
        model = build_mini_resnet(depth, num_classes=self.num_classes,
                                  input_size=self.input_size, seed=seed)
        trainer = Trainer(model, self.base_config)
        result = trainer.fit(train_images, train_labels, val_images, val_labels)
        accuracy = result.validation_accuracy
        if accuracy is None:
            accuracy = evaluate_accuracy(model, val_images, val_labels)
        return model, accuracy

    def finetune_lowres(self, model: Sequential, target_short_side: int,
                        train_images: np.ndarray, train_labels: np.ndarray,
                        val_images: np.ndarray, val_labels: np.ndarray,
                        seed: int = 0) -> FineTuneResult:
        """Fine-tune ``model`` with low-resolution augmentation.

        The validation set is degraded through the same low-resolution
        round trip to measure accuracy as it will be observed at inference
        time on the low-resolution rendition.
        """
        if target_short_side <= 0:
            raise TrainingError("target_short_side must be positive")
        degraded_val = lowres_roundtrip(val_images, target_short_side)
        baseline_accuracy = evaluate_accuracy(model, degraded_val, val_labels)
        epochs = max(1, int(round(self.base_config.epochs
                                  * self.finetune_epoch_fraction)))
        finetune_config = TrainingConfig(
            epochs=epochs,
            batch_size=self.base_config.batch_size,
            learning_rate=self.base_config.learning_rate * 0.3,
            momentum=self.base_config.momentum,
            weight_decay=self.base_config.weight_decay,
            lowres_augment_size=target_short_side,
            lowres_augment_prob=0.7,
            flip_augment=self.base_config.flip_augment,
            seed=seed + 1,
        )
        trainer = Trainer(model, finetune_config)
        trainer.fit(train_images, train_labels)
        finetuned_accuracy = evaluate_accuracy(model, degraded_val, val_labels)
        return FineTuneResult(
            model_name=model.name,
            target_short_side=target_short_side,
            baseline_accuracy=baseline_accuracy,
            finetuned_accuracy=finetuned_accuracy,
            epochs=epochs,
        )

    def training_overhead(self, num_resolutions: int) -> float:
        """Relative extra training cost of fine-tuning ``num_resolutions`` variants."""
        if num_resolutions < 0:
            raise TrainingError("num_resolutions cannot be negative")
        return num_resolutions * self.finetune_epoch_fraction
