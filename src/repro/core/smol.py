"""The Smol facade: plan, optimize, and execute end-to-end inference.

:class:`Smol` wires together the planner (cost model + accuracy estimator),
the runtime engine, and the performance model for a chosen hardware
environment.  It mirrors the system diagram of Figure 2: inputs are a set of
DNNs, a set of input formats, and optional constraints; outputs are the Pareto
set of plans or a single selected plan, which can then be executed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.codecs.formats import InputFormatSpec, list_input_formats
from repro.core.accuracy import AccuracyEstimator
from repro.core.costmodel import SmolCostModel
from repro.core.planner import PlanGenerator, PlannerFeatures
from repro.core.plans import Plan, PlanConstraints, PlanEstimate
from repro.errors import PlanError
from repro.hardware.instance import CloudInstance, get_instance
from repro.inference.engine import InferenceResult, SmolRuntimeEngine
from repro.inference.perfmodel import EngineConfig, PerformanceModel
from repro.nn.zoo import ModelProfile, resnet_profile


@dataclass(frozen=True)
class SmolReport:
    """Summary of a planning pass: the frontier and the selected plan."""

    frontier: tuple[PlanEstimate, ...]
    selected: PlanEstimate | None

    def describe(self) -> str:
        """Multi-line human-readable report."""
        lines = ["Pareto frontier (throughput im/s, accuracy):"]
        for estimate in self.frontier:
            lines.append(
                f"  {estimate.plan.describe():45s} "
                f"{estimate.throughput:10,.0f}  {estimate.accuracy:6.3f}"
            )
        if self.selected is not None:
            lines.append(f"Selected: {self.selected.plan.describe()}")
        return "\n".join(lines)


class Smol:
    """End-to-end visual analytics inference optimizer and runtime."""

    def __init__(self, instance: CloudInstance | str = "g4dn.xlarge",
                 dataset_name: str = "imagenet",
                 models: Sequence[ModelProfile] | None = None,
                 formats: Sequence[InputFormatSpec] | None = None,
                 features: PlannerFeatures | None = None,
                 engine_config: EngineConfig | None = None,
                 backend: str = "tensorrt") -> None:
        if isinstance(instance, str):
            instance = get_instance(instance)
        self._instance = instance
        self._dataset_name = dataset_name
        self._models = list(models) if models is not None else [
            resnet_profile(depth) for depth in (18, 34, 50)
        ]
        self._formats = (list(formats) if formats is not None
                         else list_input_formats())
        self._features = features or PlannerFeatures()
        self._config = engine_config or EngineConfig(
            num_producers=instance.vcpus
        )
        if not self._features.use_preprocessing_optimizations:
            self._config = replace(self._config, optimize_dag=False)
        self._performance_model = PerformanceModel(instance, backend=backend)
        self._cost_model = SmolCostModel(self._performance_model, self._config)
        self._planner = PlanGenerator(
            cost_model=self._cost_model,
            accuracy=AccuracyEstimator(dataset_name),
            features=self._features,
        )
        self._engine = SmolRuntimeEngine(
            config=self._config, performance_model=self._performance_model
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_dataset(cls, dataset, instance: CloudInstance | str = "g4dn.xlarge",
                    **kwargs) -> "Smol":
        """Build a Smol instance for a dataset object exposing ``name`` and
        ``available_formats``."""
        formats = getattr(dataset, "available_formats", None)
        name = getattr(dataset, "name", str(dataset))
        return cls(instance=instance, dataset_name=name, formats=formats, **kwargs)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    @property
    def planner(self) -> PlanGenerator:
        """The underlying plan generator."""
        return self._planner

    @property
    def performance_model(self) -> PerformanceModel:
        """The calibrated performance model for the configured instance."""
        return self._performance_model

    @property
    def engine(self) -> SmolRuntimeEngine:
        """The runtime engine."""
        return self._engine

    @property
    def engine_config(self) -> EngineConfig:
        """The active engine configuration."""
        return self._config

    def pareto_frontier(self) -> list[PlanEstimate]:
        """The Pareto-optimal plans over the configured models and formats."""
        return self._planner.pareto_frontier(self._formats, self._models)

    def best_plan(self, accuracy_floor: float | None = None,
                  throughput_floor: float | None = None) -> PlanEstimate:
        """Select the best plan under an optional constraint."""
        constraints = PlanConstraints(accuracy_floor=accuracy_floor,
                                      throughput_floor=throughput_floor)
        return self._planner.select(constraints, self._formats, self._models)

    def report(self, accuracy_floor: float | None = None) -> SmolReport:
        """Planning report: the frontier plus the selected plan (if feasible)."""
        frontier = tuple(self.pareto_frontier())
        selected = None
        if accuracy_floor is not None:
            try:
                selected = self.best_plan(accuracy_floor=accuracy_floor)
            except PlanError:
                selected = None
        else:
            selected = max(frontier, key=lambda e: e.throughput, default=None)
        return SmolReport(frontier=frontier, selected=selected)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, plan: Plan | PlanEstimate, limit: int = 4096) -> InferenceResult:
        """Execute a plan in the simulated runtime for ``limit`` images."""
        actual_plan = plan.plan if isinstance(plan, PlanEstimate) else plan
        return self._engine.run_simulated(
            actual_plan.primary_model,
            actual_plan.input_format,
            num_images=limit,
            roi_fraction=actual_plan.roi_fraction,
            offloaded_fraction=actual_plan.offloaded_fraction,
            deblocking=actual_plan.deblocking,
        )
