"""Smol core: plans, cost models, accuracy estimation, and the planner.

This package is the paper's primary contribution: a preprocessing-aware cost
model (Section 4), plan generation over the cross product of candidate DNNs
and natively available input formats (Sections 3 and 5), constraint-based or
Pareto-optimal plan selection, and the low-resolution-aware training driver
(Section 5.3).  Execution is delegated to :mod:`repro.inference`.
"""

from repro.core.plans import Plan, PlanConstraints, PlanEstimate
from repro.core.costmodel import (
    CostModel,
    SmolCostModel,
    ExecutionOnlyCostModel,
    SerialSumCostModel,
)
from repro.core.accuracy import AccuracyEstimator, AccuracyEstimate
from repro.core.planner import PlanGenerator, PlannerFeatures
from repro.core.training import LowResolutionTrainer, FineTuneResult
from repro.core.smol import Smol

__all__ = [
    "Plan",
    "PlanConstraints",
    "PlanEstimate",
    "CostModel",
    "SmolCostModel",
    "ExecutionOnlyCostModel",
    "SerialSumCostModel",
    "AccuracyEstimator",
    "AccuracyEstimate",
    "PlanGenerator",
    "PlannerFeatures",
    "LowResolutionTrainer",
    "FineTuneResult",
    "Smol",
]
