"""Plan generation and selection (Sections 3 and 5).

The planner enumerates the cross product of candidate DNNs and input formats
(plus cascade and decoding options), estimates throughput with the
preprocessing-aware cost model and accuracy with the calibrated/measured
accuracy estimator, and returns either the Pareto frontier or the best plan
under a constraint.

Feature flags (:class:`PlannerFeatures`) switch the paper's optimizations on
and off so the lesion and factor analyses (Figures 5-8) can be reproduced by
toggling exactly one knob at a time.

Planning is optionally *cache-aware*: given a materialized-rendition catalog
(``catalog=``, typically ``RenditionStore.catalog()``), the cost model
discounts decode for renditions the store already holds decoded, so repeat
queries are steered toward plans that are cache hits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.codecs.formats import InputFormatSpec, list_input_formats
from repro.core.accuracy import AccuracyEstimator
from repro.core.costmodel import CostModel, SmolCostModel
from repro.core.plans import Plan, PlanConstraints, PlanEstimate
from repro.errors import InfeasibleConstraintError, PlanError
from repro.nn.zoo import ModelProfile, resnet_profile
from repro.utils.pareto import pareto_frontier, sort_frontier


@dataclass(frozen=True)
class PlannerFeatures:
    """Optimization feature flags used by lesion/factor analyses.

    Attributes
    ----------
    use_low_resolution:
        Consider natively-present low-resolution input formats (Section 5.2).
    use_lowres_training:
        Use the low-resolution-augmented training variant of each model when
        reading low-resolution data (Section 5.3).
    use_roi_decoding:
        Decode only the macroblocks covering the central-crop ROI
        (Section 6.4).
    use_preprocessing_optimizations:
        Apply the preprocessing DAG optimizations (Section 6.2); when off,
        the engine config disables DAG optimization.
    use_expanded_search_space:
        Consider the full set of standard ResNet depths instead of only tiny
        specialized NNs (Section 5.1).
    """

    use_low_resolution: bool = True
    use_lowres_training: bool = True
    use_roi_decoding: bool = True
    use_preprocessing_optimizations: bool = True
    use_expanded_search_space: bool = True

    @classmethod
    def all_disabled(cls) -> "PlannerFeatures":
        """Baseline configuration with every Smol optimization off."""
        return cls(use_low_resolution=False, use_lowres_training=False,
                   use_roi_decoding=False,
                   use_preprocessing_optimizations=False,
                   use_expanded_search_space=False)

    def without(self, feature: str) -> "PlannerFeatures":
        """Copy with one named feature disabled (lesion study)."""
        mapping = {
            "low-resolution": "use_low_resolution",
            "lowres-training": "use_lowres_training",
            "roi": "use_roi_decoding",
            "preproc-opt": "use_preprocessing_optimizations",
            "expanded-search": "use_expanded_search_space",
        }
        if feature not in mapping:
            raise PlanError(f"unknown feature {feature!r}; known: {sorted(mapping)}")
        return replace(self, **{mapping[feature]: False})


# The standard central-crop ROI covers roughly 77% of a short-side-256 resize
# of a typical full-resolution image once expanded to macroblock boundaries.
CENTRAL_CROP_ROI_FRACTION = 0.77


class PlanGenerator:
    """Enumerates and scores plans over models x input formats."""

    def __init__(self, cost_model: CostModel, accuracy: AccuracyEstimator,
                 features: PlannerFeatures | None = None,
                 catalog=None, observations=None) -> None:
        if catalog is not None:
            cost_model = cost_model.with_catalog(catalog)
        if observations is not None:
            cost_model = cost_model.with_observations(observations)
        self._cost_model = cost_model
        self._accuracy = accuracy
        self._features = features or PlannerFeatures()

    @property
    def features(self) -> PlannerFeatures:
        """The active optimization feature flags."""
        return self._features

    @property
    def catalog(self):
        """The materialized-rendition catalog plans are priced against.

        None means cold costing; otherwise an object with
        ``decode_discount(format_name)`` (see
        :class:`repro.store.catalog.StoreCatalog`) that discounts decode
        cost for renditions the store has already materialized, steering
        the frontier toward already-cached plans.
        """
        return self._cost_model.catalog

    @property
    def observations(self):
        """The observed runtime cost scales plans are priced with.

        None means calibrated-only costing; otherwise an object with
        ``preprocessing_scale(format_name, decoding=True)`` and
        ``dnn_scale(model_name)`` (see
        :class:`repro.adapt.calibrator.ObservedCosts`) folding measured
        stage costs back into every candidate's throughput estimate, so
        replanning under drift reflects the live system.
        """
        return self._cost_model.observations

    def candidate_models(self) -> list[ModelProfile]:
        """Candidate DNNs under the active search-space setting."""
        if self._features.use_expanded_search_space:
            return [resnet_profile(depth) for depth in (18, 34, 50)]
        return [resnet_profile(18)]

    def candidate_formats(
        self, available: Sequence[InputFormatSpec] | None = None
    ) -> list[InputFormatSpec]:
        """Candidate input formats under the active low-resolution setting."""
        formats = list(available) if available is not None else list_input_formats()
        if not self._features.use_low_resolution:
            formats = [fmt for fmt in formats if fmt.is_full_resolution]
        if not formats:
            raise PlanError("no candidate input formats available")
        return formats

    def generate(
        self, available_formats: Sequence[InputFormatSpec] | None = None,
        models: Sequence[ModelProfile] | None = None,
    ) -> list[Plan]:
        """Enumerate candidate plans (the cross product D x F)."""
        model_list = list(models) if models is not None else self.candidate_models()
        format_list = self.candidate_formats(available_formats)
        plans: list[Plan] = []
        for model in model_list:
            for fmt in format_list:
                training = "regular"
                if (self._features.use_lowres_training
                        and not fmt.is_full_resolution):
                    training = "lowres"
                roi = 1.0
                if (self._features.use_roi_decoding
                        and fmt.capability.supports_roi()
                        and fmt.is_full_resolution):
                    roi = CENTRAL_CROP_ROI_FRACTION
                plans.append(
                    Plan.single(
                        model, fmt, training=training, roi_fraction=roi,
                        label=f"{model.name}/{fmt.name}",
                    )
                )
        return plans

    def score(self, plans: Iterable[Plan]) -> list[PlanEstimate]:
        """Estimate throughput and accuracy for each plan."""
        estimates: list[PlanEstimate] = []
        config = self._cost_model.config
        if not self._features.use_preprocessing_optimizations:
            cost_model = self._cost_model.with_config(
                replace(config, optimize_dag=False)
            )
        else:
            cost_model = self._cost_model
        for plan in plans:
            throughput_estimate = cost_model.estimate(plan)
            accuracy_estimate = self._accuracy.calibrated(
                plan.primary_model, plan.input_format, training=plan.training
            )
            estimates.append(
                PlanEstimate(
                    plan=plan,
                    throughput=throughput_estimate.estimated_throughput,
                    accuracy=accuracy_estimate.accuracy,
                    preprocessing_throughput=(
                        throughput_estimate.preprocessing_throughput
                    ),
                    dnn_throughput=throughput_estimate.dnn_throughput,
                )
            )
        return estimates

    def pareto_frontier(
        self, available_formats: Sequence[InputFormatSpec] | None = None,
        models: Sequence[ModelProfile] | None = None,
    ) -> list[PlanEstimate]:
        """The Pareto-optimal set of plans in (throughput, accuracy)."""
        estimates = self.score(self.generate(available_formats, models))
        frontier = pareto_frontier(estimates, lambda e: e.objectives())
        return sort_frontier(frontier, lambda e: e.objectives(), axis=0)

    def select(
        self, constraints: PlanConstraints,
        available_formats: Sequence[InputFormatSpec] | None = None,
        models: Sequence[ModelProfile] | None = None,
    ) -> PlanEstimate:
        """Select the best plan under the given constraints.

        With an accuracy floor, the highest-throughput qualifying plan wins;
        with a throughput floor, the most accurate qualifying plan wins; with
        no constraints, the highest-throughput plan wins.
        """
        estimates = self.score(self.generate(available_formats, models))
        feasible = [e for e in estimates if constraints.satisfied_by(e)]
        if not feasible:
            raise InfeasibleConstraintError(
                "no plan satisfies the given constraints; best available: "
                + ", ".join(
                    f"{e.plan.describe()} ({e.throughput:.0f} im/s, "
                    f"{e.accuracy:.3f})"
                    for e in sorted(estimates, key=lambda e: -e.accuracy)[:3]
                )
            )
        if constraints.throughput_floor is not None:
            return max(feasible, key=lambda e: (e.accuracy, e.throughput))
        return max(feasible, key=lambda e: (e.throughput, e.accuracy))


def default_planner(cost_model: CostModel | None = None,
                    dataset_name: str = "imagenet",
                    features: PlannerFeatures | None = None,
                    performance_model=None,
                    catalog=None, observations=None) -> PlanGenerator:
    """Convenience constructor wiring a Smol cost model to a planner.

    Pass ``catalog`` (e.g. ``RenditionStore.catalog()``) for cache-aware
    costing: plans whose rendition is already materialized in the store are
    priced with decode collapsed to a chunk read.  Pass ``observations``
    (e.g. ``OnlineCalibrator.observed_costs()``) for feedback-aware
    costing: candidates are priced against measured runtime stage costs
    instead of the calibrated constants alone.
    """
    if cost_model is None:
        if performance_model is None:
            raise PlanError("provide either a cost model or a performance model")
        cost_model = SmolCostModel(performance_model)
    return PlanGenerator(
        cost_model=cost_model,
        accuracy=AccuracyEstimator(dataset_name),
        features=features,
        catalog=catalog,
        observations=observations,
    )
