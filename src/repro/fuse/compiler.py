"""The plan compiler: preprocessing DAG -> :class:`FusedKernel`, cached.

Compilation is cheap but not free (validation, topological sort, lowering
lookups), and -- more importantly -- the *interpreted* executor pays those
costs per image.  The compiler hoists them to once per plan: ``compile_dag``
validates and sorts the DAG a single time and emits a kernel whose hot loop
is pure batched array code, and :class:`KernelCache` memoizes kernels by
plan fingerprint so every session, replica, and hot-swap of the same plan
shares one compiled executable.

The fingerprint covers the executed semantics -- the op sequence (each op's
``repr`` includes its parameters) and per-node device placement -- so two
structurally different DAGs that execute the same op sequence share a
kernel, and any parameter change misses the cache.
"""

from __future__ import annotations

import hashlib
import threading

from repro.errors import PreprocessingError
from repro.fuse.kernel import FusedKernel, Segment
from repro.fuse.registry import lowering_for
from repro.preprocessing.dag import PreprocessingDAG


def dag_fingerprint(dag: PreprocessingDAG) -> str:
    """Stable hex fingerprint of a DAG's executed semantics."""
    nodes = dag.topological_ops()
    payload = "|".join(
        f"{node.op!r}@{node.device}" for node in nodes
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def compile_dag(dag: PreprocessingDAG,
                fingerprint: str | None = None) -> FusedKernel:
    """Lower ``dag`` into a :class:`FusedKernel`.

    Consecutive ops with registered lowerings become one vector segment;
    consecutive ops without one become one interpreter segment.  The DAG is
    validated here, once -- the kernel never re-validates.
    """
    dag.validate()
    if fingerprint is None:
        fingerprint = dag_fingerprint(dag)
    segments: list[Segment] = []
    current_kind: str | None = None
    ops: list = []
    stages: list = []

    def flush() -> None:
        if not ops:
            return
        segments.append(Segment(kind=current_kind, ops=tuple(ops),
                                stages=tuple(stages)))
        ops.clear()
        stages.clear()

    for node in dag.topological_ops():
        stage = lowering_for(node.op)
        kind = "vector" if stage is not None else "interp"
        if kind != current_kind:
            flush()
            current_kind = kind
        ops.append(node.op)
        if stage is not None:
            stages.append(stage)
    flush()
    if not segments:
        raise PreprocessingError("empty preprocessing DAG")
    return FusedKernel(fingerprint, segments, describe=dag.describe())


class KernelCache:
    """Compile-once kernel cache keyed by plan fingerprint (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._kernels: dict[str, FusedKernel] = {}
        self._hits = 0
        self._compiles = 0

    @property
    def hits(self) -> int:
        """Lookups served by an already-compiled kernel."""
        with self._lock:
            return self._hits

    @property
    def compiles(self) -> int:
        """Kernels compiled (cache misses)."""
        with self._lock:
            return self._compiles

    def __len__(self) -> int:
        with self._lock:
            return len(self._kernels)

    def get(self, dag: PreprocessingDAG) -> FusedKernel:
        """The cached kernel for ``dag``, compiling on first sight."""
        fingerprint = dag_fingerprint(dag)
        with self._lock:
            kernel = self._kernels.get(fingerprint)
            if kernel is not None:
                self._hits += 1
                return kernel
        # Compile outside the lock (lowering lookups are pure); first
        # finished compile wins, a concurrent loser is discarded.
        kernel = compile_dag(dag, fingerprint=fingerprint)
        with self._lock:
            winner = self._kernels.setdefault(fingerprint, kernel)
            if winner is kernel:
                self._compiles += 1
            else:
                self._hits += 1
        return winner

    def clear(self) -> None:
        """Drop every cached kernel (tests)."""
        with self._lock:
            self._kernels.clear()


#: The process-wide kernel cache sessions share by default.
DEFAULT_KERNEL_CACHE = KernelCache()


def get_kernel(dag: PreprocessingDAG) -> FusedKernel:
    """The shared-cache kernel for ``dag`` (compile once per plan)."""
    return DEFAULT_KERNEL_CACHE.get(dag)
