"""Fused kernels: a compiled plan pipeline executing whole micro-batches.

A :class:`FusedKernel` is the executable the compiler emits for one
preprocessing DAG: an ordered list of :class:`Segment` records, each either

* a **vector segment** -- consecutive ops with registered batched lowerings
  (:mod:`repro.fuse.registry`), executed as whole-batch numpy array ops; or
* an **interpreter segment** -- consecutive ops without a lowering, executed
  by looping each op's own ``apply`` per image (the fallback that makes any
  valid DAG compilable).

Micro-batches may mix input shapes/dtypes (serving payloads are arbitrary
images).  ``execute_many`` groups the batch by ``(shape, dtype)``, runs the
segments once per group, and scatters the group outputs back into request
order -- so a heterogeneous batch produces exactly the per-image results,
and a homogeneous batch (the common case) runs every stage once.

The ``fuse.execute`` fault seam fires once per executed batch, and when
observability is enabled each segment emits a ``fuse.segment`` span, so
chaos and tracing see the same stage boundaries the interpreted path shows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.chaos.faults import NULL_FAULTS
from repro.errors import PreprocessingError
from repro.fuse.registry import BatchStage
from repro.obs import NULL_OBS
from repro.preprocessing.ops import PreprocessingOp


@dataclass(frozen=True)
class Segment:
    """One compiled pipeline segment.

    ``kind`` is ``"vector"`` (``stages`` holds one batched callable per op)
    or ``"interp"`` (``stages`` is empty and ``ops`` run per image).  ``ops``
    always names the covered operators, in execution order.
    """

    kind: str
    ops: tuple[PreprocessingOp, ...]
    stages: tuple[BatchStage, ...] = ()

    @property
    def op_names(self) -> tuple[str, ...]:
        """Short op names this segment covers (for describe/tracing)."""
        return tuple(op.name for op in self.ops)

    def run(self, batch: np.ndarray) -> np.ndarray:
        """Execute the segment over one shape-homogeneous batch."""
        if self.kind == "vector":
            for stage in self.stages:
                batch = stage(batch)
            return batch
        # Interpreter fallback: per-image apply, restacked.  Images in a
        # group share a shape, and ops map equal input shapes to equal
        # output shapes, so the restack is always well-formed.
        images = list(batch)
        for op in self.ops:
            images = [op.apply(image) for image in images]
        return np.stack(images)


class FusedKernel:
    """The compiled, reusable executable of one preprocessing DAG."""

    def __init__(self, fingerprint: str, segments: Sequence[Segment],
                 describe: str = "") -> None:
        if not segments:
            raise PreprocessingError("cannot build an empty fused kernel")
        self._fingerprint = fingerprint
        self._segments = tuple(segments)
        self._describe = describe
        self._batches = 0
        self._images = 0

    @property
    def fingerprint(self) -> str:
        """The plan fingerprint this kernel was compiled from."""
        return self._fingerprint

    @property
    def segments(self) -> tuple[Segment, ...]:
        """The compiled segments, in execution order."""
        return self._segments

    @property
    def fully_vectorized(self) -> bool:
        """True when no op fell back to the interpreter."""
        return all(segment.kind == "vector" for segment in self._segments)

    @property
    def batches_executed(self) -> int:
        """Lifetime count of executed batches."""
        return self._batches

    @property
    def images_executed(self) -> int:
        """Lifetime count of images across executed batches."""
        return self._images

    def describe(self) -> str:
        """Segment-bracketed pipeline description, e.g. ``[resize crop]``."""
        parts = []
        for segment in self._segments:
            inner = " ".join(segment.op_names)
            brackets = "[{}]" if segment.kind == "vector" else "{{{}}}"
            parts.append(brackets.format(inner))
        return " -> ".join(parts)

    def _run_group(self, batch: np.ndarray, obs) -> np.ndarray:
        for segment in self._segments:
            if obs.enabled:
                start = time.perf_counter()
                batch = segment.run(batch)
                obs.record(
                    "fuse.segment", time.perf_counter() - start,
                    kind=segment.kind, ops=" ".join(segment.op_names),
                    images=int(batch.shape[0]),
                )
            else:
                batch = segment.run(batch)
        return batch

    def _group(self, arrays: Sequence[np.ndarray]) -> dict[tuple, list[int]]:
        groups: dict[tuple, list[int]] = {}
        for index, array in enumerate(arrays):
            if not isinstance(array, np.ndarray):
                raise PreprocessingError(
                    "fused execution needs ndarray payloads, got "
                    f"{type(array).__name__}"
                )
            groups.setdefault((array.shape, array.dtype.str), []).append(index)
        return groups

    def execute_many(self, arrays: Sequence[np.ndarray],
                     faults=NULL_FAULTS, obs=NULL_OBS) -> list[np.ndarray]:
        """Run the pipeline over a micro-batch; per-image outputs in order.

        Bit-identical to ``[dag.execute(a) for a in arrays]`` by the
        registry's lowering contract; shape/dtype groups keep heterogeneous
        batches exact.
        """
        if not arrays:
            raise PreprocessingError("cannot execute an empty fused batch")
        faults.hit("fuse.execute", kernel=self, batch=len(arrays))
        groups = self._group(arrays)
        self._batches += 1
        self._images += len(arrays)
        results: list[np.ndarray | None] = [None] * len(arrays)
        for indices in groups.values():
            batch = np.stack([arrays[i] for i in indices])
            out = self._run_group(batch, obs)
            for position, index in enumerate(indices):
                results[index] = out[position]
        return results  # type: ignore[return-value]

    def execute_stacked(self, arrays: Sequence[np.ndarray],
                        faults=NULL_FAULTS, obs=NULL_OBS) -> np.ndarray:
        """Like :meth:`execute_many` but stacked into one ``(N, ...)`` array.

        A shape-homogeneous batch (the common case) returns the group
        output directly, with no per-image unstack/restack; heterogeneous
        batches raise like ``np.stack`` when per-image outputs disagree on
        shape -- exactly where the interpreted ``np.stack(tensors)`` path
        fails.
        """
        if not arrays:
            raise PreprocessingError("cannot execute an empty fused batch")
        groups = self._group(arrays)
        if len(groups) == 1:
            faults.hit("fuse.execute", kernel=self, batch=len(arrays))
            self._batches += 1
            self._images += len(arrays)
            return self._run_group(np.stack(arrays), obs)
        return np.stack(self.execute_many(arrays, faults=faults, obs=obs))
