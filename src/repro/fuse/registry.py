"""Per-op codegen registry: batched lowerings of preprocessing operators.

Each entry maps one :class:`~repro.preprocessing.ops.PreprocessingOp` type to
a *lowering*: a function that, given the op instance, returns a kernel stage
executing that op over a whole micro-batch at once -- an ``(N, ...)`` array
in, an ``(N, ...)`` array out.  The compiler (:mod:`repro.fuse.compiler`)
stitches consecutive lowered stages into vector segments; ops without a
registered lowering fall back to a batched-interpreter segment that loops
the op's own ``apply`` per image, so *any* valid DAG compiles.

Every lowering is bit-identical to mapping the op's ``apply`` over the batch:
the batched form performs the same IEEE-754 elementwise operations in the
same order per element (broadcasts add a leading batch axis, never reorder
the per-element arithmetic), and raises the same
:class:`~repro.errors.PreprocessingError` on the inputs the scalar op
rejects.  The differential suite under ``tests/fuse/`` holds this contract
over the golden plan matrix and hypothesis-generated DAGs.
"""

from __future__ import annotations

from typing import Callable, Type

import numpy as np

from repro.errors import PreprocessingError
from repro.preprocessing.ops import (
    CenterCropOp,
    ChannelReorderOp,
    ConvertDtypeOp,
    DecodeOp,
    FusedNormalizeReorderOp,
    NormalizeOp,
    PreprocessingOp,
    ResizeOp,
)

#: A kernel stage: one batched array in (leading batch axis), one out.
BatchStage = Callable[[np.ndarray], np.ndarray]

#: op type -> (op instance -> batched stage)
_LOWERINGS: dict[Type[PreprocessingOp], Callable[[PreprocessingOp], BatchStage]] = {}


def register_lowering(op_type: Type[PreprocessingOp]):
    """Register the decorated function as ``op_type``'s batched lowering."""
    def decorator(fn: Callable[[PreprocessingOp], BatchStage]):
        _LOWERINGS[op_type] = fn
        return fn
    return decorator


def lowering_for(op: PreprocessingOp) -> BatchStage | None:
    """The batched stage lowering ``op``, or None (interpreter fallback).

    Lookup is by exact type: a subclass overriding ``apply`` must not
    silently inherit its parent's lowering, or fused results would diverge
    from the interpreted oracle.
    """
    factory = _LOWERINGS.get(type(op))
    if factory is None:
        return None
    return factory(op)


def registered_op_types() -> tuple[Type[PreprocessingOp], ...]:
    """Op types with a registered lowering (registration order)."""
    return tuple(_LOWERINGS)


@register_lowering(DecodeOp)
def _lower_decode(op: DecodeOp) -> BatchStage:
    # Decode is a DAG marker (the codecs decode at ingest); its apply is
    # the identity, so the batched form is too.
    def stage(batch: np.ndarray) -> np.ndarray:
        return batch
    return stage


@register_lowering(ResizeOp)
def _lower_resize(op: ResizeOp) -> BatchStage:
    short_side = op.short_side

    def stage(batch: np.ndarray) -> np.ndarray:
        if batch.ndim != 4:
            raise PreprocessingError("resize expects an NHWC batch")
        height, width = batch.shape[1:3]
        scale = short_side / min(height, width)
        new_h = max(1, int(round(height * scale)))
        new_w = max(1, int(round(width * scale)))
        if (new_h, new_w) == (height, width):
            return batch.copy()
        # Identical tap positions and per-element multiply-add order as
        # ops.bilinear_resize; the batch axis rides in front of every
        # gather and broadcast, so each image's arithmetic is unchanged.
        row_positions = np.linspace(0, height - 1, new_h)
        col_positions = np.linspace(0, width - 1, new_w)
        row0 = np.floor(row_positions).astype(np.int64)
        col0 = np.floor(col_positions).astype(np.int64)
        row1 = np.minimum(row0 + 1, height - 1)
        col1 = np.minimum(col0 + 1, width - 1)
        row_frac = (row_positions - row0)[:, None, None]
        col_frac = (col_positions - col0)[None, :, None]
        data = batch.astype(np.float64)
        top = (data[:, row0][:, :, col0] * (1 - col_frac)
               + data[:, row0][:, :, col1] * col_frac)
        bottom = (data[:, row1][:, :, col0] * (1 - col_frac)
                  + data[:, row1][:, :, col1] * col_frac)
        result = top * (1 - row_frac) + bottom * row_frac
        if np.issubdtype(batch.dtype, np.integer):
            return np.clip(np.round(result), 0, 255).astype(batch.dtype)
        return result.astype(batch.dtype)
    return stage


@register_lowering(CenterCropOp)
def _lower_crop(op: CenterCropOp) -> BatchStage:
    size = op.size

    def stage(batch: np.ndarray) -> np.ndarray:
        height, width = batch.shape[1:3]
        if height < size or width < size:
            raise PreprocessingError(
                f"cannot crop {size}x{size} from {height}x{width}"
            )
        top = (height - size) // 2
        left = (width - size) // 2
        return batch[:, top:top + size, left:left + size].copy()
    return stage


@register_lowering(ConvertDtypeOp)
def _lower_convert(op: ConvertDtypeOp) -> BatchStage:
    target = op.target_dtype

    def stage(batch: np.ndarray) -> np.ndarray:
        return batch.astype(target)
    return stage


def _batched_normalize(batch: np.ndarray, mean: tuple[float, ...],
                       std: tuple[float, ...]) -> np.ndarray:
    data = batch.astype(np.float32) / 255.0
    if data.ndim != 4 or data.shape[3] != len(mean):
        raise PreprocessingError(
            f"normalize expects HWC with {len(mean)} channels, "
            f"got shape {data.shape[1:]}"
        )
    mean_arr = np.asarray(mean, dtype=np.float32)
    std_arr = np.asarray(std, dtype=np.float32)
    return (data - mean_arr) / std_arr


@register_lowering(NormalizeOp)
def _lower_normalize(op: NormalizeOp) -> BatchStage:
    mean, std = op.mean, op.std

    def stage(batch: np.ndarray) -> np.ndarray:
        return _batched_normalize(batch, mean, std)
    return stage


@register_lowering(ChannelReorderOp)
def _lower_reorder(op: ChannelReorderOp) -> BatchStage:
    def stage(batch: np.ndarray) -> np.ndarray:
        if batch.ndim != 4:
            raise PreprocessingError("channel reorder expects an HWC tensor")
        return np.ascontiguousarray(np.transpose(batch, (0, 3, 1, 2)))
    return stage


@register_lowering(FusedNormalizeReorderOp)
def _lower_fused_normalize_reorder(op: FusedNormalizeReorderOp) -> BatchStage:
    mean, std = op.mean, op.std

    def stage(batch: np.ndarray) -> np.ndarray:
        normalized = _batched_normalize(batch, mean, std)
        return np.ascontiguousarray(np.transpose(normalized, (0, 3, 1, 2)))
    return stage
