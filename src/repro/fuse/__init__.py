"""Smol-Fuse: compiled fused batch kernels for the plan hot path.

``compile_dag`` lowers a preprocessing DAG into a :class:`FusedKernel`
executing whole micro-batches as batched numpy array ops (per-op lowerings
live in :mod:`repro.fuse.registry`; ops without one fall back to a batched
interpreter segment), ``get_kernel`` memoizes kernels by plan fingerprint,
and :class:`ShmBatchTransport` moves prediction batches across process
boundaries through zero-copy shared memory.  The interpreted DAG executor
remains the reference oracle: fused results are bit-identical by contract,
enforced by the differential suite in ``tests/fuse/``.
"""

from repro.fuse.compiler import (
    DEFAULT_KERNEL_CACHE,
    KernelCache,
    compile_dag,
    dag_fingerprint,
    get_kernel,
)
from repro.fuse.kernel import FusedKernel, Segment
from repro.fuse.registry import (
    lowering_for,
    register_lowering,
    registered_op_types,
)
from repro.fuse.shm import (
    HAS_SHM,
    ShmBatchRef,
    ShmBatchTransport,
    worker_shm_prefix,
)

__all__ = [
    "DEFAULT_KERNEL_CACHE",
    "FusedKernel",
    "HAS_SHM",
    "KernelCache",
    "Segment",
    "ShmBatchRef",
    "ShmBatchTransport",
    "compile_dag",
    "dag_fingerprint",
    "get_kernel",
    "lowering_for",
    "register_lowering",
    "registered_op_types",
    "worker_shm_prefix",
]
