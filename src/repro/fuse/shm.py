"""Zero-copy shared-memory batch transport for process workers.

The previous ProcessWorker protocol shipped predictions (often float64
scores reinterpreted as int64 bit patterns) through the multiprocessing
queue as a Python tuple -- one boxed int per element, pickled and unpickled
per batch.  This module replaces the payload with a
:class:`multiprocessing.shared_memory` segment: the child writes the
prediction array into a named segment once, the queue carries only a tiny
:class:`ShmBatchRef` descriptor, and the parent maps the segment, copies the
batch out (decoupling array lifetime from the segment), and unlinks it.

Lifecycle rules:

* the **publisher** (child) creates and fills the segment and forgets it --
  ownership transfers with the descriptor;
* the **consumer** (parent) unlinks on attach, so a delivered batch leaves
  nothing behind;
* segments whose descriptor never arrives (worker killed mid-flight) carry
  a per-worker name prefix, and :meth:`ShmBatchTransport.sweep` removes
  every leftover ``/dev/shm`` entry under that prefix -- the parent sweeps
  on kill and close, so crashes cannot leak.

Platforms without ``multiprocessing.shared_memory`` (or callers forcing it)
fall back to inlining the raw bytes in the descriptor; round-trip results
are identical either way, including NaN payloads and subnormals, because
both paths move raw IEEE-754 bytes.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

import numpy as np

try:  # pragma: no cover - import success is the normal path
    from multiprocessing import shared_memory as _shared_memory
    HAS_SHM = True
except ImportError:  # pragma: no cover - exercised via force_inline tests
    _shared_memory = None
    HAS_SHM = False

#: Where POSIX shared memory appears as files (Linux); sweeps scan it.
SHM_DIR = "/dev/shm"


@dataclass(frozen=True)
class ShmBatchRef:
    """Picklable descriptor of one published batch.

    Exactly one of ``name`` (shared-memory segment) or ``inline`` (raw
    bytes fallback) is set; ``shape``/``dtype`` reconstruct the array.
    """

    shape: tuple[int, ...]
    dtype: str
    name: str | None = None
    inline: bytes | None = None

    @property
    def nbytes(self) -> int:
        """Payload size in bytes."""
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape,
                                                               dtype=np.int64)))


class ShmBatchTransport:
    """Publish/attach endpoint of the shared-memory batch channel.

    One transport lives on each side of a worker process boundary, built
    with the same ``prefix``: the child publishes under it, the parent
    attaches by descriptor and sweeps by prefix.  ``force_inline=True``
    (or a platform without shared memory) degrades to inline bytes with
    identical semantics.
    """

    def __init__(self, prefix: str, force_inline: bool = False) -> None:
        if not prefix or "/" in prefix:
            raise ValueError(f"invalid shm prefix {prefix!r}")
        self._prefix = prefix
        self._inline = bool(force_inline) or not HAS_SHM
        self._lock = threading.Lock()
        self._sequence = 0
        self.published = 0
        self.attached = 0
        self.inline_batches = 0
        self.swept = 0

    @property
    def prefix(self) -> str:
        """The per-worker segment name prefix."""
        return self._prefix

    @property
    def uses_shm(self) -> bool:
        """True when batches ride shared memory (not the inline fallback)."""
        return not self._inline

    def _next_name(self) -> str:
        with self._lock:
            self._sequence += 1
            return f"{self._prefix}{self._sequence}"

    def publish(self, array: np.ndarray) -> ShmBatchRef:
        """Publish one array; returns the descriptor to send over the queue."""
        array = np.ascontiguousarray(array)
        shape = tuple(int(dim) for dim in array.shape)
        dtype = array.dtype.str
        if self._inline or array.nbytes == 0:
            with self._lock:
                self.published += 1
                self.inline_batches += 1
            return ShmBatchRef(shape=shape, dtype=dtype,
                               inline=array.tobytes())
        name = self._next_name()
        segment = _shared_memory.SharedMemory(name=name, create=True,
                                              size=array.nbytes)
        try:
            view = np.ndarray(shape, dtype=array.dtype, buffer=segment.buf)
            view[...] = array
            del view
        finally:
            segment.close()
        # Ownership transfers to the consumer: keep this process's resource
        # tracker from unlinking (and warning about) the segment when the
        # publisher exits before the parent has read it.
        _untrack(name)
        with self._lock:
            self.published += 1
        return ShmBatchRef(shape=shape, dtype=dtype, name=name)

    def attach(self, ref: ShmBatchRef) -> np.ndarray:
        """Materialize a published batch; unlinks the segment (shm path).

        The returned array is a private copy, so its lifetime is decoupled
        from the segment.  Raises ``FileNotFoundError`` when the segment
        was already swept (publisher killed and cleaned up).
        """
        if ref.inline is not None:
            with self._lock:
                self.attached += 1
            return np.frombuffer(ref.inline,
                                 dtype=ref.dtype).reshape(ref.shape).copy()
        if not HAS_SHM:  # pragma: no cover - shm ref on a no-shm platform
            raise FileNotFoundError(
                f"segment {ref.name!r}: shared memory unavailable"
            )
        # Attaching registers with this process's resource tracker and the
        # unlink below unregisters -- balanced, so no extra untrack here.
        segment = _shared_memory.SharedMemory(name=ref.name)
        try:
            batch = np.ndarray(ref.shape, dtype=ref.dtype,
                               buffer=segment.buf).copy()
        finally:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - concurrent sweep
                pass
        with self._lock:
            self.attached += 1
        return batch

    def sweep(self) -> list[str]:
        """Remove every leftover segment under this transport's prefix.

        Returns the removed names.  Call after killing the publisher (and
        at close) so in-flight batches whose descriptors never arrived do
        not leak ``/dev/shm`` entries.
        """
        removed: list[str] = []
        if self._inline or not os.path.isdir(SHM_DIR):
            return removed
        try:
            entries = os.listdir(SHM_DIR)
        except OSError:  # pragma: no cover - /dev/shm unreadable
            return removed
        for entry in entries:
            if not entry.startswith(self._prefix):
                continue
            try:
                os.unlink(os.path.join(SHM_DIR, entry))
            except OSError:  # pragma: no cover - concurrent unlink
                continue
            removed.append(entry)
        with self._lock:
            self.swept += len(removed)
        return removed


def _untrack(name: str) -> None:
    """Best-effort: drop ``name`` from this process's resource tracker."""
    try:  # pragma: no cover - tracker internals vary across versions
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


def worker_shm_prefix(worker_id: str, pid: int | None = None) -> str:
    """The deterministic segment prefix for one worker's batches.

    Deterministic given (parent pid, worker id) so the parent can sweep a
    killed child's leftovers without having seen their descriptors.
    """
    if pid is None:
        pid = os.getpid()
    safe = "".join(ch if ch.isalnum() else "-" for ch in worker_id)
    return f"smolfuse-{pid}-{safe}-"
