"""Per-tenant SLO boards on top of the Sentinel burn-rate engine.

The Sentinel :class:`~repro.obs.slo.SloEngine` records every observation
against *all* of its specs -- correct for a single service with layered
windows, wrong for tenants whose traffic must not pollute each other's
error budgets.  The board therefore keeps one engine per tenant, each
with that tenant's own latency target (derived from its priority class's
default deadline unless overridden), and routes observations by tenant
name.  Burn-rate alerts come out tagged ``slo.burn/<tenant>`` so the
Sentinel analytics and flight recorder attribute them per tenant.
"""

from __future__ import annotations

import time

from repro.errors import TenantError
from repro.obs import NULL_OBS
from repro.obs.slo import DEFAULT_WINDOWS, SloEngine, SloSpec
from repro.tenant.spec import TenantConfig

__all__ = ["TenantSloBoard"]


class TenantSloBoard:
    """One burn-rate SLO engine per tenant of a :class:`TenantConfig`.

    ``fallback_target_s`` prices tenants whose priority class has no
    default deadline (e.g. ``batch``): they still get a board, just with
    a loose target, so a flooded batch tenant's burn is visible without
    paging anyone about latency it never promised.
    """

    def __init__(self, config: TenantConfig,
                 fallback_target_s: float = 1.0,
                 objective: float = 0.99,
                 windows=DEFAULT_WINDOWS,
                 capacity: int = 65536,
                 clock=time.monotonic) -> None:
        if fallback_target_s <= 0:
            raise TenantError("fallback_target_s must be positive")
        self._engines: dict[str, SloEngine] = {}
        self._default = (config.default_spec.name
                         if config.default_spec else None)
        for spec in config.all_specs():
            policy = config.policy(spec.priority)
            target = policy.default_deadline_s or fallback_target_s
            self._engines[spec.name] = SloEngine(
                (SloSpec(name=spec.name, latency_target_s=target,
                         objective=objective, windows=windows),),
                capacity=capacity, clock=clock,
            )

    @property
    def tenants(self) -> tuple[str, ...]:
        """Tenant names with a board (config tenants + the default)."""
        return tuple(self._engines)

    def attach(self, obs) -> None:
        """Route every tenant engine's burn alerts into ``obs``."""
        for engine in self._engines.values():
            engine.attach(obs if obs is not None else NULL_OBS)

    def observe(self, tenant: str, latency_s: float, error: bool = False,
                now: float | None = None) -> None:
        """Record one served request against ``tenant``'s budget.

        Unknown tenants fall through to the default board when one
        exists, mirroring :meth:`TenantConfig.resolve`; with no default,
        the observation is dropped (SLOs are advisory -- never fail the
        serving path over accounting).
        """
        engine = self._engines.get(tenant)
        if engine is None and self._default is not None:
            engine = self._engines.get(self._default)
        if engine is not None:
            engine.observe(latency_s, error=error, now=now)

    def evaluate(self, now: float | None = None) -> list:
        """Run burn-rate evaluation on every board; returns new alerts."""
        alerts = []
        for engine in self._engines.values():
            alerts.extend(engine.evaluate(now=now))
        return alerts

    def state(self) -> dict[str, dict]:
        """Per-tenant SLO state (burn rates, budgets, alert status)."""
        return {name: engine.state()
                for name, engine in self._engines.items()}
