"""Multi-tenant SLO-aware serving: quotas, weighted-fair scheduling,
deadline-aware plan selection, and per-tenant burn-rate boards.

The package layers four mechanisms onto the single-tenant server:

* :mod:`repro.tenant.spec` -- tenant and priority-class declarations
  (:class:`TenantConfig` is what ``SmolServer(tenants=...)`` accepts);
* :mod:`repro.tenant.quota` -- per-tenant token-bucket rate limits and
  in-flight caps at admission (:class:`QuotaGate`);
* :mod:`repro.tenant.scheduler` -- deficit-round-robin micro-batching
  over per-class queues, replacing the FIFO path (:class:`DrrScheduler`);
* :mod:`repro.tenant.deadline` -- a pre-warmed ladder of plan renditions
  consulted when a batch's deadline budget can't afford the current plan
  (:class:`PlanLadder`);
* :mod:`repro.tenant.slo` -- one Sentinel burn-rate engine per tenant
  (:class:`TenantSloBoard`).
"""

from repro.tenant.deadline import LadderRung, PlanLadder
from repro.tenant.quota import QuotaGate, TenantQuotaStats, TokenBucket
from repro.tenant.scheduler import ClassBatch, DrrScheduler
from repro.tenant.slo import TenantSloBoard
from repro.tenant.spec import (
    DEFAULT_CLASSES,
    PRIORITY_CLASSES,
    ClassPolicy,
    TenantConfig,
    TenantSpec,
)

__all__ = [
    "PRIORITY_CLASSES",
    "DEFAULT_CLASSES",
    "ClassPolicy",
    "TenantSpec",
    "TenantConfig",
    "TokenBucket",
    "QuotaGate",
    "TenantQuotaStats",
    "ClassBatch",
    "DrrScheduler",
    "LadderRung",
    "PlanLadder",
    "TenantSloBoard",
]
