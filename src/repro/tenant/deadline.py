"""Deadline-aware plan selection: a ladder of pre-warmed renditions.

When a micro-batch's tightest remaining deadline cannot afford the
current plan's modelled execution time, the server asks the
:class:`PlanLadder` for a cheaper rendition instead of knowingly missing
the deadline.  The ladder holds a small set of pre-warmed sessions along
the planner's Pareto frontier, ordered slowest (most accurate) first --
on the frontier, throughput and accuracy are monotone against each
other, so "first rung that fits the budget" is also "most accurate plan
that fits the budget".

Selection is pure arithmetic over modelled per-image costs and therefore
deterministic: the golden-trace test replays a tight-deadline request
and asserts both the chosen rung and that its predictions are
bit-identical to that plan's serial oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ServingError, TenantError
from repro.serving.session import EngineSession

__all__ = ["LadderRung", "PlanLadder"]


@dataclass(frozen=True)
class LadderRung:
    """One pre-warmed rendition of the serving plan."""

    session: EngineSession
    per_image_s: float

    def __post_init__(self) -> None:
        if self.per_image_s <= 0:
            raise TenantError("per_image_s must be positive")

    @property
    def plan_key(self) -> str:
        """The rung's plan identity (cache key / oracle key)."""
        return self.session.plan_key


class PlanLadder:
    """Pre-warmed plan renditions ordered slowest (most accurate) first.

    ``safety`` inflates the modelled batch cost before comparing it to
    the deadline budget, absorbing modelling error: a rung *fits* when
    ``per_image_s * batch_size * safety <= budget``.
    """

    def __init__(self, rungs: Sequence[LadderRung],
                 safety: float = 1.25) -> None:
        if not rungs:
            raise TenantError("PlanLadder needs at least one rung")
        if safety < 1.0:
            raise TenantError("safety multiplier must be >= 1")
        ordered = sorted(rungs, key=lambda r: -r.per_image_s)
        keys = [r.plan_key for r in ordered]
        if len(set(keys)) != len(keys):
            raise TenantError(f"duplicate ladder plan keys: {sorted(keys)}")
        self._rungs = tuple(ordered)
        self._safety = safety
        self._downgrades = 0

    @property
    def rungs(self) -> tuple[LadderRung, ...]:
        """Rungs, slowest first."""
        return self._rungs

    @property
    def downgrades(self) -> int:
        """How many selections moved off the requested plan."""
        return self._downgrades

    def select(self, current: EngineSession, budget_s: float | None,
               batch_size: int) -> EngineSession:
        """The session to execute a batch of ``batch_size`` under ``budget_s``.

        ``budget_s`` is the tightest remaining deadline across the batch
        (None when no request carries a deadline -- keep the current
        plan).  Returns ``current`` when it fits; otherwise the slowest
        rung that fits; otherwise the fastest rung (best effort: a
        doomed deadline still deserves the cheapest miss).
        """
        if budget_s is None or batch_size <= 0:
            return current
        if self._fits(self._cost_of(current), batch_size, budget_s):
            return current
        for rung in self._rungs:
            if self._fits(rung.per_image_s, batch_size, budget_s):
                if rung.session is not current:
                    self._downgrades += 1
                return rung.session
        fastest = self._rungs[-1].session
        if fastest is not current:
            self._downgrades += 1
        return fastest

    def _fits(self, per_image_s: float | None, batch_size: int,
              budget_s: float) -> bool:
        if per_image_s is None:
            # Unpriceable session (e.g. not warmed): never declared
            # fitting, so selection falls through to a priced rung.
            return False
        return per_image_s * batch_size * self._safety <= budget_s

    def _cost_of(self, session: EngineSession) -> float | None:
        for rung in self._rungs:
            if rung.session is session:
                return rung.per_image_s
        throughput = getattr(session, "modelled_throughput", None)
        try:
            return 1.0 / throughput if throughput else None
        except ServingError:
            return None

    def describe(self) -> str:
        """Human-readable rung table."""
        return " > ".join(
            f"{r.plan_key} ({r.per_image_s * 1e3:.3f} ms/img)"
            for r in self._rungs)

    @classmethod
    def from_sessions(cls, sessions: Sequence[EngineSession],
                      safety: float = 1.25) -> "PlanLadder":
        """Build a ladder from warmed sessions exposing modelled throughput."""
        rungs = []
        for session in sessions:
            if not session.warmed:
                session.warmup()
            throughput = getattr(session, "modelled_throughput", None)
            if not throughput:
                raise TenantError(
                    f"session {session.plan_key!r} has no modelled "
                    "throughput; ladder rungs must be priceable")
            rungs.append(LadderRung(session, 1.0 / throughput))
        return cls(rungs, safety=safety)

    @classmethod
    def from_planner(cls, planner, performance_model, config=None,
                     max_rungs: int = 3, safety: float = 1.25,
                     ) -> "PlanLadder":
        """Build a ladder from the planner's Pareto frontier.

        Takes up to ``max_rungs`` plans spread evenly along the frontier
        (always including the slowest/most-accurate and fastest ends) and
        pre-warms a simulated session per rung.
        """
        from repro.serving.session import SimulatedSession

        frontier = planner.pareto_frontier()
        if not frontier:
            raise TenantError("planner returned an empty Pareto frontier")
        count = min(max_rungs, len(frontier))
        if count == 1:
            picks = [frontier[0]]
        else:
            step = (len(frontier) - 1) / (count - 1)
            picks = [frontier[round(i * step)] for i in range(count)]
        sessions = []
        seen = set()
        for estimate in picks:
            session = SimulatedSession(estimate.plan, performance_model,
                                       config=config)
            session.warmup()
            if session.plan_key in seen:
                continue
            seen.add(session.plan_key)
            sessions.append(session)
        return cls.from_sessions(sessions, safety=safety)
