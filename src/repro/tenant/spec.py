"""Tenant and priority-class declarations for multi-tenant serving.

A :class:`TenantSpec` names one tenant, assigns it a priority class, and
states its admission quota (token-bucket rate + burst, plus an optional
in-flight cap).  A :class:`ClassPolicy` describes one priority class: its
weighted-fair share of the micro-batch scheduler, its visit rank, and the
default latency deadline applied to requests that arrive without one.  A
:class:`TenantConfig` bundles both and is what :class:`~repro.serving
.server.SmolServer` accepts as ``tenants=``.

The three canonical classes mirror production serving tiers:

========== ====== =====================================================
interactive  8x   user-facing point lookups; tight default deadline
standard     4x   API traffic; moderate deadline
batch        1x   offline backfill; no deadline, absorbs leftover share
========== ====== =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TenantError

__all__ = [
    "PRIORITY_CLASSES",
    "ClassPolicy",
    "DEFAULT_CLASSES",
    "TenantSpec",
    "TenantConfig",
]

#: Canonical priority-class names, highest priority first.
PRIORITY_CLASSES = ("interactive", "standard", "batch")


@dataclass(frozen=True)
class ClassPolicy:
    """One priority class of the weighted-fair micro-batch scheduler.

    Attributes
    ----------
    name:
        Class label (``interactive`` / ``standard`` / ``batch`` by
        convention, but any non-empty name works).
    weight:
        Relative share of micro-batch capacity under contention; the
        scheduler's per-round quantum is proportional to it.
    rank:
        Visit order within a scheduling round (lower ranks are offered
        their quantum first, so ties in backlog favor latency-sensitive
        classes).
    default_deadline_s:
        Deadline stamped on requests of this class that arrive without
        one; None leaves requests deadline-free.
    """

    name: str
    weight: float
    rank: int
    default_deadline_s: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise TenantError("class name must be non-empty")
        if self.weight <= 0:
            raise TenantError("class weight must be positive")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise TenantError("default_deadline_s must be positive when set")


#: The canonical interactive/standard/batch ladder (weights 8/4/1).
DEFAULT_CLASSES: tuple[ClassPolicy, ...] = (
    ClassPolicy("interactive", weight=8.0, rank=0, default_deadline_s=0.05),
    ClassPolicy("standard", weight=4.0, rank=1, default_deadline_s=0.25),
    ClassPolicy("batch", weight=1.0, rank=2, default_deadline_s=None),
)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: identity, priority class, and admission quota.

    Attributes
    ----------
    name:
        Tenant identifier (matched against ``InferenceRequest.tenant``).
    priority:
        Priority-class name this tenant's requests are scheduled under.
    rate_per_s:
        Token-bucket refill rate for admission; None disables rate
        limiting for this tenant.
    burst:
        Token-bucket capacity (requests admitted back to back after an
        idle period).
    max_in_flight:
        Cap on this tenant's admitted-but-unresolved requests; None
        disables the cap.
    """

    name: str
    priority: str = "standard"
    rate_per_s: float | None = None
    burst: int = 32
    max_in_flight: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise TenantError("tenant name must be non-empty")
        if self.rate_per_s is not None and self.rate_per_s <= 0:
            raise TenantError("rate_per_s must be positive when set")
        if self.burst < 1:
            raise TenantError("burst must be at least 1")
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise TenantError("max_in_flight must be at least 1 when set")


@dataclass(frozen=True)
class TenantConfig:
    """The full multi-tenant serving configuration.

    ``default_spec`` handles requests whose tenant is unknown (including
    the empty tenant of single-tenant callers): they share one spec --
    and therefore one quota bucket -- instead of minting unbounded
    per-stranger state.  Pass ``default_spec=None`` to reject unknown
    tenants outright.
    """

    tenants: tuple[TenantSpec, ...]
    classes: tuple[ClassPolicy, ...] = DEFAULT_CLASSES
    default_spec: TenantSpec | None = field(
        default_factory=lambda: TenantSpec(name="*"))

    def __post_init__(self) -> None:
        if not self.tenants:
            raise TenantError("TenantConfig needs at least one tenant")
        if not self.classes:
            raise TenantError("TenantConfig needs at least one class")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise TenantError(f"duplicate tenant names: {sorted(names)}")
        class_names = [c.name for c in self.classes]
        if len(set(class_names)) != len(class_names):
            raise TenantError(
                f"duplicate class names: {sorted(class_names)}")
        known = set(class_names)
        for spec in self.tenants + ((self.default_spec,)
                                    if self.default_spec else ()):
            if spec.priority not in known:
                raise TenantError(
                    f"tenant {spec.name!r} uses unknown class "
                    f"{spec.priority!r} (have {sorted(known)})")

    def resolve(self, tenant: str) -> TenantSpec:
        """The spec serving ``tenant`` (the default spec for strangers)."""
        for spec in self.tenants:
            if spec.name == tenant:
                return spec
        if self.default_spec is None:
            raise TenantError(f"unknown tenant {tenant!r} and no default "
                              "spec configured")
        return self.default_spec

    def policy(self, class_name: str) -> ClassPolicy:
        """The :class:`ClassPolicy` named ``class_name``."""
        for policy in self.classes:
            if policy.name == class_name:
                return policy
        raise TenantError(f"unknown priority class {class_name!r}")

    def all_specs(self) -> tuple[TenantSpec, ...]:
        """Every spec needing quota state (tenants + the default)."""
        if self.default_spec is None:
            return self.tenants
        return self.tenants + (self.default_spec,)
