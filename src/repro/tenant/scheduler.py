"""Deficit-round-robin micro-batch scheduling over per-class queues.

Replaces the single FIFO admission path for multi-tenant servers: one
bounded queue per priority class, drained by a deficit-round-robin (DRR)
scan.  Each class holds a *deficit* counter; when the scan reaches a
backlogged class it adds the class's *quantum* (proportional to its
weight, normalized so the heaviest class earns one full micro-batch per
round) and serves up to ``floor(deficit)`` requests, carrying any
fraction to the class's next turn.  A class's deficit resets when its
queue empties, so idle classes cannot bank credit.

Two properties the test net enforces fall straight out of the
arithmetic:

* **work conservation** -- the scan always lands on *some* backlogged
  class and ``deficit >= quantum >= 1`` after the top-up, so a
  ``next_batch`` call never returns empty while any queue holds work;
* **bounded unfairness** -- under saturation the residual deficit after
  a serve is the fractional part (< 1 request), so over any window a
  class's served count stays within one micro-batch of its weighted
  share.

The scheduler presents the same surface the server's classic
queue+batcher pair does (``admit`` / ``next_batch`` / ``close`` /
``stats``), so :class:`~repro.serving.server.SmolServer` swaps it in
without touching the serving loop.  Two chaos seams mirror the classic
path's: ``tenant.enqueue`` fires on the submitter's thread before an
item enters its class queue, and ``tenant.batch`` at the top of every
``next_batch`` attempt before anything is dequeued.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Generic, Sequence, TypeVar

from repro.chaos.faults import NULL_FAULTS
from repro.errors import AdmissionError, TenantError
from repro.inference.mpmc import QueueClosed
from repro.obs import NULL_OBS
from repro.serving.batcher import BatcherStats, BatchPolicy
from repro.serving.request import monotonic
from repro.tenant.spec import ClassPolicy

T = TypeVar("T")

__all__ = ["ClassBatch", "DrrScheduler"]


class ClassBatch(list):
    """A micro-batch tagged with the priority class it was drawn from.

    A plain ``list`` subclass so every consumer of the classic batcher's
    batches (the serving loop, session execution) handles it unchanged;
    the ``class_name`` attribute rides along for per-class telemetry and
    deadline-aware plan selection.
    """

    def __init__(self, class_name: str, items: Sequence) -> None:
        super().__init__(items)
        self.class_name = class_name


class _ClassState(Generic[T]):
    """One class's queue + DRR bookkeeping (guarded by the scheduler lock)."""

    __slots__ = ("policy", "queue", "deficit", "quantum", "served",
                 "admitted", "rejected")

    def __init__(self, policy: ClassPolicy, quantum: float) -> None:
        self.policy = policy
        self.queue: deque[T] = deque()
        self.deficit = 0.0
        self.quantum = quantum
        self.served = 0
        self.admitted = 0
        self.rejected = 0


class DrrScheduler(Generic[T]):
    """Weighted-fair (deficit round-robin) replacement for the FIFO path.

    Parameters
    ----------
    classes:
        The priority classes (visited in ``rank`` order each round).
    policy:
        Micro-batching shape: ``max_batch_size`` caps every batch and
        ``max_wait_ms`` bounds how long a lone batch waits for company
        (the wait only happens when *every* queue is otherwise empty, so
        waiting never idles past available work).
    capacity:
        Bound on queued items per class (backpressure depth).
    class_of:
        Maps an admitted item to its class name; defaults to reading the
        item's ``class_name`` attribute.
    obs / faults:
        Observability + chaos seams (``tenant.enqueue`` /
        ``tenant.batch``).
    """

    def __init__(self, classes: Sequence[ClassPolicy], policy: BatchPolicy,
                 capacity: int = 256,
                 class_of: Callable[[T], str] | None = None,
                 obs=NULL_OBS, faults=NULL_FAULTS) -> None:
        if not classes:
            raise TenantError("DrrScheduler needs at least one class")
        if capacity < 1:
            raise TenantError("capacity must be at least 1")
        self._policy = policy
        self._capacity = capacity
        self._class_of = class_of or (lambda item: item.class_name)
        self._faults = faults if faults is not None else NULL_FAULTS
        ordered = sorted(classes, key=lambda c: (c.rank, c.name))
        max_weight = max(c.weight for c in ordered)
        # The heaviest class earns one full micro-batch per round; every
        # quantum is >= 1 so any visited backlogged class serves at least
        # one request (work conservation).
        self._states: dict[str, _ClassState[T]] = {
            c.name: _ClassState(c, max(
                1.0, policy.max_batch_size * c.weight / max_weight))
            for c in ordered
        }
        self._order = [c.name for c in ordered]
        self._cursor = 0
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._closed = False
        self._stats = BatcherStats()
        self._depth_metric = obs.gauge("tenant_queue_depth")
        self._batches_metric = obs.counter("tenant_batches_total",
                                           policy=policy.name)

    # ------------------------------------------------------------------
    # Producer side (AdmissionQueue-compatible)
    # ------------------------------------------------------------------
    @property
    def policy(self) -> BatchPolicy:
        """The active micro-batching policy."""
        return self._policy

    @property
    def capacity(self) -> int:
        """Per-class bound on queued items."""
        return self._capacity

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return sum(len(s.queue) for s in self._states.values())

    def admit(self, item: T, block: bool = True,
              timeout: float | None = None) -> None:
        """Enqueue ``item`` on its class queue, applying backpressure.

        Mirrors :meth:`~repro.serving.queue.AdmissionQueue.admit`: a full
        class queue blocks the caller (``block=True``) or raises
        :class:`AdmissionError` (``block=False``); :class:`QueueClosed`
        propagates once the scheduler is closed.
        """
        name = self._class_of(item)
        # Chaos seam: before the enqueue, so a raise is a clean shed (the
        # item never entered a queue) and a stall backpressures the
        # submitting thread -- same contract as ``serving.admit``.
        self._faults.hit("tenant.enqueue", scheduler=self, class_name=name)
        deadline = None if timeout is None else monotonic() + timeout
        with self._cond:
            state = self._states.get(name)
            if state is None:
                raise TenantError(f"unknown priority class {name!r}")
            while True:
                if self._closed:
                    raise QueueClosed("scheduler is closed")
                if len(state.queue) < self._capacity:
                    break
                if not block:
                    state.rejected += 1
                    self._stats_rejected += 1
                    raise AdmissionError(
                        f"class {name!r} queue full "
                        f"({self._capacity} pending)")
                remaining = None if deadline is None \
                    else deadline - monotonic()
                if remaining is not None and remaining <= 0:
                    state.rejected += 1
                    self._stats_rejected += 1
                    raise AdmissionError(
                        f"class {name!r} admission timed out after "
                        f"{timeout}s")
                self._cond.wait(remaining)
            state.queue.append(item)
            state.admitted += 1
            self._stats_admitted += 1
            self._depth_metric.set(
                sum(len(s.queue) for s in self._states.values()))
            self._cond.notify_all()

    # Plain counters named to match AdmissionQueue.stats() keys.
    _stats_admitted = 0
    _stats_rejected = 0

    def close(self) -> None:
        """Stop admissions; :meth:`next_batch` drains what remains."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Consumer side (MicroBatcher-compatible)
    # ------------------------------------------------------------------
    def next_batch(self, poll_timeout: float = 0.1) -> ClassBatch | None:
        """Form the next micro-batch by deficit round-robin.

        Returns ``None`` once closed and fully drained, an empty list when
        ``poll_timeout`` expires with every queue empty, and otherwise a
        :class:`ClassBatch` from the chosen class.
        """
        # Chaos seam: before any dequeue, so an injected raise aborts the
        # attempt with no request in hand (the serving loop retries).
        self._faults.hit("tenant.batch", scheduler=self)
        with self._cond:
            deadline = monotonic() + poll_timeout
            while True:
                name = self._next_backlogged()
                if name is not None:
                    break
                if self._closed:
                    return None
                remaining = deadline - monotonic()
                if remaining <= 0:
                    return []
                self._cond.wait(remaining)
            state = self._states[name]
            state.deficit = min(
                state.deficit + state.quantum,
                state.quantum + self._policy.max_batch_size)
            allowance = min(int(state.deficit),
                            self._policy.max_batch_size)
            take = min(allowance, len(state.queue))
            batch: list[T] = [state.queue.popleft() for _ in range(take)]
            batch += self._wait_fill(state, len(batch))
            state.deficit = max(0.0, state.deficit - len(batch))
            if not state.queue:
                # An emptied class banks nothing: credit accrues only
                # against real backlog.
                state.deficit = 0.0
            state.served += len(batch)
            self._record(batch)
            self._cond.notify_all()
            return ClassBatch(name, batch)

    def _next_backlogged(self) -> str | None:
        """Advance the DRR cursor to the next class with queued work."""
        for step in range(len(self._order)):
            index = (self._cursor + step) % len(self._order)
            name = self._order[index]
            if self._states[name].queue:
                self._cursor = (index + 1) % len(self._order)
                return name
        return None

    def _wait_fill(self, state: _ClassState[T], have: int) -> list[T]:
        """Under light load, hold the batch open for stragglers.

        Only waits while *every* queue is empty -- the moment any class
        has queued work the batch ships, so the wait can never idle the
        scheduler past available work (the work-conservation property).
        Called with the lock held.
        """
        extras: list[T] = []
        if have >= self._policy.max_batch_size \
                or self._policy.max_wait_ms <= 0:
            return extras
        deadline = monotonic() + self._policy.max_wait_ms / 1000.0
        while have + len(extras) < self._policy.max_batch_size:
            if any(s.queue for s in self._states.values()
                   if s is not state):
                break
            while state.queue \
                    and have + len(extras) < self._policy.max_batch_size:
                extras.append(state.queue.popleft())
            if state.queue or self._closed:
                break
            remaining = deadline - monotonic()
            if remaining <= 0:
                break
            self._cond.wait(remaining)
        return extras

    def _record(self, batch: list[T]) -> None:
        self._stats.batches += 1
        self._stats.items += len(batch)
        if len(batch) == self._policy.max_batch_size:
            self._stats.full_batches += 1
        else:
            self._stats.timeout_batches += 1
        size = len(batch)
        self._stats.size_histogram[size] = (
            self._stats.size_histogram.get(size, 0) + 1)
        self._batches_metric.inc()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def batch_stats(self) -> BatcherStats:
        """Micro-batch counters (the classic batcher's shape)."""
        with self._lock:
            return BatcherStats(
                batches=self._stats.batches,
                items=self._stats.items,
                full_batches=self._stats.full_batches,
                timeout_batches=self._stats.timeout_batches,
                size_histogram=dict(self._stats.size_histogram),
            )

    def stats(self) -> dict:
        """Admission counters plus per-class DRR state.

        Key-compatible with :meth:`AdmissionQueue.stats` (``admitted`` /
        ``rejected``) so the server's scorecard code reads either.
        """
        with self._lock:
            return {
                "admitted": self._stats_admitted,
                "rejected": self._stats_rejected,
                "classes": {
                    name: {
                        "depth": len(state.queue),
                        "served": state.served,
                        "admitted": state.admitted,
                        "rejected": state.rejected,
                        "deficit": state.deficit,
                        "quantum": state.quantum,
                        "weight": state.policy.weight,
                    }
                    for name, state in self._states.items()
                },
            }
