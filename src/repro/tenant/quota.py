"""Per-tenant admission quotas: token-bucket rate limits + in-flight caps.

The :class:`TokenBucket` is the textbook shaper: capacity ``burst``
tokens, refilled continuously at ``rate_per_s``, one token per admitted
request.  It is clock-injected so tests (and the hypothesis monotonicity
property) drive it with a virtual clock.

Admission-count monotonicity is a real theorem of this implementation and
the property suite gates it: replaying any arrival sequence against a
bucket with an equal-or-greater (rate, burst) admits a superset-sized
prefix at every step.  The inductive invariant is
``admitted_hi >= admitted_lo`` *and* ``admitted_hi + tokens_hi >=
admitted_lo + tokens_lo`` -- each refill preserves the second clause
(the bigger bucket refills at least as fast and caps at least as high),
and each arrival either keeps both counts in step or spends from the
bigger bucket's provable surplus.

:class:`QuotaGate` holds one bucket and one in-flight counter per
configured tenant and is what the server consults on every submit.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import QuotaExceededError, TenantError
from repro.tenant.spec import TenantConfig, TenantSpec

__all__ = ["TokenBucket", "QuotaGate", "TenantQuotaStats"]


class TokenBucket:
    """Continuous-refill token bucket (``rate_per_s`` tokens/s, cap ``burst``).

    Not thread-safe on its own; :class:`QuotaGate` serializes access.
    """

    def __init__(self, rate_per_s: float, burst: int,
                 clock=time.monotonic) -> None:
        if rate_per_s <= 0:
            raise TenantError("rate_per_s must be positive")
        if burst < 1:
            raise TenantError("burst must be at least 1")
        self._rate = rate_per_s
        self._burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._refilled_at = clock()

    @property
    def tokens(self) -> float:
        """Tokens available right now (refilled to the current clock)."""
        self._refill(self._clock())
        return self._tokens

    def _refill(self, now: float) -> None:
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(self._burst,
                               self._tokens + elapsed * self._rate)
        self._refilled_at = now

    def try_acquire(self, now: float | None = None) -> bool:
        """Spend one token if available; False when the bucket is dry."""
        self._refill(self._clock() if now is None else now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class TenantQuotaStats:
    """Lifetime admission counters for one tenant."""

    tenant: str
    admitted: int
    throttled_rate: int
    throttled_in_flight: int
    in_flight: int

    @property
    def throttled(self) -> int:
        """Total requests shed by this tenant's quota."""
        return self.throttled_rate + self.throttled_in_flight


class _TenantState:
    """Mutable per-tenant quota state (guarded by the gate's lock)."""

    __slots__ = ("spec", "bucket", "in_flight", "admitted",
                 "throttled_rate", "throttled_in_flight")

    def __init__(self, spec: TenantSpec, clock) -> None:
        self.spec = spec
        self.bucket = (TokenBucket(spec.rate_per_s, spec.burst, clock=clock)
                       if spec.rate_per_s is not None else None)
        self.in_flight = 0
        self.admitted = 0
        self.throttled_rate = 0
        self.throttled_in_flight = 0


class QuotaGate:
    """Admission quotas for every tenant of a :class:`TenantConfig`.

    ``admit`` raises :class:`~repro.errors.QuotaExceededError` when the
    tenant's token bucket is dry or its in-flight cap is reached; a
    successful admit must be paired with exactly one :meth:`release`
    when the request resolves, fails, or is cancelled.
    """

    def __init__(self, config: TenantConfig, clock=time.monotonic) -> None:
        self._lock = threading.Lock()
        self._states = {spec.name: _TenantState(spec, clock)
                        for spec in config.all_specs()}

    def admit(self, tenant: str, now: float | None = None) -> None:
        """Charge one request against ``tenant``'s quota or raise."""
        with self._lock:
            state = self._states.get(tenant)
            if state is None:
                raise TenantError(f"no quota state for tenant {tenant!r}")
            spec = state.spec
            if spec.max_in_flight is not None \
                    and state.in_flight >= spec.max_in_flight:
                state.throttled_in_flight += 1
                raise QuotaExceededError(
                    f"tenant {tenant!r} at its in-flight cap "
                    f"({spec.max_in_flight})")
            if state.bucket is not None \
                    and not state.bucket.try_acquire(now):
                state.throttled_rate += 1
                raise QuotaExceededError(
                    f"tenant {tenant!r} exceeded its admission rate "
                    f"({spec.rate_per_s}/s, burst {spec.burst})")
            state.in_flight += 1
            state.admitted += 1

    def release(self, tenant: str) -> None:
        """Return one in-flight slot (request resolved or failed)."""
        with self._lock:
            state = self._states.get(tenant)
            if state is not None and state.in_flight > 0:
                state.in_flight -= 1

    def stats(self) -> dict[str, TenantQuotaStats]:
        """Per-tenant lifetime admission counters."""
        with self._lock:
            return {
                name: TenantQuotaStats(
                    tenant=name, admitted=state.admitted,
                    throttled_rate=state.throttled_rate,
                    throttled_in_flight=state.throttled_in_flight,
                    in_flight=state.in_flight,
                )
                for name, state in self._states.items()
            }
