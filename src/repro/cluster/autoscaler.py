"""Queue-depth-driven autoscaling of the worker pool.

The autoscaler watches the dispatcher's backlog (queued items across live
replicas plus parked items) and keeps the mean backlog per replica inside a
band: above ``scale_up_depth`` it adds a replica, at or below
``scale_down_depth`` it gracefully retires one, always staying within
``[min_workers, max_workers]`` and observing a cooldown between actions so
one burst cannot thrash the pool.  The clock is injectable so tests can step
through cooldowns deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import ClusterError


@dataclass(frozen=True)
class AutoscalePolicy:
    """Bounds and thresholds for one autoscaler.

    Attributes
    ----------
    min_workers / max_workers:
        Inclusive pool-size bounds.
    scale_up_depth:
        Mean queued items per replica above which the pool grows.
    scale_down_depth:
        Mean queued items per replica at or below which the pool shrinks.
    cooldown_s:
        Minimum seconds between two scaling actions.
    """

    min_workers: int = 1
    max_workers: int = 8
    scale_up_depth: float = 4.0
    scale_down_depth: float = 0.5
    cooldown_s: float = 0.5

    def __post_init__(self) -> None:
        if self.min_workers <= 0:
            raise ClusterError("min_workers must be positive")
        if self.max_workers < self.min_workers:
            raise ClusterError("max_workers must be >= min_workers")
        if self.scale_down_depth >= self.scale_up_depth:
            raise ClusterError(
                "scale_down_depth must be below scale_up_depth"
            )
        if self.cooldown_s < 0:
            raise ClusterError("cooldown_s must be non-negative")


@dataclass(frozen=True)
class ScaleEvent:
    """One scaling action the autoscaler took."""

    at_s: float
    action: str  # "up" or "down"
    pool_size: int
    backlog: int


class Autoscaler:
    """Grows/shrinks a dispatcher's worker pool from its queue depths.

    ``evaluate()`` performs at most one scaling action per call; the
    dispatcher's monitor thread calls it on every health pass when attached
    via :meth:`Dispatcher.attach_autoscaler`, and tests call it directly.
    """

    def __init__(self, dispatcher, policy: AutoscalePolicy | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._dispatcher = dispatcher
        self._policy = policy or AutoscalePolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._last_action_at = float("-inf")
        self._events: list[ScaleEvent] = []

    @property
    def policy(self) -> AutoscalePolicy:
        """The active scaling policy."""
        return self._policy

    def events(self) -> list[ScaleEvent]:
        """The scaling actions taken so far (oldest first)."""
        with self._lock:
            return list(self._events)

    def evaluate(self) -> int:
        """Inspect the backlog and take at most one action.

        Returns +1 (grew), -1 (shrank), or 0 (no action).
        """
        with self._lock:
            now = self._clock()
            if now - self._last_action_at < self._policy.cooldown_s:
                return 0
            live = len(self._dispatcher.live_workers())
            backlog = self._dispatcher.backlog()
            if live == 0:
                # Health monitoring owns replacing dead pools; scaling
                # decisions need at least one live replica as a baseline.
                if self._policy.min_workers > 0:
                    self._dispatcher.add_worker()
                    self._record(now, "up", backlog)
                    return 1
                return 0
            per_worker = backlog / live
            if per_worker > self._policy.scale_up_depth \
                    and live < self._policy.max_workers:
                self._dispatcher.add_worker()
                self._record(now, "up", backlog)
                return 1
            if per_worker <= self._policy.scale_down_depth \
                    and live > self._policy.min_workers:
                if self._dispatcher.retire_worker() is not None:
                    self._record(now, "down", backlog)
                    return -1
            return 0

    def _record(self, now: float, action: str, backlog: int) -> None:
        self._last_action_at = now
        self._events.append(ScaleEvent(
            at_s=now, action=action,
            pool_size=len(self._dispatcher.live_workers()),
            backlog=backlog,
        ))
