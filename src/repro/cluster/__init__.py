"""Smol-Cluster: the sharded multi-worker execution runtime.

Scales the single-session engine (offline) and Smol-Serve (online) across a
pool of plan-warmed replicas:

* :mod:`repro.cluster.worker` -- :class:`Worker` replicas wrapping a warmed
  engine session behind input/output queues (thread-backed, plus a
  process-backed variant for the simulated engine).
* :mod:`repro.cluster.router` -- :class:`ShardRouter` policies: round-robin
  and consistent hashing keyed on the request/image id.
* :mod:`repro.cluster.health` -- per-replica circuit breakers.
* :mod:`repro.cluster.dispatcher` -- the replica-aware :class:`Dispatcher`:
  heartbeat health checks, circuit breaking, and automatic failover of
  in-flight work when a replica dies.
* :mod:`repro.cluster.autoscaler` -- queue-depth-driven pool scaling
  between min/max bounds.
* :mod:`repro.cluster.runner` -- sharded offline corpus runs whose
  per-shard aggregates (counts, means, confusion matrices) merge into
  exact global results.

The dispatcher plugs into :class:`~repro.serving.server.SmolServer` as a
drop-in backend (``SmolServer(cluster=dispatcher)``), so online traffic and
offline corpus runs share one execution tier.
"""

from repro.cluster.autoscaler import AutoscalePolicy, Autoscaler, ScaleEvent
from repro.cluster.dispatcher import (
    ClusterResult,
    Dispatcher,
    DispatcherStats,
)
from repro.cluster.health import BreakerSnapshot, BreakerState, CircuitBreaker
from repro.cluster.router import (
    ROUTER_POLICIES,
    ConsistentHashRouter,
    RoundRobinRouter,
    ShardRouter,
    make_router,
)
from repro.cluster.runner import (
    SHARD_POLICIES,
    CorpusRunReport,
    LabeledExample,
    ShardAggregate,
    ShardedCorpusRunner,
    assign_shards,
    run_single_process,
    split_frame_ranges,
)
from repro.cluster.worker import (
    ProcessWorker,
    SessionSpec,
    ThreadWorker,
    Worker,
    WorkerCostReport,
    WorkerStats,
    WorkItem,
    WorkOutcome,
)

__all__ = [
    "ROUTER_POLICIES",
    "SHARD_POLICIES",
    "AutoscalePolicy",
    "Autoscaler",
    "BreakerSnapshot",
    "BreakerState",
    "CircuitBreaker",
    "ClusterResult",
    "ConsistentHashRouter",
    "CorpusRunReport",
    "Dispatcher",
    "DispatcherStats",
    "LabeledExample",
    "ProcessWorker",
    "RoundRobinRouter",
    "ScaleEvent",
    "SessionSpec",
    "ShardAggregate",
    "ShardRouter",
    "ShardedCorpusRunner",
    "ThreadWorker",
    "WorkItem",
    "WorkOutcome",
    "Worker",
    "WorkerCostReport",
    "WorkerStats",
    "assign_shards",
    "split_frame_ranges",
    "make_router",
    "run_single_process",
]
