"""Workers: plan-warmed engine sessions behind input/output queues.

A worker is one replica of the execution tier.  It owns a warmed
:class:`~repro.serving.session.EngineSession`, pulls :class:`WorkItem`
batches from a private input queue, and posts :class:`WorkOutcome` records to
a results queue shared with the dispatcher.  Two variants exist:

* :class:`ThreadWorker` -- the session runs on a daemon thread in this
  process.  This is the default replica type for both serving and offline
  sharded runs.
* :class:`ProcessWorker` -- the session runs in a child process built from a
  picklable :class:`SessionSpec` (simulated engine only, since numpy model
  weights are cheap to rebuild but not worth shipping).  It demonstrates the
  same worker contract across a real process boundary.

Workers publish a heartbeat timestamp on every loop iteration; the
dispatcher's health monitor treats a stale heartbeat (or a dead thread or
process) as a crash and re-dispatches the worker's pending items elsewhere.
``kill()`` simulates a crash for failover tests: the worker stops abruptly
without draining or reporting its in-flight work.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.chaos.faults import NULL_FAULTS
from repro.errors import ClusterError
from repro.fuse.shm import ShmBatchRef, ShmBatchTransport, worker_shm_prefix
from repro.hardware.instance import get_instance
from repro.inference.mpmc import MpmcQueue, QueueClosed
from repro.inference.perfmodel import EngineConfig, PerformanceModel
from repro.obs import NULL_OBS
from repro.codecs.formats import get_input_format
from repro.core.plans import Plan
from repro.nn.zoo import get_model_profile
from repro.serving.request import InferenceRequest
from repro.serving.session import EngineSession, SimulatedSession

#: Shared zero-length default for WorkOutcome.predictions (never mutated).
_EMPTY_PREDICTIONS = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class WorkItem:
    """One unit of dispatchable work: a micro-batch of requests.

    Attributes
    ----------
    item_id:
        Dispatcher-unique identity, used to match outcomes to futures and to
        deduplicate retried work.
    requests:
        The micro-batch, in response order.
    shard_id:
        Shard this item belongs to in offline corpus runs (-1 online).
    attempts:
        How many times this item has been handed to a worker.
    trace:
        Picklable :mod:`repro.obs` trace context ``(trace_id, span_id)``
        of the dispatcher-side item span, or None when untraced.  Carried
        across the worker hop (including the multiprocessing queue) and
        echoed on the :class:`WorkOutcome`, so worker-side and
        outcome-side spans parent into the originating trace.
    """

    item_id: int
    requests: tuple[InferenceRequest, ...]
    shard_id: int = -1
    attempts: int = 1
    trace: tuple[int, int] | None = None

    def retried(self) -> "WorkItem":
        """A copy of this item with the attempt counter bumped."""
        return replace(self, attempts=self.attempts + 1)


@dataclass(frozen=True, eq=False)
class WorkOutcome:
    """What a worker reports back for one :class:`WorkItem`.

    Either ``predictions`` is set (success) or ``error`` is set (the session
    raised); crashed workers report nothing at all -- that silence is what
    the heartbeat monitor detects.  ``stage_seconds`` carries the session's
    per-stage cost breakdown (picklable key/value pairs) when the session
    reports one, feeding the worker's cost report.

    ``predictions`` is an int64 ndarray passed through from the session
    unboxed -- scan scores ride it as IEEE-754 bit patterns with no
    per-element Python int round-trip.  Between a shared-memory process
    worker and its parent pump, the array travels out-of-band: the child
    posts the outcome with empty ``predictions`` and ``shm`` set to a
    :class:`~repro.fuse.shm.ShmBatchRef`, and the pump re-materializes
    ``predictions`` (clearing ``shm``) before forwarding to the
    dispatcher, which therefore never sees a descriptor.
    """

    item_id: int
    worker_id: str
    shard_id: int = -1
    attempts: int = 1
    predictions: np.ndarray = field(
        default_factory=lambda: _EMPTY_PREDICTIONS)
    modelled_seconds: float = 0.0
    error: str | None = None
    stage_seconds: tuple[tuple[str, float], ...] = ()
    trace: tuple[int, int] | None = None
    shm: ShmBatchRef | None = None

    @property
    def ok(self) -> bool:
        """True when the item executed successfully."""
        return self.error is None


@dataclass
class WorkerStats:
    """Lifetime per-worker counters."""

    executed_items: int = 0
    executed_requests: int = 0
    failed_items: int = 0
    modelled_seconds: float = 0.0


@dataclass(frozen=True)
class WorkerCostReport:
    """Observed per-stage costs of one replica since its last report.

    Produced by :meth:`Worker.take_cost_report` and forwarded to a
    telemetry sink by the dispatcher's heartbeat monitor
    (:meth:`repro.cluster.dispatcher.Dispatcher.attach_telemetry`), so the
    adaptive replanning loop sees what every replica actually paid per
    stage -- not what the calibrated model predicted.

    Attributes
    ----------
    worker_id / plan_key:
        Which replica observed the costs, executing which plan.
    format_name / model_name:
        Telemetry subjects: decode/preprocess observations are keyed by
        the input format, inference observations by the model ("" when
        the session does not expose them).
    images:
        Requests executed since the last report (the largest per-stage
        count).
    stage_seconds:
        Total per-stage resource seconds consumed since the last report.
    stage_images:
        Images that actually passed through each stage.  Kept per stage
        because a mid-window plan/pace hot-swap changes which stages a
        batch pays (decode vs chunk read): dividing a stage's seconds by
        the window's *total* images would dilute its per-image cost and
        mis-calibrate the drift loop.
    """

    worker_id: str
    plan_key: str
    format_name: str
    model_name: str
    images: int
    stage_seconds: dict[str, float]
    stage_images: dict[str, int] = field(default_factory=dict)

    def images_for(self, stage: str) -> int:
        """Images that paid ``stage`` (falls back to the window total)."""
        return self.stage_images.get(stage, self.images)


class _CostAccumulator:
    """Thread-safe per-stage cost accumulation shared by worker types.

    Both the image count and the seconds accumulate *per stage key*, so a
    report window spanning a hot-swap (some batches paying ``decode``,
    later ones paying ``read``) still yields exact per-image costs for
    every stage.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: dict[str, list] = {}

    def add(self, images: int,
            stage_seconds: tuple[tuple[str, float], ...]) -> None:
        if not stage_seconds:
            return
        with self._lock:
            for stage, seconds in stage_seconds:
                entry = self._stages.setdefault(stage, [0, 0.0])
                entry[0] += images
                entry[1] += seconds

    def take(self) -> tuple[dict[str, int], dict[str, float]]:
        with self._lock:
            stages, self._stages = self._stages, {}
        return ({stage: entry[0] for stage, entry in stages.items()},
                {stage: entry[1] for stage, entry in stages.items()})


class Worker:
    """Contract every replica type implements.

    The dispatcher only touches this interface, so thread- and
    process-backed replicas (and test fakes) are interchangeable.
    """

    def __init__(self, worker_id: str) -> None:
        if not worker_id:
            raise ClusterError("worker_id must be non-empty")
        self._worker_id = worker_id

    @property
    def worker_id(self) -> str:
        """Stable identity of this replica."""
        return self._worker_id

    @property
    def plan_key(self) -> str:
        """The plan the wrapped session executes."""
        raise NotImplementedError

    @property
    def alive(self) -> bool:
        """True while the worker can still make progress."""
        raise NotImplementedError

    def heartbeat_age(self, now: float | None = None) -> float:
        """Seconds since the worker last proved liveness."""
        raise NotImplementedError

    def submit(self, item: WorkItem) -> None:
        """Enqueue one item; raises :class:`ClusterError` if not accepting."""
        raise NotImplementedError

    def queue_depth(self) -> int:
        """Items accepted but not yet completed (autoscaling signal)."""
        raise NotImplementedError

    def pending_items(self) -> list[WorkItem]:
        """Items accepted but not completed (recovered on crash)."""
        raise NotImplementedError

    def take_cost_report(self) -> WorkerCostReport | None:
        """Per-stage costs since the last report; None when unsupported.

        Called by the dispatcher's heartbeat monitor; taking resets the
        accumulation, so each report is a delta.
        """
        return None

    def kill(self) -> None:
        """Crash the worker: stop abruptly, abandoning in-flight work."""
        raise NotImplementedError

    def close(self, timeout: float = 5.0) -> None:
        """Graceful shutdown: drain the input queue, then stop."""
        raise NotImplementedError


class ThreadWorker(Worker):
    """A replica running its session on a daemon thread in this process.

    Parameters
    ----------
    worker_id:
        Replica identity (also the routing key target).
    session:
        The warmed engine session this replica executes.
    results:
        Shared outcome queue owned by the dispatcher.
    queue_capacity:
        Bound on accepted-but-unexecuted items.
    service_time_scale:
        When positive, the worker sleeps ``modelled_seconds * scale`` after
        each simulated batch, so modelled service time occupies the replica
        in wall-clock terms and multi-worker wall-clock speedups are real.
    obs:
        Optional :class:`~repro.obs.Observability`.  Traced items then
        execute with their trace context ambient on the worker thread, so
        spans opened inside the session (store chunk reads, for example)
        parent into the item's subtree.
    faults:
        Chaos seam (:data:`~repro.chaos.faults.NULL_FAULTS` by default).
        ``worker.execute`` fires before the session runs; ``worker.ack``
        fires after the outcome posts but before the item leaves the
        pending set -- a kill there is the duplicate-delivery window the
        dispatcher must absorb.
    """

    def __init__(self, worker_id: str, session: EngineSession,
                 results: MpmcQueue[WorkOutcome],
                 queue_capacity: int = 64,
                 service_time_scale: float = 0.0,
                 obs=NULL_OBS, faults=NULL_FAULTS) -> None:
        super().__init__(worker_id)
        if service_time_scale < 0:
            raise ClusterError("service_time_scale must be non-negative")
        self._obs = obs if obs is not None else NULL_OBS
        self._faults = faults if faults is not None else NULL_FAULTS
        if not session.warmed:
            session.warmup()
        self._session = session
        self._results = results
        self._inbox: MpmcQueue[WorkItem] = MpmcQueue(
            queue_capacity, faults=self._faults)
        self._service_time_scale = service_time_scale
        self._pending: dict[int, WorkItem] = {}
        self._pending_lock = threading.Lock()
        self._stats = WorkerStats()
        self._costs = _CostAccumulator()
        self._heartbeat = time.monotonic()
        self._busy = False
        self._killed = False
        self._thread = threading.Thread(
            target=self._loop, name=f"cluster-{worker_id}", daemon=True
        )
        self._thread.start()

    # -- Worker contract ------------------------------------------------
    @property
    def plan_key(self) -> str:
        return self._session.plan_key

    @property
    def alive(self) -> bool:
        return self._thread.is_alive() and not self._killed

    def heartbeat_age(self, now: float | None = None) -> float:
        # A batch mid-execution is occupancy, not silence: an in-process
        # thread cannot die without `alive` turning false, so the heartbeat
        # only measures staleness of the polling loop.
        if self._busy:
            return 0.0
        return (now if now is not None else time.monotonic()) - self._heartbeat

    def submit(self, item: WorkItem) -> None:
        if not self.alive:
            raise ClusterError(
                f"worker {self._worker_id} is not accepting work"
            )
        with self._pending_lock:
            self._pending[item.item_id] = item
        try:
            self._inbox.put(item, timeout=5.0)
        except Exception as exc:
            # QueueClosed (shutdown race) or EngineError (inbox full past
            # the timeout): either way the item was not accepted; surface
            # it as the ClusterError the dispatcher routes around.
            with self._pending_lock:
                self._pending.pop(item.item_id, None)
            raise ClusterError(
                f"worker {self._worker_id} did not accept the item: {exc}"
            ) from exc

    def queue_depth(self) -> int:
        with self._pending_lock:
            return len(self._pending)

    def pending_items(self) -> list[WorkItem]:
        with self._pending_lock:
            return sorted(self._pending.values(), key=lambda i: i.item_id)

    def take_cost_report(self) -> WorkerCostReport | None:
        stage_images, stage_seconds = self._costs.take()
        if not stage_seconds:
            return None
        return WorkerCostReport(
            worker_id=self._worker_id,
            plan_key=self._session.plan_key,
            format_name=getattr(self._session, "format_name", ""),
            model_name=getattr(self._session, "model_name", ""),
            images=max(stage_images.values()),
            stage_seconds=stage_seconds,
            stage_images=stage_images,
        )

    def kill(self) -> None:
        self._killed = True
        self._inbox.close()

    def close(self, timeout: float = 5.0) -> None:
        self._inbox.close()
        self._thread.join(timeout=timeout)
        if self._thread.is_alive() and not self._killed:
            raise ClusterError(
                f"worker {self._worker_id} did not drain in time"
            )

    def stats(self) -> WorkerStats:
        """Snapshot of the worker's lifetime counters."""
        with self._pending_lock:
            return WorkerStats(
                executed_items=self._stats.executed_items,
                executed_requests=self._stats.executed_requests,
                failed_items=self._stats.failed_items,
                modelled_seconds=self._stats.modelled_seconds,
            )

    # -- Worker loop -----------------------------------------------------
    def _loop(self) -> None:
        while True:
            self._heartbeat = time.monotonic()
            if self._killed:
                return
            try:
                item = self._inbox.get(timeout=0.05)
            except QueueClosed:
                return
            except Exception:
                continue  # get timeout: refresh the heartbeat and re-poll
            if self._killed:
                # Crash semantics: the dequeued item is deliberately lost
                # (it stays in _pending for the monitor to recover).
                return
            self._busy = True
            try:
                self._execute(item)
            finally:
                self._busy = False

    def _execute(self, item: WorkItem) -> None:
        try:
            # Chaos seam: a "raise" here becomes an error outcome (the
            # retry path), a "kill" suppresses the outcome entirely (the
            # failover path), a "stall" holds the replica busy.
            self._faults.hit("worker.execute", worker=self,
                             item_id=item.item_id)
            if self._obs.enabled and item.trace is not None:
                # Make the item's trace ambient so session-internal spans
                # (e.g. store chunk reads) parent into the item's subtree.
                with self._obs.activate(item.trace):
                    result = self._session.execute(list(item.requests))
            else:
                result = self._session.execute(list(item.requests))
        except Exception as exc:
            outcome = WorkOutcome(
                item_id=item.item_id, worker_id=self._worker_id,
                shard_id=item.shard_id, attempts=item.attempts,
                error=f"{type(exc).__name__}: {exc}",
                trace=item.trace,
            )
        else:
            if self._service_time_scale > 0 and result.modelled_seconds > 0:
                time.sleep(result.modelled_seconds * self._service_time_scale)
            stage_seconds = tuple(sorted(
                (result.stage_seconds or {}).items()
            ))
            outcome = WorkOutcome(
                item_id=item.item_id, worker_id=self._worker_id,
                shard_id=item.shard_id, attempts=item.attempts,
                # ndarray passthrough: no per-element int boxing on the
                # scan hot path (scores stay packed int64 bit patterns).
                predictions=np.asarray(result.predictions, dtype=np.int64),
                modelled_seconds=result.modelled_seconds,
                stage_seconds=stage_seconds,
                trace=item.trace,
            )
            self._costs.add(len(item.requests), stage_seconds)
        if self._killed:
            return
        # Deliver, then acknowledge.  The outcome posts to the results
        # queue *before* the item leaves the pending set: a crash in the
        # gap (the ``worker.ack`` seam) leaves the item recoverable --
        # the monitor re-dispatches it and the dispatcher deduplicates
        # the already-delivered outcome -- whereas acknowledging first
        # would lose the item outright if the worker died before the
        # post, hanging its future until the drain timeout.
        # A full results queue must not kill the worker thread either:
        # keep trying until the queue drains, closes, or this worker is
        # killed.
        while not self._killed:
            try:
                self._results.put(outcome, timeout=1.0)
                break
            except QueueClosed:
                break
            except Exception:
                continue  # put timeout: the collector is behind; retry
        self._faults.hit("worker.ack", worker=self, item_id=item.item_id)
        if self._killed:
            # Crashed inside the delivery/ack window: the item stays
            # pending so failover recovers it; exactly-once resolution is
            # now the dispatcher's duplicate-outcome check to uphold.
            return
        with self._pending_lock:
            self._pending.pop(item.item_id, None)
            if outcome.ok:
                self._stats.executed_items += 1
                self._stats.executed_requests += len(item.requests)
                self._stats.modelled_seconds += outcome.modelled_seconds
            else:
                self._stats.failed_items += 1


@dataclass(frozen=True)
class SessionSpec:
    """A picklable recipe for rebuilding a simulated session elsewhere.

    Process workers cannot share a live session object, so they ship this
    spec instead and rebuild the session (deterministically -- the
    performance model is calibrated, not trained) inside the child.
    """

    model_name: str = "resnet-18"
    format_name: str = "161-jpeg-q75"
    instance_name: str = "g4dn.xlarge"
    backend: str = "tensorrt"
    num_classes: int = 1000

    def build(self) -> SimulatedSession:
        """Construct and warm the simulated session this spec describes."""
        instance = get_instance(self.instance_name)
        plan = Plan.single(get_model_profile(self.model_name),
                           get_input_format(self.format_name))
        session = SimulatedSession(
            plan, PerformanceModel(instance, backend=self.backend),
            config=EngineConfig(num_producers=instance.vcpus),
            num_classes=self.num_classes,
        )
        session.warmup()
        return session


def _process_worker_main(spec: SessionSpec, inbox, outbox,
                         shm_prefix: str | None = None,
                         force_inline: bool = False) -> None:
    """Child-process loop: rebuild the session, then serve the queue.

    With ``shm_prefix`` set, prediction arrays travel out-of-band through
    a :class:`~repro.fuse.shm.ShmBatchTransport` (zero-copy shared-memory
    segments); the outcome on the mp queue then carries only the
    descriptor.  Without it (legacy mode) predictions pickle through the
    queue as an int64 ndarray -- already unboxed, but still copied.
    """
    session = spec.build()
    plan_key = session.plan_key
    transport = None
    if shm_prefix is not None:
        transport = ShmBatchTransport(shm_prefix, force_inline=force_inline)
    while True:
        item = inbox.get()
        if item is None:
            outbox.put(None)
            return
        try:
            result = session.execute(list(item.requests))
            predictions = np.asarray(result.predictions, dtype=np.int64)
            shm_ref = None
            if transport is not None:
                shm_ref = transport.publish(predictions)
                predictions = _EMPTY_PREDICTIONS
            outcome = WorkOutcome(
                item_id=item.item_id, worker_id=plan_key,  # rewritten below
                shard_id=item.shard_id, attempts=item.attempts,
                predictions=predictions,
                modelled_seconds=result.modelled_seconds,
                stage_seconds=tuple(sorted(
                    (result.stage_seconds or {}).items()
                )),
                trace=item.trace,  # trace ids ride back over the mp queue
                shm=shm_ref,
            )
        except Exception as exc:
            outcome = WorkOutcome(
                item_id=item.item_id, worker_id=plan_key,
                shard_id=item.shard_id, attempts=item.attempts,
                error=f"{type(exc).__name__}: {exc}",
                trace=item.trace,
            )
        outbox.put(outcome)


class ProcessWorker(Worker):
    """A replica running a simulated session in a child process.

    The contract matches :class:`ThreadWorker`; a pump thread forwards the
    child's outcomes into the dispatcher's shared results queue and doubles
    as the heartbeat source.  Only simulated sessions are supported -- they
    are rebuilt from a :class:`SessionSpec` rather than pickled.

    Prediction batches ride zero-copy shared memory by default
    (``use_shm=True``): the child publishes each batch into a named
    segment under a per-worker prefix and the pump re-materializes it on
    attach, unlinking as it goes.  ``kill``/``close`` sweep the prefix, so
    a crashed child's in-flight segments never leak.  On platforms without
    ``multiprocessing.shared_memory`` (or with ``use_shm=False``) the
    transport degrades to inline bytes with identical results.
    """

    def __init__(self, worker_id: str, spec: SessionSpec,
                 results: MpmcQueue[WorkOutcome],
                 start_method: str = "fork",
                 use_shm: bool = True) -> None:
        super().__init__(worker_id)
        self._spec = spec
        self._results = results
        context = multiprocessing.get_context(start_method)
        self._inbox = context.Queue()
        self._outbox = context.Queue()
        self._pending: dict[int, WorkItem] = {}
        self._pending_lock = threading.Lock()
        self._costs = _CostAccumulator()
        self._heartbeat = time.monotonic()
        self._killed = False
        self._closed = False
        prefix = worker_shm_prefix(worker_id)
        self._transport = ShmBatchTransport(prefix,
                                            force_inline=not use_shm)
        self._process = context.Process(
            target=_process_worker_main,
            args=(spec, self._inbox, self._outbox, prefix, not use_shm),
            name=f"cluster-{worker_id}", daemon=True,
        )
        self._process.start()
        self._pump = threading.Thread(
            target=self._pump_loop, name=f"cluster-{worker_id}-pump",
            daemon=True,
        )
        self._pump.start()

    @property
    def transport(self) -> ShmBatchTransport:
        """The parent-side shared-memory transport (attach + sweep side)."""
        return self._transport

    @property
    def plan_key(self) -> str:
        plan = Plan.single(get_model_profile(self._spec.model_name),
                           get_input_format(self._spec.format_name))
        return plan.describe()

    @property
    def alive(self) -> bool:
        return self._process.is_alive() and not self._killed

    def heartbeat_age(self, now: float | None = None) -> float:
        return (now if now is not None else time.monotonic()) - self._heartbeat

    def submit(self, item: WorkItem) -> None:
        if not self.alive or self._closed:
            raise ClusterError(
                f"worker {self._worker_id} is not accepting work"
            )
        with self._pending_lock:
            self._pending[item.item_id] = item
        self._inbox.put(item)

    def queue_depth(self) -> int:
        with self._pending_lock:
            return len(self._pending)

    def pending_items(self) -> list[WorkItem]:
        with self._pending_lock:
            return sorted(self._pending.values(), key=lambda i: i.item_id)

    def take_cost_report(self) -> WorkerCostReport | None:
        stage_images, stage_seconds = self._costs.take()
        if not stage_seconds:
            return None
        return WorkerCostReport(
            worker_id=self._worker_id,
            plan_key=self.plan_key,
            format_name=self._spec.format_name,
            model_name=self._spec.model_name,
            images=max(stage_images.values()),
            stage_seconds=stage_seconds,
            stage_images=stage_images,
        )

    def kill(self) -> None:
        self._killed = True
        self._process.terminate()
        # The child may have published batches whose descriptors never
        # reached the pump; sweeping the worker's prefix reclaims them.
        # A descriptor the pump is concurrently attaching either wins the
        # race (the attach unlinks) or sees FileNotFoundError and drops
        # the outcome -- crash semantics either way.
        self._transport.sweep()

    def close(self, timeout: float = 10.0) -> None:
        if self._closed:
            return
        self._closed = True
        if self._process.is_alive() and not self._killed:
            self._inbox.put(None)
        self._process.join(timeout=timeout)
        self._pump.join(timeout=timeout)
        if self._process.is_alive():
            self._process.terminate()
        self._transport.sweep()

    def _pump_loop(self) -> None:
        while True:
            self._heartbeat = time.monotonic()
            try:
                outcome = self._outbox.get(timeout=0.05)
            except Exception:
                if self._killed or self._closed or not self._process.is_alive():
                    if self._outbox.empty():
                        return
                continue
            if outcome is None:
                return
            if outcome.shm is not None:
                try:
                    predictions = self._transport.attach(outcome.shm)
                except FileNotFoundError:
                    # The segment was swept after a kill: treat the
                    # outcome as lost with the crash -- the item stays
                    # pending and failover recovers it.
                    continue
                outcome = replace(outcome, worker_id=self._worker_id,
                                  predictions=predictions, shm=None)
            else:
                outcome = replace(outcome, worker_id=self._worker_id)
            with self._pending_lock:
                item = self._pending.pop(outcome.item_id, None)
            if outcome.ok and item is not None:
                # item can be None after a kill/recover race; folding its
                # seconds in with zero images would skew the per-image
                # cost report, so the raced delta is dropped instead.
                self._costs.add(len(item.requests), outcome.stage_seconds)
            while not self._killed:
                try:
                    self._results.put(outcome, timeout=1.0)
                    break
                except QueueClosed:
                    return
                except Exception:
                    continue  # put timeout: retry until the queue drains


def predictions_array(outcome: WorkOutcome) -> np.ndarray:
    """The outcome's predictions as an int64 array (empty on failure)."""
    return np.asarray(outcome.predictions, dtype=np.int64)
