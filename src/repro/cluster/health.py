"""Replica health: circuit breakers over worker failure streaks.

A circuit breaker sits between the dispatcher and each replica.  While
*closed* it passes work through; after ``failure_threshold`` consecutive
failures it *opens* and the dispatcher routes around the replica; after
``cooldown_s`` it becomes *half-open* and admits a single probe item whose
outcome decides between closing again and re-opening.  The clock is
injectable so tests can drive state transitions deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from enum import Enum
from typing import Callable

from repro.errors import ClusterError


class BreakerState(Enum):
    """The three classic circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerSnapshot:
    """Point-in-time view of one breaker (for stats and debugging)."""

    state: BreakerState
    consecutive_failures: int
    total_failures: int
    total_successes: int
    opened_count: int


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing."""

    def __init__(self, failure_threshold: int = 3, cooldown_s: float = 0.25,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold <= 0:
            raise ClusterError("failure_threshold must be positive")
        if cooldown_s < 0:
            raise ClusterError("cooldown_s must be non-negative")
        self._failure_threshold = failure_threshold
        self._cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_outstanding = False
        self._total_failures = 0
        self._total_successes = 0
        self._opened_count = 0

    @property
    def state(self) -> BreakerState:
        """Current state, applying any due open -> half-open transition."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def would_allow(self) -> bool:
        """Non-consuming eligibility check: could :meth:`allow` succeed now?

        Routing uses this to build candidate lists without claiming the
        half-open probe slot of replicas that end up not being chosen.
        """
        with self._lock:
            self._maybe_half_open()
            return self._state is BreakerState.CLOSED or (
                self._state is BreakerState.HALF_OPEN
                and not self._probe_outstanding
            )

    def allow(self) -> bool:
        """True when the replica may receive (at least probe) work now.

        A half-open circuit admits exactly one probe item; calling this
        claims that slot, so only call it for the replica actually chosen.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.HALF_OPEN \
                    and not self._probe_outstanding:
                self._probe_outstanding = True
                return True
            return False

    def record_success(self) -> None:
        """An item completed on the replica; closes a half-open circuit."""
        with self._lock:
            self._total_successes += 1
            self._consecutive_failures = 0
            self._probe_outstanding = False
            self._state = BreakerState.CLOSED

    def record_failure(self) -> None:
        """An item failed on the replica; may open the circuit."""
        with self._lock:
            self._total_failures += 1
            self._consecutive_failures += 1
            self._probe_outstanding = False
            if self._state is BreakerState.HALF_OPEN \
                    or self._consecutive_failures >= self._failure_threshold:
                if self._state is not BreakerState.OPEN:
                    self._opened_count += 1
                self._state = BreakerState.OPEN
                self._opened_at = self._clock()

    def trip(self) -> None:
        """Force the circuit open (used when a worker is declared dead)."""
        with self._lock:
            if self._state is not BreakerState.OPEN:
                self._opened_count += 1
            self._state = BreakerState.OPEN
            self._opened_at = self._clock()
            self._probe_outstanding = False

    def snapshot(self) -> BreakerSnapshot:
        """Consistent snapshot of the breaker's counters and state."""
        with self._lock:
            self._maybe_half_open()
            return BreakerSnapshot(
                state=self._state,
                consecutive_failures=self._consecutive_failures,
                total_failures=self._total_failures,
                total_successes=self._total_successes,
                opened_count=self._opened_count,
            )

    def _maybe_half_open(self) -> None:
        if self._state is BreakerState.OPEN \
                and self._clock() - self._opened_at >= self._cooldown_s:
            self._state = BreakerState.HALF_OPEN
            self._probe_outstanding = False
