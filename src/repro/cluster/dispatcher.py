"""The replica-aware dispatcher: routing, health, failover, retries.

The dispatcher owns a pool of :class:`~repro.cluster.worker.Worker` replicas
(all warmed on the same plan), a shared results queue, and two service
threads:

* a **collector** that matches :class:`WorkOutcome` records to submitted
  futures, feeds the per-worker circuit breakers, and retries failed items
  on another replica (up to ``max_attempts``);
* a **monitor** that watches heartbeats, declares silent workers dead,
  re-dispatches their accepted-but-unfinished items on surviving replicas,
  drains items parked while no replica was eligible, completes graceful
  retirements, and drives an attached autoscaler.

Execution is at-least-once (a worker may crash after computing but before
reporting), resolution is exactly-once (the first outcome per item wins);
sessions are deterministic, so duplicated execution is harmless.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.chaos.faults import NULL_FAULTS
from repro.cluster.health import BreakerSnapshot, CircuitBreaker
from repro.cluster.router import ShardRouter, make_router
from repro.cluster.worker import Worker, WorkItem, WorkOutcome
from repro.errors import ClusterError, NoHealthyWorkerError, WorkerCrashedError
from repro.inference.mpmc import MpmcQueue, QueueClosed
from repro.obs import NULL_OBS
from repro.serving.request import InferenceRequest


@dataclass(frozen=True)
class ClusterResult:
    """The resolved value of one dispatched micro-batch.

    Mirrors :class:`~repro.serving.session.BatchResult` (``predictions`` +
    ``modelled_seconds``) so the serving layer can consume either, and adds
    the cluster-side provenance.
    """

    predictions: np.ndarray
    modelled_seconds: float
    worker_id: str
    shard_id: int = -1
    attempts: int = 1


@dataclass(frozen=True)
class DispatcherStats:
    """Snapshot of the dispatcher's lifetime counters."""

    submitted: int
    completed: int
    failed: int
    retried: int
    failovers: int
    worker_deaths: int
    live_workers: int
    parked: int
    inflight: int
    breakers: dict[str, BreakerSnapshot]

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        open_circuits = sum(
            1 for snap in self.breakers.values()
            if snap.state.value != "closed"
        )
        return "\n".join([
            f"items:    {self.submitted} submitted, {self.completed} "
            f"completed, {self.failed} failed",
            f"retries:  {self.retried} ({self.failovers} after worker death)",
            f"workers:  {self.live_workers} live, {self.worker_deaths} died, "
            f"{open_circuits} non-closed circuits",
            f"backlog:  {self.inflight} in flight, {self.parked} parked",
        ])


@dataclass
class _Inflight:
    """Book-keeping for one not-yet-resolved item.

    ``span`` is the item's ``cluster.item`` span when observability is
    enabled; it survives retries and failovers and is finished exactly
    once, at resolution.
    """

    item: WorkItem
    future: Future
    worker_id: str | None = None
    span: object = None


class Dispatcher:
    """Routes micro-batches across replicas with failover and retries.

    Parameters
    ----------
    worker_factory:
        Called as ``factory(worker_id, results_queue)`` to build each
        replica; used both at construction and by the autoscaler.
    num_workers:
        Initial replica count.
    router:
        Routing policy name (``"round-robin"`` / ``"consistent-hash"``) or a
        :class:`ShardRouter` instance.
    max_attempts:
        Total tries per item before its future fails.
    heartbeat_timeout_s:
        A worker whose heartbeat is older than this is declared dead.
    breaker_threshold / breaker_cooldown_s:
        Per-worker circuit breaker tuning.
    monitor_interval_s:
        Health-check cadence; pass 0 to disable the background monitor and
        drive :meth:`check_workers` manually (deterministic tests).
    obs:
        Optional :class:`~repro.obs.Observability`.  Each submitted batch
        then opens a ``cluster.item`` span (parented to the first
        request's trace or the caller's ambient context), with
        ``cluster.dispatch`` / ``cluster.execute`` / ``cluster.retry`` /
        ``cluster.failover`` children and modelled per-stage spans; worker
        cost reports are also published on the stage-event bus.
    faults:
        Chaos seam (:data:`~repro.chaos.faults.NULL_FAULTS` by default).
        ``dispatcher.outcome`` fires in the collector between fetching an
        outcome's in-flight entry and resolving it -- a stall there opens
        the race against the monitor's orphan path that the atomic
        pop-and-recheck below must win.
    """

    def __init__(self, worker_factory: Callable[[str, MpmcQueue], Worker],
                 num_workers: int = 2,
                 router: str | ShardRouter = "round-robin",
                 max_attempts: int = 3,
                 heartbeat_timeout_s: float = 2.0,
                 breaker_threshold: int = 3,
                 breaker_cooldown_s: float = 0.25,
                 monitor_interval_s: float = 0.02,
                 results_capacity: int = 4096,
                 obs=NULL_OBS, faults=NULL_FAULTS) -> None:
        if num_workers <= 0:
            raise ClusterError("num_workers must be positive")
        if max_attempts <= 0:
            raise ClusterError("max_attempts must be positive")
        self._factory = worker_factory
        self._router = make_router(router)
        self._max_attempts = max_attempts
        self._heartbeat_timeout_s = heartbeat_timeout_s
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown_s = breaker_cooldown_s
        self._faults = faults if faults is not None else NULL_FAULTS
        self._results: MpmcQueue[WorkOutcome] = MpmcQueue(
            results_capacity, faults=self._faults)
        self._lock = threading.RLock()
        self._workers: dict[str, Worker] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._retiring: set[str] = set()
        self._inflight: dict[int, _Inflight] = {}
        self._parked: deque[WorkItem] = deque()
        self._item_ids = itertools.count()
        self._worker_ids = itertools.count()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._retried = 0
        self._failovers = 0
        self._worker_deaths = 0
        self._closed = False
        self._autoscaler = None
        self._telemetry = None
        self._obs = obs if obs is not None else NULL_OBS
        self._completed_metric = self._obs.counter("cluster_completed_total")
        self._failed_metric = self._obs.counter("cluster_failed_total")
        self._retried_metric = self._obs.counter("cluster_retried_total")
        self._failover_metric = self._obs.counter("cluster_failovers_total")
        self._deaths_metric = self._obs.counter("cluster_worker_deaths_total")
        for _ in range(num_workers):
            self.add_worker()
        self._collector = threading.Thread(
            target=self._collect_loop, name="cluster-collector", daemon=True
        )
        self._collector.start()
        self._monitor: threading.Thread | None = None
        self._monitor_stop = threading.Event()
        if monitor_interval_s > 0:
            self._monitor = threading.Thread(
                target=self._monitor_loop, args=(monitor_interval_s,),
                name="cluster-monitor", daemon=True,
            )
            self._monitor.start()

    # ------------------------------------------------------------------
    # Pool management
    # ------------------------------------------------------------------
    @property
    def plan_key(self) -> str:
        """The plan every replica executes (from any live worker)."""
        with self._lock:
            for worker in self._workers.values():
                return worker.plan_key
        raise ClusterError("dispatcher has no workers")

    @property
    def results_queue(self) -> MpmcQueue:
        """The shared outcome queue (handed to worker factories)."""
        return self._results

    def attach_autoscaler(self, autoscaler) -> None:
        """Let the monitor thread drive ``autoscaler.evaluate()``."""
        self._autoscaler = autoscaler

    def attach_telemetry(self, sink) -> None:
        """Forward worker cost reports to ``sink`` on every heartbeat pass.

        ``sink`` is duck-typed with ``record_worker_report(report,
        source="cluster")`` (see
        :class:`~repro.adapt.telemetry.TelemetryCollector`).  Each
        :meth:`check_workers` pass -- the same cadence that watches
        heartbeats -- drains every live replica's accumulated per-stage
        costs (:meth:`~repro.cluster.worker.Worker.take_cost_report`) into
        the sink, so observed cluster costs reach the adaptive replanning
        loop without a second reporting channel.
        """
        self._telemetry = sink

    def _flush_cost_reports(self) -> None:
        if self._telemetry is None and not self._obs.enabled:
            return
        with self._lock:
            workers = list(self._workers.values())
        for worker in workers:
            try:
                report = worker.take_cost_report()
            except Exception:
                continue
            if report is None:
                continue
            if self._obs.enabled:
                for stage, seconds in report.stage_seconds.items():
                    subject = (report.model_name if stage == "inference"
                               else report.format_name)
                    self._obs.emit_stage(stage, subject,
                                         report.images_for(stage), seconds,
                                         source="cluster")
            if self._telemetry is None:
                continue
            try:
                self._telemetry.record_worker_report(report, source="cluster")
            except Exception:
                # Telemetry is advisory: a sink bug must not take the
                # health monitor down with it.
                continue

    def add_worker(self) -> str:
        """Grow the pool by one replica; returns its worker id."""
        with self._lock:
            if self._closed:
                raise ClusterError("cannot add a worker to a closed dispatcher")
            worker_id = f"worker-{next(self._worker_ids)}"
        # Build (and warm) the replica outside the lock: functional-session
        # warmup takes seconds, and submit/collect/monitor must not stall
        # on it -- scale-ups happen exactly when the pool is busiest.
        worker = self._factory(worker_id, self._results)
        if worker.worker_id != worker_id:
            raise ClusterError(
                "worker factory must honor the assigned worker id"
            )
        with self._lock:
            if self._closed:
                worker.close()
                raise ClusterError("cannot add a worker to a closed dispatcher")
            self._workers[worker_id] = worker
            self._breakers[worker_id] = CircuitBreaker(
                failure_threshold=self._breaker_threshold,
                cooldown_s=self._breaker_cooldown_s,
            )
            self._router.add_worker(worker_id)
            return worker_id

    def retire_worker(self) -> str | None:
        """Begin graceful retirement of the newest replica.

        The worker stops receiving new work immediately and is closed by the
        monitor once its accepted items have drained.  Returns the retired
        worker id, or None when no worker can be retired.
        """
        with self._lock:
            candidates = [wid for wid in self._workers
                          if wid not in self._retiring]
            if len(candidates) <= 1:
                return None
            worker_id = candidates[-1]
            self._retiring.add(worker_id)
            self._router.remove_worker(worker_id)
            return worker_id

    def live_workers(self) -> list[str]:
        """Ids of replicas currently routable (alive, not retiring)."""
        with self._lock:
            return [wid for wid, worker in self._workers.items()
                    if worker.alive and wid not in self._retiring]

    def queue_depths(self) -> dict[str, int]:
        """Accepted-but-uncompleted items per routable replica."""
        with self._lock:
            return {wid: worker.queue_depth()
                    for wid, worker in self._workers.items()
                    if worker.alive and wid not in self._retiring}

    def backlog(self) -> int:
        """Total queued work: per-worker depths plus parked items."""
        with self._lock:
            depth = sum(worker.queue_depth()
                        for wid, worker in self._workers.items()
                        if worker.alive)
            return depth + len(self._parked)

    def worker(self, worker_id: str) -> Worker:
        """Look up a live replica by id (for tests and fault injection)."""
        with self._lock:
            try:
                return self._workers[worker_id]
            except KeyError:
                raise ClusterError(f"unknown worker {worker_id!r}") from None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, requests: Sequence[InferenceRequest],
               shard_id: int = -1) -> Future:
        """Dispatch one micro-batch; the future resolves to a
        :class:`ClusterResult`."""
        if not requests:
            raise ClusterError("cannot submit an empty batch")
        span = None
        trace = None
        if self._obs.enabled:
            # Parent into the first request's trace when the serving layer
            # (or scan runner) opened one; otherwise the submitter's
            # ambient context, if any.
            parent = next(
                (request.trace for request in requests
                 if getattr(request, "trace", None) is not None), None,
            )
            span = self._obs.span("cluster.item", parent=parent,
                                  batch=len(requests), shard=shard_id)
            trace = span.context
        with self._lock:
            if self._closed:
                if span is not None:
                    span.set(error="ClusterError")
                    span.finish()
                raise ClusterError("cannot submit to a closed dispatcher")
            item = WorkItem(item_id=next(self._item_ids),
                            requests=tuple(requests), shard_id=shard_id,
                            trace=trace)
            future: Future = Future()
            self._inflight[item.item_id] = _Inflight(item=item, future=future,
                                                     span=span)
            self._submitted += 1
        if span is not None:
            span.set(item_id=item.item_id)
        self._dispatch(item)
        return future

    def _eligible(self, exclude: set[str] | None = None) -> list[str]:
        with self._lock:
            return [
                wid for wid, worker in self._workers.items()
                if worker.alive
                and wid not in self._retiring
                and (exclude is None or wid not in exclude)
                and self._breakers[wid].would_allow()
            ]

    def _dispatch(self, item: WorkItem,
                  exclude: set[str] | None = None) -> None:
        key = item.requests[0].image_id
        attempted: set[str] = set()
        while True:
            eligible = self._eligible(exclude)
            if not eligible and exclude:
                # Retrying on the excluded replica beats parking forever.
                eligible = self._eligible()
            eligible = [wid for wid in eligible if wid not in attempted]
            if not eligible:
                with self._lock:
                    if item.item_id in self._inflight:
                        self._inflight[item.item_id].worker_id = None
                        self._parked.append(item)
                return
            worker_id = self._router.route(key, eligible)
            with self._lock:
                worker = self._workers.get(worker_id)
                breaker = self._breakers.get(worker_id)
                if item.item_id not in self._inflight:
                    return  # resolved concurrently (duplicate outcome)
                if worker is not None:
                    self._inflight[item.item_id].worker_id = worker_id
            if worker is None or breaker is None or not breaker.allow():
                attempted.add(worker_id)
                continue
            try:
                worker.submit(item)
                if self._obs.enabled and item.trace is not None:
                    self._obs.record("cluster.dispatch", 0.0,
                                     parent=item.trace, worker=worker_id,
                                     attempt=item.attempts)
                return
            except ClusterError:
                attempted.add(worker_id)

    # ------------------------------------------------------------------
    # Collector
    # ------------------------------------------------------------------
    def _collect_loop(self) -> None:
        while True:
            try:
                outcome = self._results.get(timeout=0.1)
            except QueueClosed:
                return
            except Exception:
                continue
            try:
                self._handle_outcome(outcome)
            except Exception:
                # The collector must outlive any single bad outcome: a
                # re-dispatch failure here is retried by the monitor
                # (parked items) or surfaces at drain timeout.
                continue

    def _handle_outcome(self, outcome: WorkOutcome) -> None:
        with self._lock:
            entry = self._inflight.get(outcome.item_id)
            breaker = self._breakers.get(outcome.worker_id)
        # Chaos seam: a stall here holds the outcome in hand while the
        # monitor's orphan path may concurrently resolve the same item.
        self._faults.hit("dispatcher.outcome", item_id=outcome.item_id,
                         ok=outcome.ok, dispatcher=self)
        if entry is None:
            # Duplicate outcome for an item already resolved via failover
            # re-execution; the first resolution won.
            if breaker is not None and outcome.ok:
                breaker.record_success()
            return
        if outcome.ok:
            if breaker is not None:
                breaker.record_success()
            with self._lock:
                # Atomic pop-and-recheck: the monitor's orphan path (or a
                # failover re-execution) may have resolved this item since
                # the fetch above.  Only the thread that wins the pop may
                # count, trace, and resolve -- anything else would retire
                # the item twice and double-count telemetry.
                entry = self._inflight.pop(outcome.item_id, None)
                if entry is None:
                    return  # lost the race: the item already resolved
                self._completed += 1
            self._completed_metric.inc()
            if self._obs.enabled and outcome.trace is not None:
                self._trace_execution(entry, outcome)
            entry.future.set_result(ClusterResult(
                predictions=np.asarray(outcome.predictions, dtype=np.int64),
                modelled_seconds=outcome.modelled_seconds,
                worker_id=outcome.worker_id,
                shard_id=outcome.shard_id,
                attempts=outcome.attempts,
            ))
            return
        if breaker is not None:
            # The breaker has no "did this open it?" return; the
            # opened_count delta is the trip signal for the recorder.
            opened_before = breaker.snapshot().opened_count
            breaker.record_failure()
            if breaker.snapshot().opened_count > opened_before:
                self._obs.trip("circuit_open",
                               worker_id=outcome.worker_id,
                               error=outcome.error)
        if outcome.attempts >= self._max_attempts:
            with self._lock:
                # Same atomic pop-and-recheck as the success path: a
                # concurrent failover resolution must not be failed (or
                # counted) a second time.
                entry = self._inflight.pop(outcome.item_id, None)
                if entry is None:
                    return  # lost the race: the item already resolved
                self._failed += 1
            trace = outcome.trace
            self._obs.trip(
                "item_failed", item_id=outcome.item_id,
                attempts=outcome.attempts, error=outcome.error,
                trace_id=trace[0] if trace is not None else None,
            )
            self._failed_metric.inc()
            if entry.span is not None:
                entry.span.set(error=outcome.error,
                               attempts=outcome.attempts)
                entry.span.finish()
            entry.future.set_exception(ClusterError(
                f"item {outcome.item_id} failed after {outcome.attempts} "
                f"attempts: {outcome.error}"
            ))
            return
        with self._lock:
            entry = self._inflight.get(outcome.item_id)
            if entry is None:
                return  # resolved concurrently by a failover re-execution
            retried = entry.item.retried()
            entry.item = retried
            self._retried += 1
        self._retried_metric.inc()
        if self._obs.enabled and outcome.trace is not None:
            self._obs.record("cluster.retry", 0.0, parent=outcome.trace,
                             worker=outcome.worker_id,
                             attempt=outcome.attempts, error=outcome.error)
        self._dispatch(retried, exclude={outcome.worker_id})

    def _trace_execution(self, entry: _Inflight,
                         outcome: WorkOutcome) -> None:
        """Emit the modelled execute span (with stage children) and close
        the item span."""
        execute = self._obs.record(
            "cluster.execute", outcome.modelled_seconds,
            parent=outcome.trace, worker=outcome.worker_id,
            attempt=outcome.attempts,
        )
        for stage, seconds in outcome.stage_seconds:
            self._obs.record(f"stage.{stage}", seconds, parent=execute)
        if entry.span is not None:
            entry.span.set(worker=outcome.worker_id,
                           attempts=outcome.attempts,
                           modelled_seconds=outcome.modelled_seconds)
            entry.span.finish()

    # ------------------------------------------------------------------
    # Monitor
    # ------------------------------------------------------------------
    def _monitor_loop(self, interval_s: float) -> None:
        while not self._monitor_stop.wait(interval_s):
            try:
                self.check_workers()
                if self._autoscaler is not None:
                    self._autoscaler.evaluate()
            except Exception:
                continue

    def check_workers(self) -> list[str]:
        """One health pass: bury dead replicas, re-dispatch their work,
        finish graceful retirements, drain parked items.

        Returns the ids of workers declared dead in this pass.  Runs on the
        monitor thread normally, but is public so tests (or a disabled-
        monitor deployment) can drive health checks deterministically.
        """
        dead: list[Worker] = []
        finished_retiring: list[Worker] = []
        with self._lock:
            for worker_id, worker in list(self._workers.items()):
                if not worker.alive or \
                        worker.heartbeat_age() > self._heartbeat_timeout_s:
                    dead.append(worker)
                    del self._workers[worker_id]
                    self._retiring.discard(worker_id)
                    self._router.remove_worker(worker_id)
                    # The breaker dies with its replica: keeping it would
                    # pollute stats (and grow unboundedly) under churn.
                    del self._breakers[worker_id]
                    self._worker_deaths += 1
                elif worker_id in self._retiring \
                        and not worker.pending_items():
                    finished_retiring.append(worker)
                    del self._workers[worker_id]
                    self._retiring.discard(worker_id)
                    del self._breakers[worker_id]
        for worker in finished_retiring:
            worker.close()
        for _ in dead:
            self._deaths_metric.inc()
        orphans: list[WorkItem] = []
        for worker in dead:
            worker.kill()
            pending = worker.pending_items()
            orphans.extend(pending)
            # Dump before the orphans are resolved below, so their still-
            # open cluster.item spans land in the bundle as in-flight work.
            trace = next((item.trace for item in pending
                          if item.trace is not None), None)
            self._obs.trip(
                "worker_death", worker_id=worker.worker_id,
                orphans=len(pending),
                trace_id=trace[0] if trace is not None else None,
            )
        for item in orphans:
            with self._lock:
                entry = self._inflight.get(item.item_id)
                if entry is None:
                    continue  # outcome raced the death check; already done
                if item.attempts >= self._max_attempts:
                    self._inflight.pop(item.item_id, None)
                    self._failed += 1
                    self._failed_metric.inc()
                    if entry.span is not None:
                        entry.span.set(error="WorkerCrashedError",
                                       attempts=item.attempts)
                        entry.span.finish()
                    entry.future.set_exception(WorkerCrashedError(
                        f"item {item.item_id} lost to {item.attempts} "
                        "worker crashes"
                    ))
                    continue
                retried = item.retried()
                entry.item = retried
                self._failovers += 1
                self._retried += 1
            self._failover_metric.inc()
            self._retried_metric.inc()
            if self._obs.enabled and item.trace is not None:
                self._obs.record("cluster.failover", 0.0, parent=item.trace,
                                 worker=worker.worker_id,
                                 attempt=retried.attempts)
            self._dispatch(retried, exclude={worker.worker_id})
        self._drain_parked()
        self._flush_cost_reports()
        return [worker.worker_id for worker in dead]

    def _drain_parked(self) -> None:
        with self._lock:
            rounds = len(self._parked)
        # Bounded by the parked count at entry: an item _dispatch re-parks
        # (all circuits open, say) is not retried again in this pass.
        for _ in range(rounds):
            with self._lock:
                if not self._parked or not any(
                    worker.alive for wid, worker in self._workers.items()
                    if wid not in self._retiring
                ):
                    return
                item = self._parked.popleft()
                if item.item_id not in self._inflight:
                    continue
            self._dispatch(item)

    # ------------------------------------------------------------------
    # Stats / shutdown
    # ------------------------------------------------------------------
    def stats(self) -> DispatcherStats:
        """Snapshot of the dispatcher's counters."""
        with self._lock:
            return DispatcherStats(
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                retried=self._retried,
                failovers=self._failovers,
                worker_deaths=self._worker_deaths,
                live_workers=len([
                    wid for wid, worker in self._workers.items()
                    if worker.alive and wid not in self._retiring
                ]),
                parked=len(self._parked),
                inflight=len(self._inflight),
                breakers={wid: breaker.snapshot()
                          for wid, breaker in self._breakers.items()},
            )

    def drain(self, timeout: float = 30.0) -> None:
        """Block until every submitted item has resolved (or time out)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            self.check_workers()
            with self._lock:
                if not self._inflight:
                    return
            time.sleep(0.005)
        with self._lock:
            stuck = list(self._inflight.values())
        if stuck:
            raise NoHealthyWorkerError(
                f"{len(stuck)} items still unresolved after {timeout:.1f}s"
            )

    def close(self, timeout: float = 30.0) -> None:
        """Stop accepting work, drain in-flight items, shut everything down."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        try:
            self.drain(timeout=timeout)
        except NoHealthyWorkerError:
            pass  # the stuck futures are failed below
        finally:
            # One last flush so costs observed since the final heartbeat
            # pass still reach the telemetry sink.
            self._flush_cost_reports()
            self._monitor_stop.set()
            if self._monitor is not None:
                self._monitor.join(timeout=5.0)
            with self._lock:
                workers = list(self._workers.values())
                self._workers.clear()
                self._retiring.clear()
                stuck = list(self._inflight.values())
                self._inflight.clear()
            for worker in workers:
                worker.close()
            for entry in stuck:
                if not entry.future.done():
                    entry.future.set_exception(ClusterError(
                        "dispatcher closed before the item resolved"
                    ))
            self._results.close()
            self._collector.join(timeout=5.0)

    def __enter__(self) -> "Dispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
