"""Shard routing: which replica gets which work.

Two policies, selectable by name:

* ``round-robin`` -- cycle through the eligible replicas; perfectly balanced
  and the right default for stateless simulated replicas.
* ``consistent-hash`` -- a hash ring with virtual nodes keyed on the
  request/image id, so the same image lands on the same replica while it is
  healthy (maximizing any per-replica cache locality) and only ``1/n`` of
  keys move when a replica joins or dies.

Routers are handed the *eligible* worker ids on every call; the dispatcher
filters out dead replicas and open circuits first, so policy and health stay
decoupled.
"""

from __future__ import annotations

import bisect
import threading
from typing import Sequence

from repro.errors import ClusterError
from repro.utils.rng import stable_hash

ROUTER_POLICIES = ("round-robin", "consistent-hash")


class ShardRouter:
    """Base class: maps a routing key to one of the eligible workers."""

    def add_worker(self, worker_id: str) -> None:
        """Register a replica (no-op for stateless policies)."""

    def remove_worker(self, worker_id: str) -> None:
        """Unregister a replica (no-op for stateless policies)."""

    def route(self, key: object, eligible: Sequence[str]) -> str:
        """Pick one of ``eligible`` for ``key``; raises when none remain."""
        raise NotImplementedError


class RoundRobinRouter(ShardRouter):
    """Cycle through eligible replicas in submission order."""

    def __init__(self) -> None:
        self._counter = 0
        self._lock = threading.Lock()

    def route(self, key: object, eligible: Sequence[str]) -> str:
        if not eligible:
            raise ClusterError("no eligible workers to route to")
        with self._lock:
            index = self._counter % len(eligible)
            self._counter += 1
        return eligible[index]


class ConsistentHashRouter(ShardRouter):
    """Hash-ring routing keyed on the request/image id.

    Each worker contributes ``virtual_nodes`` points on a 64-bit ring;
    a key routes to the first ring point at or after its own hash whose
    worker is currently eligible.  Stable ids mean stable placement.
    """

    def __init__(self, virtual_nodes: int = 64) -> None:
        if virtual_nodes <= 0:
            raise ClusterError("virtual_nodes must be positive")
        self._virtual_nodes = virtual_nodes
        self._ring: list[tuple[int, str]] = []
        self._points: list[int] = []
        self._workers: set[str] = set()
        self._lock = threading.Lock()

    def add_worker(self, worker_id: str) -> None:
        with self._lock:
            if worker_id in self._workers:
                return
            self._workers.add(worker_id)
            for i in range(self._virtual_nodes):
                point = stable_hash("ring", worker_id, i)
                index = bisect.bisect_left(self._points, point)
                self._points.insert(index, point)
                self._ring.insert(index, (point, worker_id))

    def remove_worker(self, worker_id: str) -> None:
        with self._lock:
            if worker_id not in self._workers:
                return
            self._workers.discard(worker_id)
            kept = [(p, w) for p, w in self._ring if w != worker_id]
            self._ring = kept
            self._points = [p for p, _ in kept]

    def route(self, key: object, eligible: Sequence[str]) -> str:
        if not eligible:
            raise ClusterError("no eligible workers to route to")
        eligible_set = set(eligible)
        with self._lock:
            ring = list(self._ring)
        if ring:
            start = bisect.bisect_right([p for p, _ in ring],
                                        stable_hash("key", key))
            for offset in range(len(ring)):
                _, worker_id = ring[(start + offset) % len(ring)]
                if worker_id in eligible_set:
                    return worker_id
        # No registered ring point is eligible (e.g. all eligible workers
        # joined without registration); fall back to a direct hash pick so
        # routing still succeeds deterministically.
        ordered = sorted(eligible_set)
        return ordered[stable_hash("fallback", key) % len(ordered)]


def make_router(policy: str | ShardRouter) -> ShardRouter:
    """Build a router from a policy name (or pass an instance through)."""
    if isinstance(policy, ShardRouter):
        return policy
    if policy == "round-robin":
        return RoundRobinRouter()
    if policy == "consistent-hash":
        return ConsistentHashRouter()
    raise ClusterError(
        f"unknown routing policy {policy!r}; expected one of {ROUTER_POLICIES}"
    )
