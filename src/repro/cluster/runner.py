"""Sharded offline corpus execution with exact mergeable aggregates.

The offline path of the paper blasts a corpus through one engine.  The
sharded runner partitions a labeled corpus into shards, fans the shards'
micro-batches out across the dispatcher's replicas, and folds per-shard
:class:`ShardAggregate` records (counts, correctness, prediction sums, and a
full confusion matrix) into exact global results -- every statistic merges
associatively, so the sharded totals are bit-identical to a single-process
run over the same corpus and plan.

Throughput is reported in modelled (simulated-accelerator) time: the cluster
makespan is the largest modelled service time any single replica executed,
which is what parallel replicas actually buy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.analytics.stats import Z_95, ci_half_width
from repro.cluster.dispatcher import Dispatcher
from repro.cluster.worker import Worker
from repro.errors import ClusterError
from repro.inference.mpmc import MpmcQueue
from repro.obs import NULL_OBS
from repro.serving.request import InferenceRequest
from repro.serving.session import EngineSession
from repro.utils.rng import stable_hash

SHARD_POLICIES = ("round-robin", "consistent-hash")


@dataclass(frozen=True)
class LabeledExample:
    """One corpus element: identity, ground-truth label, optional pixels."""

    image_id: str
    label: int
    payload: np.ndarray | None = None


@dataclass
class ShardAggregate:
    """Mergeable analytics aggregates for one shard (or the global total).

    Attributes
    ----------
    shard_id:
        The shard these numbers cover (-1 for a merged global total).
    count / correct:
        Examples seen and examples whose prediction matched the label.
    prediction_sum:
        Sum of predicted class indices (for exact mean predictions).
    confusion:
        ``confusion[label, prediction]`` counts, shape (num_classes,
        num_classes).
    modelled_seconds:
        Total modelled service time spent on this shard's batches.
    """

    shard_id: int
    num_classes: int
    count: int = 0
    correct: int = 0
    prediction_sum: int = 0
    modelled_seconds: float = 0.0
    confusion: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.num_classes <= 1:
            raise ClusterError("num_classes must be at least 2")
        if self.confusion is None:
            self.confusion = np.zeros(
                (self.num_classes, self.num_classes), dtype=np.int64
            )

    @property
    def accuracy(self) -> float:
        """Fraction of examples predicted correctly."""
        return self.correct / self.count if self.count else 0.0

    @property
    def mean_prediction(self) -> float:
        """Exact mean of predicted class indices."""
        return self.prediction_sum / self.count if self.count else 0.0

    def accuracy_ci_half_width(self, z: float = Z_95) -> float:
        """Normal-approximation CI half-width on the accuracy.

        Derived from the exactly merged integer counts, so sharded and
        single-process runs report bit-identical bounds.
        """
        accuracy = self.accuracy
        return ci_half_width(accuracy * (1.0 - accuracy), self.count, z=z)

    def observe(self, labels: Sequence[int],
                predictions: Sequence[int],
                modelled_seconds: float = 0.0) -> None:
        """Fold one executed micro-batch into the aggregate.

        Labels and predictions must both lie in ``[0, num_classes)`` --
        wrapping them silently would corrupt the confusion matrix while
        leaving count/accuracy plausible, so a mismatch raises instead.
        """
        for label, prediction in zip(labels, predictions):
            label, prediction = int(label), int(prediction)
            if not (0 <= label < self.num_classes
                    and 0 <= prediction < self.num_classes):
                raise ClusterError(
                    f"label {label} / prediction {prediction} outside the "
                    f"aggregate's {self.num_classes}-class space; size "
                    "num_classes to cover both the label space and the "
                    "session's prediction space"
                )
            self.count += 1
            self.prediction_sum += prediction
            if label == prediction:
                self.correct += 1
            self.confusion[label, prediction] += 1
        self.modelled_seconds += modelled_seconds

    def merge(self, other: "ShardAggregate") -> "ShardAggregate":
        """Exact associative merge of two aggregates (new object)."""
        if other.num_classes != self.num_classes:
            raise ClusterError("cannot merge aggregates of differing arity")
        return ShardAggregate(
            shard_id=-1,
            num_classes=self.num_classes,
            count=self.count + other.count,
            correct=self.correct + other.correct,
            prediction_sum=self.prediction_sum + other.prediction_sum,
            modelled_seconds=self.modelled_seconds + other.modelled_seconds,
            confusion=self.confusion + other.confusion,
        )

    @classmethod
    def merge_all(cls, aggregates: Sequence["ShardAggregate"],
                  num_classes: int) -> "ShardAggregate":
        """Merge any number of aggregates into one global total."""
        total = cls(shard_id=-1, num_classes=num_classes)
        for aggregate in aggregates:
            total = total.merge(aggregate)
        return total


@dataclass(frozen=True)
class CorpusRunReport:
    """The outcome of one (sharded or single-process) corpus run."""

    total: ShardAggregate
    shards: tuple[ShardAggregate, ...]
    per_worker_modelled_s: dict[str, float]
    num_workers: int
    wall_seconds: float

    @property
    def makespan_seconds(self) -> float:
        """Parallel modelled completion time: the busiest replica's load."""
        if self.per_worker_modelled_s:
            busiest = max(self.per_worker_modelled_s.values())
            if busiest > 0:
                return busiest
        return self.wall_seconds

    @property
    def simulated_throughput(self) -> float:
        """Images per second of modelled (parallel) time."""
        makespan = self.makespan_seconds
        return self.total.count / makespan if makespan > 0 else 0.0

    def describe(self) -> str:
        """Multi-line human-readable report."""
        return "\n".join([
            f"corpus:     {self.total.count} images over "
            f"{len(self.shards)} shards / {self.num_workers} workers",
            f"accuracy:   {self.total.accuracy * 100:.2f}% "
            f"({self.total.correct} correct)",
            f"mean pred:  {self.total.mean_prediction:.4f}",
            f"throughput: {self.simulated_throughput:,.0f} im/s simulated "
            f"(makespan {self.makespan_seconds:.3f}s)",
        ])


def split_frame_ranges(num_items: int,
                       num_shards: int) -> list[tuple[int, int]]:
    """Split ``range(num_items)`` into ``num_shards`` contiguous half-open
    ranges, balanced to within one item.

    Contiguous ranges are the natural sharding for frame scans (each worker
    reads one stretch of the video); with fewer items than shards the
    trailing ranges are empty, which downstream merges must tolerate.
    """
    if num_shards <= 0:
        raise ClusterError("num_shards must be positive")
    if num_items < 0:
        raise ClusterError("num_items cannot be negative")
    base, extra = divmod(num_items, num_shards)
    ranges: list[tuple[int, int]] = []
    start = 0
    for shard in range(num_shards):
        size = base + (1 if shard < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def assign_shards(examples: Sequence[LabeledExample], num_shards: int,
                  policy: str = "round-robin") -> list[list[LabeledExample]]:
    """Partition a corpus into shards.

    ``round-robin`` deals examples out evenly (balanced shards);
    ``consistent-hash`` keys on the image id (sticky shards whose membership
    survives reordering of the corpus).
    """
    if num_shards <= 0:
        raise ClusterError("num_shards must be positive")
    if policy not in SHARD_POLICIES:
        raise ClusterError(
            f"unknown shard policy {policy!r}; expected one of "
            f"{SHARD_POLICIES}"
        )
    shards: list[list[LabeledExample]] = [[] for _ in range(num_shards)]
    for index, example in enumerate(examples):
        if policy == "round-robin":
            shard = index % num_shards
        else:
            shard = stable_hash("shard", example.image_id) % num_shards
        shards[shard].append(example)
    return shards


class ShardedCorpusRunner:
    """Runs a labeled corpus across a dispatcher's replica pool.

    Parameters
    ----------
    worker_factory:
        ``factory(worker_id, results_queue) -> Worker`` building one warmed
        replica (all replicas must execute the same plan).
    num_workers:
        Replica count (also the shard count).
    num_classes:
        Arity of the confusion matrix; must cover both the label space and
        the session's prediction space.
    batch_size:
        Examples per dispatched micro-batch.
    shard_policy:
        How examples map to shards (see :func:`assign_shards`).
    format_name:
        Input rendition recorded on the generated requests.
    obs:
        Observability handle (:mod:`repro.obs`) forwarded to the dispatcher
        a run builds; the default :data:`~repro.obs.NULL_OBS` disables
        tracing and metrics with no per-batch cost.
    """

    def __init__(self, worker_factory: Callable[[str, MpmcQueue], Worker],
                 num_workers: int = 2, num_classes: int = 10,
                 batch_size: int = 32,
                 shard_policy: str = "round-robin",
                 router: str = "round-robin",
                 format_name: str = "full-jpeg", obs=NULL_OBS) -> None:
        if batch_size <= 0:
            raise ClusterError("batch_size must be positive")
        self._factory = worker_factory
        self._num_workers = num_workers
        self._num_classes = num_classes
        self._batch_size = batch_size
        self._shard_policy = shard_policy
        self._router = router
        self._format_name = format_name
        self._obs = obs if obs is not None else NULL_OBS

    def run(self, examples: Sequence[LabeledExample],
            dispatcher: Dispatcher | None = None,
            timeout_s: float = 60.0) -> CorpusRunReport:
        """Shard ``examples`` across the pool and merge exact aggregates.

        A ``dispatcher`` may be passed in (e.g. one a test is injecting
        faults into); otherwise a fresh pool is built and torn down.
        """
        if not examples:
            raise ClusterError("cannot run an empty corpus")
        owned = dispatcher is None
        if dispatcher is None:
            dispatcher = Dispatcher(self._factory,
                                    num_workers=self._num_workers,
                                    router=self._router,
                                    obs=self._obs)
        start = time.monotonic()
        try:
            shards = assign_shards(examples, self._num_workers,
                                   self._shard_policy)
            label_lookup: dict[int, list[int]] = {}
            futures = []
            for shard_id, shard in enumerate(shards):
                for offset in range(0, len(shard), self._batch_size):
                    chunk = shard[offset:offset + self._batch_size]
                    requests = tuple(
                        InferenceRequest(image_id=example.image_id,
                                         payload=example.payload,
                                         format_name=self._format_name)
                        for example in chunk
                    )
                    future = dispatcher.submit(requests, shard_id=shard_id)
                    futures.append(future)
                    label_lookup[id(future)] = [e.label for e in chunk]
            aggregates = [
                ShardAggregate(shard_id=i, num_classes=self._num_classes)
                for i in range(self._num_workers)
            ]
            per_worker: dict[str, float] = {}
            for future in futures:
                result = future.result(timeout=timeout_s)
                labels = label_lookup[id(future)]
                aggregates[result.shard_id].observe(
                    labels, result.predictions.tolist(),
                    result.modelled_seconds,
                )
                per_worker[result.worker_id] = (
                    per_worker.get(result.worker_id, 0.0)
                    + result.modelled_seconds
                )
        finally:
            if owned:
                dispatcher.close()
        wall = time.monotonic() - start
        total = ShardAggregate.merge_all(aggregates, self._num_classes)
        return CorpusRunReport(
            total=total,
            shards=tuple(aggregates),
            per_worker_modelled_s=per_worker,
            num_workers=self._num_workers,
            wall_seconds=wall,
        )


def run_single_process(examples: Sequence[LabeledExample],
                       session: EngineSession, num_classes: int = 10,
                       batch_size: int = 32,
                       format_name: str = "full-jpeg") -> CorpusRunReport:
    """Reference single-process run producing the same report shape.

    The sharded runner's global aggregates must match this path exactly --
    predictions depend only on (image id, plan), never on which replica
    executed them.
    """
    if not examples:
        raise ClusterError("cannot run an empty corpus")
    if not session.warmed:
        session.warmup()
    aggregate = ShardAggregate(shard_id=0, num_classes=num_classes)
    start = time.monotonic()
    for offset in range(0, len(examples), batch_size):
        chunk = examples[offset:offset + batch_size]
        requests = [
            InferenceRequest(image_id=example.image_id,
                             payload=example.payload,
                             format_name=format_name)
            for example in chunk
        ]
        result = session.execute(requests)
        aggregate.observe([e.label for e in chunk],
                          [int(p) for p in result.predictions],
                          result.modelled_seconds)
    wall = time.monotonic() - start
    total = ShardAggregate.merge_all([aggregate], num_classes)
    return CorpusRunReport(
        total=total,
        shards=(aggregate,),
        per_worker_modelled_s={"local": aggregate.modelled_seconds},
        num_workers=1,
        wall_seconds=wall,
    )
