"""repro: a reproduction of Smol (Kang et al., VLDB 2020).

Smol jointly optimizes preprocessing (decode, resize, normalize, layout) and
DNN execution for visual analytics queries.  This package re-implements the
full system and every substrate it depends on in pure Python/numpy:

* :mod:`repro.hardware` -- accelerator/CPU/instance models (calibrated).
* :mod:`repro.codecs` -- JPEG-like, PNG-like, and H.264-like codecs with
  partial, early-stopping and reduced-fidelity decoding.
* :mod:`repro.preprocessing` -- preprocessing operators, DAG optimizer, and
  CPU/accelerator placement.
* :mod:`repro.nn` -- a numpy mini neural-network framework plus a calibrated
  model zoo of standard ResNets and specialized NNs.
* :mod:`repro.inference` -- the pipelined MPMC runtime engine, buffer pools,
  and backend efficiency models.
* :mod:`repro.core` -- the Smol planner: preprocessing-aware cost model, plan
  enumeration over DNNs x input formats, Pareto frontier, and constraints.
* :mod:`repro.analytics` -- Tahoma-style cascades and BlazeIt-style
  aggregation queries built on top of Smol.
* :mod:`repro.datasets` -- synthetic multi-resolution image and video
  datasets standing in for the paper's eight evaluation datasets.
* :mod:`repro.measurement` -- the Section 2 measurement study and the
  Section 7 power/dollar cost analysis.
* :mod:`repro.baselines` -- naive ResNets, Tahoma, BlazeIt, DALI-like and
  PyTorch-loader baselines.
* :mod:`repro.serving` -- Smol-Serve, the online serving subsystem: typed
  requests, adaptive micro-batching, plan-aware sessions, prediction
  caching, and an open-loop load generator.
* :mod:`repro.cluster` -- Smol-Cluster, the sharded multi-worker execution
  runtime: replica workers, shard routing, a failover dispatcher with
  heartbeats and circuit breakers, queue-depth autoscaling, and exact
  sharded corpus aggregation.
* :mod:`repro.query` -- Smol-Query, the declarative analytics query
  front-end: one ``QuerySpec`` API for aggregation/limit/cascade queries,
  planner-chosen plans per stage, cheap passes sharded over the cluster
  runtime, and exactly merged per-shard statistics (results bit-identical
  to the single-process engines).
* :mod:`repro.store` -- Smol-Store, the persistent rendition & score
  store: content-addressed chunked storage with an in-memory LRU tier, an
  atomic versioned manifest with fingerprint invalidation, read/write-
  through scan sessions, and cache-aware plan costing for materialized
  renditions.
* :mod:`repro.adapt` -- Smol-Adapt, online cost-feedback replanning:
  runtime stage-cost telemetry from serving, cluster, and scan execution,
  an EWMA/quantile-guarded online calibrator feeding the cost model, a
  hysteresis drift detector, and a replanner that hot-swaps the chosen
  plan into live servers and in-flight shard scans without changing any
  query result.
* :mod:`repro.obs` -- Smol-Scope, the observability layer: structured
  tracing with trace contexts that ride requests and work items across
  thread and process hops, a unified metrics registry (counters, gauges,
  histograms), a stage-event bus feeding the adaptive telemetry, and
  exporters for JSONL span logs, Chrome ``trace_event`` profiles, and
  Prometheus text -- all behind an allocation-free null default.

Quickstart
----------
>>> from repro import Smol
>>> from repro.datasets import load_image_dataset
>>> dataset = load_image_dataset("bike-bird")
>>> smol = Smol.for_dataset(dataset)
>>> plan = smol.best_plan(accuracy_floor=0.99)
>>> result = smol.run(plan, limit=100)
"""

from repro._version import __version__
from repro.core.smol import Smol
from repro.core.plans import Plan, PlanConstraints
from repro.core.costmodel import (
    SmolCostModel,
    ExecutionOnlyCostModel,
    SerialSumCostModel,
)
from repro.serving import (
    BatchPolicy,
    InferenceRequest,
    LoadGenerator,
    SmolServer,
)
from repro.cluster import (
    AutoscalePolicy,
    Autoscaler,
    ClusterResult,
    Dispatcher,
    LabeledExample,
    ProcessWorker,
    SessionSpec,
    ShardedCorpusRunner,
    ThreadWorker,
)
from repro.query import QueryEngine, QuerySpec
from repro.store import RenditionStore, ScoreKey, StoreCatalog
from repro.adapt import (
    AdaptiveController,
    DriftDetector,
    OnlineCalibrator,
    Replanner,
    TelemetryCollector,
)
from repro.obs import NULL_OBS, Observability

__all__ = [
    "__version__",
    "Smol",
    "Plan",
    "PlanConstraints",
    "SmolCostModel",
    "ExecutionOnlyCostModel",
    "SerialSumCostModel",
    "SmolServer",
    "BatchPolicy",
    "InferenceRequest",
    "LoadGenerator",
    "AutoscalePolicy",
    "Autoscaler",
    "ClusterResult",
    "Dispatcher",
    "LabeledExample",
    "ProcessWorker",
    "SessionSpec",
    "ShardedCorpusRunner",
    "ThreadWorker",
    "QueryEngine",
    "QuerySpec",
    "RenditionStore",
    "ScoreKey",
    "StoreCatalog",
    "AdaptiveController",
    "DriftDetector",
    "OnlineCalibrator",
    "Replanner",
    "TelemetryCollector",
    "Observability",
    "NULL_OBS",
]
