"""Preprocessing computation DAG.

Smol accepts preprocessing steps as a directed acyclic computation graph
(Section 6.2).  The common pipelines are linear chains, but the DAG form lets
the optimizer express reordering, fusion, and per-operator device placement
while validating structural invariants (acyclicity, single source/sink for
executable chains).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import networkx as nx
import numpy as np

from repro.errors import InvalidDAGError
from repro.preprocessing.ops import PreprocessingOp, TensorSpec


@dataclass
class DagNode:
    """One operator instance in a preprocessing DAG."""

    node_id: str
    op: PreprocessingOp
    device: str = "cpu"

    def __post_init__(self) -> None:
        if self.device not in ("cpu", "accelerator"):
            raise InvalidDAGError(
                f"device must be 'cpu' or 'accelerator', got {self.device!r}"
            )


class PreprocessingDAG:
    """A directed acyclic graph of preprocessing operators."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._counter = 0

    @classmethod
    def from_ops(cls, ops: Sequence[PreprocessingOp],
                 device: str = "cpu") -> "PreprocessingDAG":
        """Build a linear chain DAG from an ordered operator list."""
        dag = cls()
        previous = None
        for op in ops:
            node = dag.add_op(op, device=device)
            if previous is not None:
                dag.add_edge(previous, node)
            previous = node
        return dag

    def add_op(self, op: PreprocessingOp, device: str = "cpu") -> str:
        """Add an operator node and return its node id."""
        node_id = f"{op.name}-{self._counter}"
        self._counter += 1
        self._graph.add_node(node_id, node=DagNode(node_id=node_id, op=op,
                                                   device=device))
        return node_id

    def add_edge(self, src: str, dst: str) -> None:
        """Add a dependency edge ``src -> dst``, rejecting cycles."""
        if src not in self._graph or dst not in self._graph:
            raise InvalidDAGError("both endpoints must be existing nodes")
        self._graph.add_edge(src, dst)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(src, dst)
            raise InvalidDAGError(f"edge {src} -> {dst} would create a cycle")

    def node(self, node_id: str) -> DagNode:
        """Return the :class:`DagNode` with the given id."""
        try:
            return self._graph.nodes[node_id]["node"]
        except KeyError as exc:
            raise InvalidDAGError(f"no node {node_id!r}") from exc

    def nodes(self) -> list[DagNode]:
        """All nodes in insertion order."""
        return [self._graph.nodes[n]["node"] for n in self._graph.nodes]

    def topological_ops(self) -> list[DagNode]:
        """Nodes in a deterministic topological order."""
        order = list(nx.lexicographical_topological_sort(self._graph))
        return [self._graph.nodes[n]["node"] for n in order]

    @property
    def num_nodes(self) -> int:
        """Number of operator nodes."""
        return self._graph.number_of_nodes()

    def validate(self) -> None:
        """Check structural invariants for an executable chain.

        The executable form must be a connected chain with exactly one source
        and one sink (each image flows through every operator once).
        """
        if self.num_nodes == 0:
            raise InvalidDAGError("empty preprocessing DAG")
        if not nx.is_directed_acyclic_graph(self._graph):
            raise InvalidDAGError("preprocessing graph contains a cycle")
        sources = [n for n in self._graph if self._graph.in_degree(n) == 0]
        sinks = [n for n in self._graph if self._graph.out_degree(n) == 0]
        if len(sources) != 1 or len(sinks) != 1:
            raise InvalidDAGError(
                "executable pipelines need one source and one sink, found "
                f"{len(sources)} sources and {len(sinks)} sinks"
            )
        if self.num_nodes > 1 and not nx.is_weakly_connected(self._graph):
            raise InvalidDAGError("preprocessing graph is disconnected")

    def execute(self, array: np.ndarray) -> np.ndarray:
        """Run the pipeline on a real array (functional path)."""
        self.validate()
        result = array
        for node in self.topological_ops():
            result = node.op.apply(result)
        return result

    def output_spec(self, input_spec: TensorSpec) -> TensorSpec:
        """Propagate a tensor spec through the pipeline."""
        self.validate()
        spec = input_spec
        for node in self.topological_ops():
            spec = node.op.output_spec(spec)
        return spec

    def op_sequence(self) -> list[PreprocessingOp]:
        """The operators in execution order."""
        return [node.op for node in self.topological_ops()]

    def devices(self) -> dict[str, str]:
        """Mapping of node id to assigned device."""
        return {node.node_id: node.device for node in self.nodes()}

    def assign_devices(self, assignment: dict[str, str]) -> None:
        """Set the device for each node id in ``assignment``."""
        for node_id, device in assignment.items():
            node = self.node(node_id)
            if device not in ("cpu", "accelerator"):
                raise InvalidDAGError(f"invalid device {device!r}")
            node.device = device

    def copy(self) -> "PreprocessingDAG":
        """Deep-ish copy preserving ops (ops are immutable) and devices."""
        clone = PreprocessingDAG()
        mapping: dict[str, str] = {}
        for node in self.topological_ops():
            mapping[node.node_id] = clone.add_op(node.op, device=node.device)
        for src, dst in self._graph.edges:
            clone.add_edge(mapping[src], mapping[dst])
        return clone

    def describe(self) -> str:
        """One-line human-readable description of the pipeline."""
        parts = [
            f"{node.op.name}@{node.device}" for node in self.topological_ops()
        ]
        return " -> ".join(parts)
