"""Hardware- and input-aware placement of preprocessing operators (Section 6.3).

Preprocessing operators can run on the CPU or the accelerator.  When DNN
execution dominates, Smol keeps preprocessing on the CPU (the accelerator has
no spare cycles to give is wrong -- the CPU is the idle resource); when
preprocessing dominates, Smol moves as many operators as possible onto the
accelerator to rebalance the pipeline.  Because preprocessing operators form a
short sequential chain, only a handful of split points need to be considered
(typically under 5 per model/format pair).

Entropy decoding stays on the CPU: its branch-heavy structure is a poor fit
for DNN accelerators (Section 6.4), so only post-decode operators are eligible
for accelerator placement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import PlacementError
from repro.preprocessing.dag import PreprocessingDAG
from repro.preprocessing.ops import DecodeOp, PreprocessingOp, TensorSpec


class Placement(enum.Enum):
    """Where an operator runs."""

    CPU = "cpu"
    ACCELERATOR = "accelerator"


@dataclass(frozen=True)
class PlacementDecision:
    """A placement of a pipeline's operators across CPU and accelerator.

    Attributes
    ----------
    split_index:
        Operators before this index run on the CPU; the rest run on the
        accelerator.  ``split_index == len(ops)`` keeps everything on CPU.
    cpu_throughput, accelerator_throughput:
        Predicted per-stage throughputs (images/second) under this placement.
    end_to_end_throughput:
        Predicted pipelined throughput: the min of the two stages.
    """

    split_index: int
    cpu_throughput: float
    accelerator_throughput: float

    @property
    def end_to_end_throughput(self) -> float:
        """Pipelined throughput implied by this placement."""
        return min(self.cpu_throughput, self.accelerator_throughput)


class PlacementOptimizer:
    """Chooses a CPU/accelerator split for a preprocessing pipeline.

    The optimizer needs throughput estimates for each candidate split.  The
    caller supplies two callables mapping "ops assigned to that device" to a
    throughput; in practice these come from the performance model
    (:mod:`repro.inference.perfmodel`), which accounts for both the
    preprocessing work and the DNN execution sharing the accelerator.
    """

    def __init__(self, cpu_throughput_fn, accelerator_throughput_fn) -> None:
        self._cpu_throughput_fn = cpu_throughput_fn
        self._accelerator_throughput_fn = accelerator_throughput_fn

    def candidate_splits(self, ops: list[PreprocessingOp]) -> list[int]:
        """Valid split indices: decode must stay on the CPU."""
        if not ops:
            raise PlacementError("cannot place an empty pipeline")
        first_movable = 0
        for index, op in enumerate(ops):
            if isinstance(op, DecodeOp):
                first_movable = index + 1
        return list(range(first_movable, len(ops) + 1))

    def optimize(self, ops: list[PreprocessingOp],
                 input_spec: TensorSpec) -> PlacementDecision:
        """Pick the split maximizing pipelined throughput."""
        best: PlacementDecision | None = None
        for split in self.candidate_splits(ops):
            cpu_ops = ops[:split]
            accel_ops = ops[split:]
            cpu_tp = self._cpu_throughput_fn(cpu_ops, input_spec)
            accel_tp = self._accelerator_throughput_fn(accel_ops, input_spec)
            decision = PlacementDecision(
                split_index=split,
                cpu_throughput=cpu_tp,
                accelerator_throughput=accel_tp,
            )
            if best is None or (
                decision.end_to_end_throughput > best.end_to_end_throughput
            ):
                best = decision
        if best is None:
            raise PlacementError("no feasible placement found")
        return best

    def apply(self, dag: PreprocessingDAG,
              decision: PlacementDecision) -> PreprocessingDAG:
        """Return a copy of ``dag`` with devices assigned per ``decision``."""
        placed = dag.copy()
        nodes = placed.topological_ops()
        if decision.split_index > len(nodes):
            raise PlacementError("split index exceeds pipeline length")
        assignment = {}
        for index, node in enumerate(nodes):
            device = "cpu" if index < decision.split_index else "accelerator"
            assignment[node.node_id] = device
        placed.assign_devices(assignment)
        return placed
