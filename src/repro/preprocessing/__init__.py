"""Preprocessing operators and their optimizer.

Standard DNN inference preprocessing (Section 2 of the paper):

1. decode the compressed image,
2. aspect-preserving resize then central crop,
3. convert to float32 and normalize by per-channel statistics,
4. reorder pixels to channels-first.

This package provides the operators as executable numpy functions, a DAG
representation of a preprocessing pipeline, a rule-based + cost-based DAG
optimizer (fusion, reordering, dtype-aware resizing, Section 6.2), and an
operator placement pass that assigns operators to the CPU or the accelerator
(Section 6.3).
"""

from repro.preprocessing.ops import (
    PreprocessingOp,
    DecodeOp,
    ResizeOp,
    CenterCropOp,
    ConvertDtypeOp,
    NormalizeOp,
    ChannelReorderOp,
    FusedNormalizeReorderOp,
    standard_pipeline_ops,
)
from repro.preprocessing.dag import PreprocessingDAG, DagNode
from repro.preprocessing.optimizer import DagOptimizer, OptimizationReport
from repro.preprocessing.placement import (
    Placement,
    PlacementDecision,
    PlacementOptimizer,
)
from repro.preprocessing.cost import arithmetic_ops, pipeline_arithmetic_ops

__all__ = [
    "PreprocessingOp",
    "DecodeOp",
    "ResizeOp",
    "CenterCropOp",
    "ConvertDtypeOp",
    "NormalizeOp",
    "ChannelReorderOp",
    "FusedNormalizeReorderOp",
    "standard_pipeline_ops",
    "PreprocessingDAG",
    "DagNode",
    "DagOptimizer",
    "OptimizationReport",
    "Placement",
    "PlacementDecision",
    "PlacementOptimizer",
    "arithmetic_ops",
    "pipeline_arithmetic_ops",
]
