"""Executable preprocessing operators.

Each operator transforms a numpy tensor and exposes enough metadata for the
DAG optimizer: the shape/dtype it produces, whether it can be fused with its
neighbours, and how many arithmetic operations it performs (the cost proxy
Smol uses for cost-based plan selection, Section 6.2).

Operators run on real arrays so the functional tests and the accuracy
experiments exercise genuine computation; the performance models separately
charge calibrated per-operation costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PreprocessingError

# ImageNet normalization constants (mean/std in [0, 1] units), the standard
# per-channel values the paper's step (3) refers to.
IMAGENET_MEAN = np.array([0.485, 0.456, 0.406], dtype=np.float32)
IMAGENET_STD = np.array([0.229, 0.224, 0.225], dtype=np.float32)


@dataclass(frozen=True)
class TensorSpec:
    """Shape and dtype of an intermediate tensor in the pipeline."""

    height: int
    width: int
    channels: int
    dtype: str = "uint8"
    layout: str = "HWC"

    @property
    def pixels(self) -> int:
        """Number of pixels in the tensor."""
        return self.height * self.width

    @property
    def elements(self) -> int:
        """Number of scalar elements in the tensor."""
        return self.height * self.width * self.channels

    @property
    def bytes_per_element(self) -> int:
        """Size in bytes of one element."""
        return {"uint8": 1, "float16": 2, "float32": 4}.get(self.dtype, 4)

    @property
    def nbytes(self) -> int:
        """Total size of the tensor in bytes."""
        return self.elements * self.bytes_per_element


class PreprocessingOp:
    """Base class for preprocessing operators."""

    #: Short stable identifier used by the DAG and the cost model.
    name: str = "op"
    #: True when the op only changes element values, not shape/layout, and so
    #: can be reordered freely within the pipeline (paper rule 1).
    value_only: bool = False
    #: True when the op may be fused with adjacent value-only ops (rule 2).
    fusable: bool = False

    def apply(self, array: np.ndarray) -> np.ndarray:
        """Execute the operator on ``array``."""
        raise NotImplementedError

    def output_spec(self, spec: TensorSpec) -> TensorSpec:
        """Return the tensor spec after applying this op to ``spec``."""
        raise NotImplementedError

    def arithmetic_ops(self, spec: TensorSpec) -> float:
        """Estimated arithmetic operations to apply this op to ``spec``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@dataclass(frozen=True)
class DecodeOp(PreprocessingOp):
    """Marker op for decoding the compressed input.

    Decoding itself is performed by the codecs; this node exists in the DAG so
    placement and cost accounting cover the full pipeline.  ``roi_fraction``
    records how much of the image a partial decode touches.
    """

    format_name: str = "jpeg"
    roi_fraction: float = 1.0
    name: str = field(default="decode", init=False)

    def apply(self, array: np.ndarray) -> np.ndarray:
        return array

    def output_spec(self, spec: TensorSpec) -> TensorSpec:
        return spec

    def arithmetic_ops(self, spec: TensorSpec) -> float:
        # Entropy decode + IDCT work is roughly proportional to coded pixels.
        return 80.0 * spec.pixels * spec.channels * self.roi_fraction


@dataclass(frozen=True)
class ResizeOp(PreprocessingOp):
    """Aspect-preserving bilinear resize so the short side equals ``short_side``."""

    short_side: int = 256
    name: str = field(default="resize", init=False)

    def __post_init__(self) -> None:
        if self.short_side <= 0:
            raise PreprocessingError("short_side must be positive")

    def apply(self, array: np.ndarray) -> np.ndarray:
        height, width = array.shape[:2]
        scale = self.short_side / min(height, width)
        new_h = max(1, int(round(height * scale)))
        new_w = max(1, int(round(width * scale)))
        return bilinear_resize(array, new_h, new_w)

    def output_spec(self, spec: TensorSpec) -> TensorSpec:
        scale = self.short_side / min(spec.height, spec.width)
        return TensorSpec(
            height=max(1, int(round(spec.height * scale))),
            width=max(1, int(round(spec.width * scale))),
            channels=spec.channels,
            dtype=spec.dtype,
            layout=spec.layout,
        )

    def arithmetic_ops(self, spec: TensorSpec) -> float:
        out = self.output_spec(spec)
        # 4 taps, 3 multiply-adds each per output element; float costs ~2x int8.
        dtype_factor = 2.0 if spec.dtype != "uint8" else 1.0
        work_pixels = max(spec.pixels, out.pixels)
        return 12.0 * work_pixels * spec.channels * dtype_factor


@dataclass(frozen=True)
class CenterCropOp(PreprocessingOp):
    """Central crop to ``size`` x ``size`` pixels."""

    size: int = 224
    name: str = field(default="crop", init=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise PreprocessingError("crop size must be positive")

    def apply(self, array: np.ndarray) -> np.ndarray:
        height, width = array.shape[:2]
        if height < self.size or width < self.size:
            raise PreprocessingError(
                f"cannot crop {self.size}x{self.size} from {height}x{width}"
            )
        top = (height - self.size) // 2
        left = (width - self.size) // 2
        return array[top:top + self.size, left:left + self.size].copy()

    def output_spec(self, spec: TensorSpec) -> TensorSpec:
        if spec.height < self.size or spec.width < self.size:
            raise PreprocessingError(
                f"cannot crop {self.size} from {spec.height}x{spec.width}"
            )
        return TensorSpec(height=self.size, width=self.size,
                          channels=spec.channels, dtype=spec.dtype,
                          layout=spec.layout)

    def arithmetic_ops(self, spec: TensorSpec) -> float:
        # A crop is a copy: count one op per copied element.
        return float(self.size * self.size * spec.channels)


@dataclass(frozen=True)
class ConvertDtypeOp(PreprocessingOp):
    """Convert the tensor to another dtype (usually uint8 -> float32)."""

    target_dtype: str = "float32"
    name: str = field(default="convert", init=False)
    value_only: bool = field(default=True, init=False)
    fusable: bool = field(default=True, init=False)

    def apply(self, array: np.ndarray) -> np.ndarray:
        return array.astype(self.target_dtype)

    def output_spec(self, spec: TensorSpec) -> TensorSpec:
        return TensorSpec(height=spec.height, width=spec.width,
                          channels=spec.channels, dtype=self.target_dtype,
                          layout=spec.layout)

    def arithmetic_ops(self, spec: TensorSpec) -> float:
        return float(spec.elements)


@dataclass(frozen=True)
class NormalizeOp(PreprocessingOp):
    """Scale to [0, 1] then normalize with per-channel mean and std."""

    mean: tuple[float, ...] = tuple(IMAGENET_MEAN.tolist())
    std: tuple[float, ...] = tuple(IMAGENET_STD.tolist())
    name: str = field(default="normalize", init=False)
    value_only: bool = field(default=True, init=False)
    fusable: bool = field(default=True, init=False)

    def apply(self, array: np.ndarray) -> np.ndarray:
        data = array.astype(np.float32) / 255.0
        mean = np.asarray(self.mean, dtype=np.float32)
        std = np.asarray(self.std, dtype=np.float32)
        if data.ndim != 3 or data.shape[2] != len(self.mean):
            raise PreprocessingError(
                f"normalize expects HWC with {len(self.mean)} channels, "
                f"got shape {data.shape}"
            )
        return (data - mean) / std

    def output_spec(self, spec: TensorSpec) -> TensorSpec:
        return TensorSpec(height=spec.height, width=spec.width,
                          channels=spec.channels, dtype="float32",
                          layout=spec.layout)

    def arithmetic_ops(self, spec: TensorSpec) -> float:
        # divide by 255, subtract mean, divide by std: 3 ops per element.
        return 3.0 * spec.elements


@dataclass(frozen=True)
class ChannelReorderOp(PreprocessingOp):
    """Rearrange HWC to CHW (channels-first), as most DNN graphs expect."""

    name: str = field(default="reorder", init=False)
    value_only: bool = field(default=False, init=False)
    fusable: bool = field(default=True, init=False)

    def apply(self, array: np.ndarray) -> np.ndarray:
        if array.ndim != 3:
            raise PreprocessingError("channel reorder expects an HWC tensor")
        return np.ascontiguousarray(np.transpose(array, (2, 0, 1)))

    def output_spec(self, spec: TensorSpec) -> TensorSpec:
        return TensorSpec(height=spec.height, width=spec.width,
                          channels=spec.channels, dtype=spec.dtype,
                          layout="CHW")

    def arithmetic_ops(self, spec: TensorSpec) -> float:
        # Pure data movement: one op per element moved.
        return float(spec.elements)


@dataclass(frozen=True)
class FusedNormalizeReorderOp(PreprocessingOp):
    """Fusion of convert + normalize + channel reorder in a single pass.

    The paper's rule 2 allows fusing normalization, dtype conversion, and
    channel reordering; the fused kernel reads each input element once and
    writes each output element once.
    """

    mean: tuple[float, ...] = tuple(IMAGENET_MEAN.tolist())
    std: tuple[float, ...] = tuple(IMAGENET_STD.tolist())
    name: str = field(default="fused-normalize-reorder", init=False)
    value_only: bool = field(default=False, init=False)
    fusable: bool = field(default=False, init=False)

    def apply(self, array: np.ndarray) -> np.ndarray:
        normalized = NormalizeOp(mean=self.mean, std=self.std).apply(array)
        return np.ascontiguousarray(np.transpose(normalized, (2, 0, 1)))

    def output_spec(self, spec: TensorSpec) -> TensorSpec:
        return TensorSpec(height=spec.height, width=spec.width,
                          channels=spec.channels, dtype="float32", layout="CHW")

    def arithmetic_ops(self, spec: TensorSpec) -> float:
        # One fused pass: 3 arithmetic ops plus one move per element, versus
        # 5 (1 convert + 3 normalize + 1 reorder) for the unfused sequence.
        return 4.0 * spec.elements


def bilinear_resize(array: np.ndarray, new_height: int, new_width: int) -> np.ndarray:
    """Bilinear resize of an HWC array, preserving its dtype."""
    if array.ndim != 3:
        raise PreprocessingError("resize expects an HWC tensor")
    if new_height <= 0 or new_width <= 0:
        raise PreprocessingError("target dimensions must be positive")
    height, width = array.shape[:2]
    if (new_height, new_width) == (height, width):
        return array.copy()
    row_positions = np.linspace(0, height - 1, new_height)
    col_positions = np.linspace(0, width - 1, new_width)
    row0 = np.floor(row_positions).astype(np.int64)
    col0 = np.floor(col_positions).astype(np.int64)
    row1 = np.minimum(row0 + 1, height - 1)
    col1 = np.minimum(col0 + 1, width - 1)
    row_frac = (row_positions - row0)[:, None, None]
    col_frac = (col_positions - col0)[None, :, None]
    data = array.astype(np.float64)
    top = data[row0][:, col0] * (1 - col_frac) + data[row0][:, col1] * col_frac
    bottom = data[row1][:, col0] * (1 - col_frac) + data[row1][:, col1] * col_frac
    result = top * (1 - row_frac) + bottom * row_frac
    if np.issubdtype(array.dtype, np.integer):
        return np.clip(np.round(result), 0, 255).astype(array.dtype)
    return result.astype(array.dtype)


def standard_pipeline_ops(input_short_side: int = 256, crop_size: int = 224,
                          format_name: str = "jpeg") -> list[PreprocessingOp]:
    """The standard (unoptimized) ResNet preprocessing pipeline from Section 2."""
    return [
        DecodeOp(format_name=format_name),
        ResizeOp(short_side=input_short_side),
        CenterCropOp(size=crop_size),
        ConvertDtypeOp(target_dtype="float32"),
        NormalizeOp(),
        ChannelReorderOp(),
    ]
