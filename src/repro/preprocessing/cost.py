"""Arithmetic-operation cost accounting for preprocessing pipelines.

Smol approximates the cost of a candidate preprocessing plan by counting the
arithmetic operations each operator performs for the given input shape and
data types (Section 6.2).  The count is a relative measure used only to rank
candidate plans after rule-based pruning.
"""

from __future__ import annotations

from typing import Sequence

from repro.preprocessing.ops import PreprocessingOp, TensorSpec


def arithmetic_ops(op: PreprocessingOp, spec: TensorSpec) -> float:
    """Arithmetic operations performed by one operator on ``spec``."""
    return op.arithmetic_ops(spec)


def pipeline_arithmetic_ops(ops: Sequence[PreprocessingOp],
                            input_spec: TensorSpec) -> float:
    """Total arithmetic operations of an operator sequence.

    The tensor spec is propagated through the pipeline so that, for example,
    a resize placed before normalization makes the normalization cheaper
    (fewer pixels) and dtype conversions made later keep earlier ops on int8.
    """
    total = 0.0
    spec = input_spec
    for op in ops:
        total += op.arithmetic_ops(spec)
        spec = op.output_spec(spec)
    return total


def per_stage_arithmetic_ops(ops: Sequence[PreprocessingOp],
                             input_spec: TensorSpec) -> dict[str, float]:
    """Per-operator arithmetic-op counts keyed by operator name."""
    breakdown: dict[str, float] = {}
    spec = input_spec
    for op in ops:
        breakdown[op.name] = breakdown.get(op.name, 0.0) + op.arithmetic_ops(spec)
        spec = op.output_spec(spec)
    return breakdown
