"""Rule-based and cost-based optimization of preprocessing DAGs (Section 6.2).

The optimizer enumerates candidate operator orderings allowed by reordering
rules, prunes candidates with rule-based heuristics, applies fusion, and then
picks the cheapest remaining plan by counting arithmetic operations.

Reordering rules (from the paper):
  1. normalization and dtype conversion may be placed anywhere in the chain;
  2. normalization, dtype conversion, and channel reordering can be fused;
  3. resizing and cropping can be swapped.

Pruning rules:
  1. resizing is cheaper with fewer pixels (prefer cropping/ROI first);
  2. resizing is cheaper on smaller data types (resize before float conversion);
  3. fusion always improves performance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.errors import PreprocessingError
from repro.preprocessing.cost import pipeline_arithmetic_ops
from repro.preprocessing.dag import PreprocessingDAG
from repro.preprocessing.ops import (
    CenterCropOp,
    ChannelReorderOp,
    ConvertDtypeOp,
    DecodeOp,
    FusedNormalizeReorderOp,
    NormalizeOp,
    PreprocessingOp,
    ResizeOp,
    TensorSpec,
)


def _pipeline_output_spec(ops: list[PreprocessingOp],
                          input_spec: TensorSpec) -> TensorSpec:
    """Propagate ``input_spec`` through ``ops``."""
    spec = input_spec
    for op in ops:
        spec = op.output_spec(spec)
    return spec


@dataclass
class OptimizationReport:
    """Result of optimizing a preprocessing pipeline.

    Attributes
    ----------
    original_ops, optimized_ops:
        Operator sequences before and after optimization.
    original_cost, optimized_cost:
        Arithmetic-operation counts of the two sequences for the input spec.
    candidates_generated, candidates_pruned:
        Search statistics from plan enumeration.
    applied_fusion:
        True when the fused normalize/convert/reorder kernel was selected.
    """

    original_ops: list[PreprocessingOp]
    optimized_ops: list[PreprocessingOp]
    original_cost: float
    optimized_cost: float
    candidates_generated: int = 0
    candidates_pruned: int = 0
    applied_fusion: bool = False
    notes: list[str] = field(default_factory=list)

    @property
    def cost_reduction(self) -> float:
        """Fractional reduction in arithmetic operations."""
        if self.original_cost <= 0:
            return 0.0
        return 1.0 - self.optimized_cost / self.original_cost

    def optimized_dag(self, device: str = "cpu") -> PreprocessingDAG:
        """Build a DAG for the optimized operator sequence."""
        return PreprocessingDAG.from_ops(self.optimized_ops, device=device)


class DagOptimizer:
    """Optimizes a linear preprocessing pipeline."""

    def __init__(self, enable_fusion: bool = True,
                 enable_reordering: bool = True,
                 max_candidates: int = 5000) -> None:
        self._enable_fusion = enable_fusion
        self._enable_reordering = enable_reordering
        self._max_candidates = max_candidates

    def candidates(self, ops: list[PreprocessingOp], input_spec: TensorSpec,
                   fused: bool | None = None) -> list[list[PreprocessingOp]]:
        """Every candidate ordering the optimizer would consider, post-prune.

        Each returned sequence is guaranteed output-equivalent to ``ops``
        (the contract the equivalence property tests enforce).  ``fused``
        overrides the optimizer's fusion setting for this enumeration.
        """
        if not ops:
            raise PreprocessingError("cannot optimize an empty pipeline")
        reference_spec = _pipeline_output_spec(ops, input_spec)
        kept, _ = self._prune(self._generate_candidates(ops), input_spec,
                              reference_spec, ops)
        apply_fusion = self._enable_fusion if fused is None else fused
        if apply_fusion:
            kept = [self._fuse(seq) for seq in kept]
        return kept

    def optimize(self, ops: list[PreprocessingOp],
                 input_spec: TensorSpec) -> OptimizationReport:
        """Optimize an operator sequence for the given input tensor spec."""
        if not ops:
            raise PreprocessingError("cannot optimize an empty pipeline")
        original_cost = pipeline_arithmetic_ops(ops, input_spec)
        reference_spec = _pipeline_output_spec(ops, input_spec)
        candidates = self._generate_candidates(ops)
        generated = len(candidates)
        candidates, pruned = self._prune(candidates, input_spec,
                                         reference_spec, ops)
        fused_applied = False
        if self._enable_fusion:
            fused_candidates = [self._fuse(seq) for seq in candidates]
            # Pruning rule 3: fusion always improves performance, so fused
            # forms replace their unfused counterparts.
            candidates = fused_candidates
            fused_applied = any(
                any(isinstance(op, FusedNormalizeReorderOp) for op in seq)
                for seq in candidates
            )
        best = min(
            candidates,
            key=lambda seq: pipeline_arithmetic_ops(seq, input_spec),
        )
        optimized_cost = pipeline_arithmetic_ops(best, input_spec)
        notes = []
        if optimized_cost > original_cost:
            # Never return a plan worse than the input pipeline.
            best = list(ops)
            optimized_cost = original_cost
            notes.append("optimization found no cheaper plan; kept original")
        return OptimizationReport(
            original_ops=list(ops),
            optimized_ops=list(best),
            original_cost=original_cost,
            optimized_cost=optimized_cost,
            candidates_generated=generated,
            candidates_pruned=pruned,
            applied_fusion=fused_applied,
            notes=notes,
        )

    def _generate_candidates(
        self, ops: list[PreprocessingOp]
    ) -> list[list[PreprocessingOp]]:
        """Enumerate orderings permitted by the reordering rules."""
        if not self._enable_reordering:
            return [list(ops)]
        decode_ops = [op for op in ops if isinstance(op, DecodeOp)]
        movable = [op for op in ops
                   if isinstance(op, (ConvertDtypeOp, NormalizeOp))]
        reorder_ops = [op for op in ops if isinstance(op, ChannelReorderOp)]
        geometric = [op for op in ops
                     if isinstance(op, (ResizeOp, CenterCropOp))]
        other = [
            op for op in ops
            if op not in decode_ops and op not in movable
            and op not in reorder_ops and op not in geometric
        ]
        # Geometric ops: the original order plus the swapped order (rule 3).
        geometric_orders = [geometric]
        if len(geometric) == 2:
            geometric_orders.append(list(reversed(geometric)))
        candidates: list[list[PreprocessingOp]] = []
        for geo in geometric_orders:
            backbone = decode_ops + geo + other + reorder_ops
            # Value-only ops may be inserted at any position after decode
            # (rule 1).  Enumerate insertion points for each movable op.
            slots = range(len(decode_ops), len(backbone) + 1)
            for positions in itertools.product(slots, repeat=len(movable)):
                seq = list(backbone)
                # Insert from the rightmost position first so earlier
                # insertions do not shift later ones.
                for op, pos in sorted(
                    zip(movable, positions), key=lambda pair: -pair[1]
                ):
                    seq.insert(pos, op)
                candidates.append(seq)
                if len(candidates) >= self._max_candidates:
                    return candidates
        return candidates or [list(ops)]

    def _prune(
        self, candidates: list[list[PreprocessingOp]], input_spec: TensorSpec,
        reference_spec: TensorSpec,
        original: list[PreprocessingOp] | None = None,
    ) -> tuple[list[list[PreprocessingOp]], int]:
        """Apply rule-based pruning; returns (kept, pruned_count)."""
        kept: list[list[PreprocessingOp]] = []
        pruned = 0
        original_geometry = (None if original is None
                             else self._geometric_order(original))
        # Probe data for the value check, materialized once per prune pass
        # and only if some candidate actually swaps geometry.
        probe: np.ndarray | None = None
        reference_output: np.ndarray | None = None
        for seq in candidates:
            if not self._is_valid_order(seq):
                pruned += 1
                continue
            if self._violates_dtype_rule(seq):
                pruned += 1
                continue
            # Reordering must not change the tensor the DNN receives: a
            # swapped resize/crop pair that produces a different output
            # shape is not an equivalent plan.
            if not self._preserves_output(seq, input_spec, reference_spec):
                pruned += 1
                continue
            # A geometric swap can preserve the output *spec* while changing
            # pixel *values* (crop-then-upscale is not resize-then-crop), so
            # swapped-geometry candidates must also pass an exact value
            # check on a deterministic probe image.
            if original_geometry is not None \
                    and self._geometric_order(seq) != original_geometry:
                if probe is None:
                    probe = self._probe_image(input_spec)
                    reference_output = self._run_on_probe(original, probe)
                if reference_output is None or not np.array_equal(
                    reference_output,
                    self._run_on_probe(seq, probe),
                ):
                    pruned += 1
                    continue
            kept.append(seq)
        if not kept:
            # Fall back to the original ordering, the one sequence that is
            # output-equivalent by construction (candidates[0] may have
            # just been pruned for *changing* the output).
            kept = [list(original) if original is not None
                    else candidates[0]]
        return kept, pruned

    @staticmethod
    def _geometric_order(seq: list[PreprocessingOp]) -> list[str]:
        """The sequence's geometric (resize/crop) operator order."""
        return [op.name for op in seq
                if isinstance(op, (ResizeOp, CenterCropOp))]

    @staticmethod
    def _probe_image(input_spec: TensorSpec) -> np.ndarray:
        """A deterministic textured probe image matching ``input_spec``."""
        rng = np.random.default_rng(20_26)
        return rng.integers(
            0, 256,
            size=(input_spec.height, input_spec.width, input_spec.channels),
        ).astype(np.uint8)

    @staticmethod
    def _run_on_probe(seq: list[PreprocessingOp],
                      probe: np.ndarray) -> np.ndarray | None:
        """Execute a pipeline on the probe; None when it cannot run."""
        data = probe
        for op in seq:
            if isinstance(op, DecodeOp):
                continue
            try:
                data = op.apply(data)
            except PreprocessingError:
                return None
        return data

    @staticmethod
    def _preserves_output(seq: list[PreprocessingOp], input_spec: TensorSpec,
                          reference_spec: TensorSpec) -> bool:
        """True when the candidate produces the same shape/dtype/layout."""
        try:
            spec = _pipeline_output_spec(seq, input_spec)
        except PreprocessingError:
            return False
        return (spec.height, spec.width, spec.channels, spec.dtype,
                spec.layout) == (reference_spec.height, reference_spec.width,
                                 reference_spec.channels, reference_spec.dtype,
                                 reference_spec.layout)

    @staticmethod
    def _is_valid_order(seq: list[PreprocessingOp]) -> bool:
        """Structural validity: decode first, reorder after normalization."""
        if seq and not isinstance(seq[0], DecodeOp):
            has_decode = any(isinstance(op, DecodeOp) for op in seq)
            if has_decode:
                return False
        # Normalization requires float data: a NormalizeOp handles its own
        # conversion, but a ConvertDtypeOp placed after NormalizeOp would be
        # a redundant cast; allow it (harmless) but require channel reorder
        # to come after any geometric op (reordering to CHW breaks HWC crops)
        # and after normalization (the normalize kernel is written for HWC,
        # so placing it downstream of the CHW reorder breaks at runtime).
        reorder_seen = False
        for op in seq:
            if isinstance(op, ChannelReorderOp):
                reorder_seen = True
            elif isinstance(op, (ResizeOp, CenterCropOp, NormalizeOp)) \
                    and reorder_seen:
                return False
        return True

    @staticmethod
    def _violates_dtype_rule(seq: list[PreprocessingOp]) -> bool:
        """Pruning rule 2: do not resize after converting to a wider dtype."""
        converted = False
        for op in seq:
            if isinstance(op, (ConvertDtypeOp, NormalizeOp)):
                converted = True
            elif isinstance(op, ResizeOp) and converted:
                return True
        return False

    @staticmethod
    def _fuse(seq: list[PreprocessingOp]) -> list[PreprocessingOp]:
        """Fuse trailing convert/normalize/reorder runs into a single kernel."""
        normalize = next((op for op in seq if isinstance(op, NormalizeOp)), None)
        has_reorder = any(isinstance(op, ChannelReorderOp) for op in seq)
        if normalize is None or not has_reorder:
            return list(seq)
        fused = FusedNormalizeReorderOp(mean=normalize.mean, std=normalize.std)
        out: list[PreprocessingOp] = []
        inserted = False
        for op in seq:
            if isinstance(op, (ConvertDtypeOp, NormalizeOp, ChannelReorderOp)):
                if not inserted and isinstance(op, ChannelReorderOp):
                    out.append(fused)
                    inserted = True
                continue
            out.append(op)
        if not inserted:
            out.append(fused)
        return out
