"""Serving metrics: latency percentiles and throughput accounting.

Serving systems are judged on tail latency (p95/p99), not means, so the
recorder keeps every sample and computes order statistics on demand.  The
sample counts involved here (thousands to low millions) make the O(n log n)
sort on snapshot entirely acceptable and exact, which matters for tests.

The percentile implementation lives in :mod:`repro.obs.metrics` (the
stack-wide metrics module); it is re-exported here so existing imports of
``repro.serving.metrics.percentile`` keep working.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.obs.metrics import percentile

__all__ = ["percentile", "LatencySummary", "LatencyRecorder"]


@dataclass(frozen=True)
class LatencySummary:
    """Order statistics over a set of latency samples, in milliseconds."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def empty(cls) -> "LatencySummary":
        """Summary for zero samples (all statistics zero)."""
        return cls(count=0, mean_ms=0.0, p50_ms=0.0, p95_ms=0.0,
                   p99_ms=0.0, max_ms=0.0)

    @classmethod
    def from_seconds(cls, samples: list[float]) -> "LatencySummary":
        """Summarize latency samples given in seconds."""
        if not samples:
            return cls.empty()
        ordered = sorted(s * 1000.0 for s in samples)
        return cls(
            count=len(ordered),
            mean_ms=sum(ordered) / len(ordered),
            p50_ms=percentile(ordered, 50.0),
            p95_ms=percentile(ordered, 95.0),
            p99_ms=percentile(ordered, 99.0),
            max_ms=ordered[-1],
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (f"n={self.count} mean={self.mean_ms:.2f}ms "
                f"p50={self.p50_ms:.2f}ms p95={self.p95_ms:.2f}ms "
                f"p99={self.p99_ms:.2f}ms max={self.max_ms:.2f}ms")


class LatencyRecorder:
    """Thread-safe accumulator of latency samples (seconds in, ms out)."""

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Record one latency sample in seconds."""
        if seconds < 0:
            raise ValueError("latency cannot be negative")
        with self._lock:
            self._samples.append(seconds)

    def extend(self, seconds: list[float]) -> None:
        """Record many latency samples at once."""
        if any(s < 0 for s in seconds):
            raise ValueError("latency cannot be negative")
        with self._lock:
            self._samples.extend(seconds)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def summary(self) -> LatencySummary:
        """Summarize everything recorded so far."""
        with self._lock:
            samples = list(self._samples)
        return LatencySummary.from_seconds(samples)
