"""LRU prediction cache for the serving layer.

Real visual-analytics traffic is heavily skewed -- popular images are
requested over and over -- so the server memoizes predictions keyed on
``(image_id, format, plan)``.  The plan is part of the key because a plan
hot-swap changes the model and input rendition, invalidating prior answers
for the same image without requiring an explicit flush.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Hashable, TypeVar

from repro.errors import ServingError

V = TypeVar("V")

CacheKey = tuple[str, str, str]
"""(image_id, format_name, plan_key)"""


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LruCache(Generic[V]):
    """Thread-safe bounded LRU map with hit/miss accounting."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ServingError("cache capacity must be positive")
        self._capacity = capacity
        self._items: OrderedDict[Hashable, V] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def capacity(self) -> int:
        """Maximum number of cached entries."""
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def get(self, key: Hashable) -> V | None:
        """Look up ``key``, refreshing its recency; None on miss."""
        with self._lock:
            if key in self._items:
                self._items.move_to_end(key)
                self._hits += 1
                return self._items[key]
            self._misses += 1
            return None

    def put(self, key: Hashable, value: V) -> None:
        """Insert or refresh ``key``, evicting the LRU entry at capacity."""
        with self._lock:
            if key in self._items:
                self._items.move_to_end(key)
                self._items[key] = value
                return
            if len(self._items) >= self._capacity:
                self._items.popitem(last=False)
                self._evictions += 1
            self._items[key] = value

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._items.clear()

    def stats(self) -> CacheStats:
        """Snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._items),
                capacity=self._capacity,
            )


class PredictionCache(LruCache[int]):
    """LRU cache of predicted class indices keyed on (image, format, plan)."""

    @staticmethod
    def key(image_id: str, format_name: str, plan_key: str) -> CacheKey:
        """Build the canonical cache key."""
        return (image_id, format_name, plan_key)
