"""Open-loop load generation for the serving layer.

An *open-loop* generator fires requests on a schedule drawn independently of
the server's progress (Poisson arrivals or periodic bursts), which is how
real traffic behaves and what exposes queueing delay -- a closed loop that
waits for each response before sending the next can never build a queue.
The report carries the standard serving scorecard: achieved throughput and
p50/p95/p99 latency.

All sampling -- arrival offsets and image choices -- goes through
:func:`repro.utils.rng.deterministic_rng`, keyed on the full schedule
parameters (pattern, rate, duration, seed), and is materialized up front as
an immutable :class:`ArrivalTrace`.  Repeated benches with the same seed
therefore replay the identical trace, and different schedule parameters
draw from independent streams instead of silently sharing one.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import AdmissionError, ServingError
from repro.serving.metrics import LatencySummary
from repro.serving.request import InferenceRequest, InferenceResponse
from repro.serving.server import SmolServer
from repro.utils.rng import deterministic_rng


def poisson_arrivals(rate_per_s: float, duration_s: float,
                     rng: np.random.Generator) -> list[float]:
    """Arrival offsets (seconds) of a Poisson process over ``duration_s``."""
    if rate_per_s <= 0 or duration_s <= 0:
        raise ServingError("rate and duration must be positive")
    times: list[float] = []
    now = 0.0
    while True:
        now += rng.exponential(1.0 / rate_per_s)
        if now >= duration_s:
            return times
        times.append(now)


def burst_arrivals(rate_per_s: float, duration_s: float,
                   burst_size: int) -> list[float]:
    """Bursty schedule: ``burst_size`` simultaneous arrivals at a fixed period
    chosen so the average rate still equals ``rate_per_s``."""
    if rate_per_s <= 0 or duration_s <= 0:
        raise ServingError("rate and duration must be positive")
    if burst_size <= 0:
        raise ServingError("burst_size must be positive")
    period = burst_size / rate_per_s
    times: list[float] = []
    now = 0.0
    while now < duration_s:
        times.extend([now] * burst_size)
        now += period
    return times


def diurnal_arrivals(rate_per_s: float, duration_s: float,
                     rng: np.random.Generator, depth: float = 0.8,
                     period_s: float | None = None) -> list[float]:
    """Non-homogeneous Poisson arrivals with a sinusoidal daily cycle.

    The instantaneous rate is ``rate * (1 + depth * sin(2*pi*t/period))``
    (mean ``rate``, peak ``rate * (1 + depth)``), sampled by Lewis-Shedler
    thinning: draw a homogeneous process at the peak rate and keep each
    arrival with probability ``lambda(t) / lambda_max``.  One ``period_s``
    defaults to the whole trace, so a trace is one compressed "day".
    """
    if rate_per_s <= 0 or duration_s <= 0:
        raise ServingError("rate and duration must be positive")
    if not 0.0 <= depth < 1.0:
        raise ServingError("depth must be in [0, 1)")
    period = duration_s if period_s is None else period_s
    if period <= 0:
        raise ServingError("period_s must be positive")
    peak = rate_per_s * (1.0 + depth)
    times: list[float] = []
    now = 0.0
    while True:
        now += rng.exponential(1.0 / peak)
        if now >= duration_s:
            return times
        instantaneous = rate_per_s * (
            1.0 + depth * np.sin(2.0 * np.pi * now / period))
        if rng.random() < instantaneous / peak:
            times.append(now)


def flash_crowd_arrivals(rate_per_s: float, duration_s: float,
                         rng: np.random.Generator,
                         multiplier: float = 8.0,
                         at_frac: float = 0.5,
                         width_frac: float = 0.1) -> list[float]:
    """Baseline Poisson traffic with a flash crowd in the middle.

    A second, independent Poisson process at ``rate * (multiplier - 1)``
    is superposed over the window centered at ``at_frac * duration`` with
    width ``width_frac * duration``, so inside the window the total rate
    is ``rate * multiplier`` -- the spike an isolation test floods with.
    """
    if rate_per_s <= 0 or duration_s <= 0:
        raise ServingError("rate and duration must be positive")
    if multiplier < 1.0:
        raise ServingError("multiplier must be >= 1")
    if not 0.0 <= at_frac <= 1.0 or not 0.0 < width_frac <= 1.0:
        raise ServingError("flash window must lie within the trace")
    base = poisson_arrivals(rate_per_s, duration_s, rng)
    if multiplier == 1.0:
        return base
    width = width_frac * duration_s
    start = min(max(at_frac * duration_s - width / 2.0, 0.0),
                duration_s - width)
    spike_rate = rate_per_s * (multiplier - 1.0)
    spike = [start + offset
             for offset in poisson_arrivals(spike_rate, width, rng)]
    return sorted(base + spike)


@dataclass(frozen=True)
class ArrivalTrace:
    """A fully materialized, deterministic request schedule.

    Attributes
    ----------
    pattern, rate_per_s, duration_s, seed:
        The schedule parameters the trace was drawn from (and the RNG key).
    offsets:
        Arrival times in seconds from the start of the run.
    choices:
        Index into the generator's image pool for each arrival.
    tenant:
        Originating tenant of every arrival ("" for single-tenant runs).
        A non-empty tenant is part of the RNG key, so each tenant of a
        multi-tenant mix draws from its own independent stream -- two
        tenants offered the same (pattern, rate, seed) no longer replay
        byte-identical schedules, and adding a tenant to a mix never
        perturbs another tenant's trace.
    """

    pattern: str
    rate_per_s: float
    duration_s: float
    seed: int
    offsets: tuple[float, ...]
    choices: tuple[int, ...]
    tenant: str = ""

    #: Arrival patterns :meth:`build` understands.
    PATTERNS = ("poisson", "burst", "diurnal", "flash")

    def __len__(self) -> int:
        return len(self.offsets)

    @classmethod
    def build(cls, pattern: str, rate_per_s: float, duration_s: float,
              pool_size: int, seed: int = 0, burst_size: int = 8,
              tenant: str = "") -> "ArrivalTrace":
        """Draw one trace; identical inputs always yield identical traces."""
        if pattern not in cls.PATTERNS:
            raise ServingError(f"unknown arrival pattern {pattern!r}")
        if pool_size <= 0:
            raise ServingError("pool_size must be positive")
        # The empty tenant keeps the legacy key so existing single-tenant
        # traces replay bit-identically across this change.
        if tenant:
            rng = deterministic_rng("loadgen", "tenant", tenant, pattern,
                                    rate_per_s, duration_s, seed=seed)
        else:
            rng = deterministic_rng("loadgen", pattern, rate_per_s,
                                    duration_s, seed=seed)
        if pattern == "poisson":
            offsets = poisson_arrivals(rate_per_s, duration_s, rng)
        elif pattern == "burst":
            offsets = burst_arrivals(rate_per_s, duration_s, burst_size)
        elif pattern == "diurnal":
            offsets = diurnal_arrivals(rate_per_s, duration_s, rng)
        else:
            offsets = flash_crowd_arrivals(rate_per_s, duration_s, rng)
        choices = rng.integers(0, pool_size, size=len(offsets))
        return cls(
            pattern=pattern, rate_per_s=rate_per_s, duration_s=duration_s,
            seed=seed, offsets=tuple(offsets),
            choices=tuple(int(c) for c in choices), tenant=tenant,
        )


@dataclass(frozen=True)
class LoadReport:
    """Scorecard of one load-generation run."""

    pattern: str
    offered: int
    submitted: int
    rejected: int
    completed: int
    cache_hits: int
    deadline_missed: int
    duration_s: float
    latency: LatencySummary

    @property
    def throughput(self) -> float:
        """Completed requests per second of wall time."""
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests rejected at admission."""
        return self.rejected / self.offered if self.offered else 0.0

    def describe(self) -> str:
        """Multi-line human-readable report."""
        return "\n".join([
            f"pattern:    {self.pattern}",
            f"offered:    {self.offered} requests over {self.duration_s:.2f}s",
            f"completed:  {self.completed} ({self.cache_hits} cached, "
            f"{self.deadline_missed} past deadline)",
            f"rejected:   {self.rejected} ({self.shed_rate * 100:.1f}% shed)",
            f"throughput: {self.throughput:,.0f} req/s",
            f"latency:    {self.latency.describe()}",
        ])


class LoadGenerator:
    """Drives a :class:`SmolServer` with synthetic open-loop traffic.

    Parameters
    ----------
    server:
        The serving facade under test.
    image_pool:
        The population of (image_id, payload) pairs requests draw from;
        repeats across requests are what exercise the prediction cache.
    format_name:
        Input rendition recorded on every request.
    seed:
        Seed for the arrival process and image choice.
    """

    def __init__(self, server: SmolServer,
                 image_pool: Sequence[tuple[str, np.ndarray | None]],
                 format_name: str = "full-jpeg", seed: int = 0) -> None:
        if not image_pool:
            raise ServingError("image_pool must be non-empty")
        self._server = server
        self._pool = list(image_pool)
        self._format_name = format_name
        self._seed = seed

    def trace(self, rate_per_s: float, duration_s: float,
              pattern: str = "poisson", burst_size: int = 8) -> ArrivalTrace:
        """The deterministic schedule :meth:`run` would replay."""
        return ArrivalTrace.build(pattern, rate_per_s, duration_s,
                                  pool_size=len(self._pool), seed=self._seed,
                                  burst_size=burst_size)

    def run(self, rate_per_s: float, duration_s: float,
            pattern: str = "poisson", burst_size: int = 8,
            deadline_s: float | None = None,
            shed_on_full: bool = False,
            time_scale: float = 1.0) -> LoadReport:
        """Offer traffic at ``rate_per_s`` for ``duration_s`` and wait it out.

        ``time_scale`` compresses the schedule's wall-clock footprint (0.1
        replays a 10-second trace in one second) without changing the drawn
        arrival pattern, so tests and benchmarks stay fast.
        """
        if time_scale <= 0:
            raise ServingError("time_scale must be positive")
        trace = self.trace(rate_per_s, duration_s, pattern=pattern,
                           burst_size=burst_size)

        futures: list[Future] = []
        rejected = 0
        start = time.monotonic()
        for offset, choice in zip(trace.offsets, trace.choices):
            target = start + offset * time_scale
            delay = target - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            image_id, payload = self._pool[int(choice)]
            request = InferenceRequest(
                image_id=image_id, payload=payload,
                format_name=self._format_name, deadline_s=deadline_s,
            )
            try:
                futures.append(
                    self._server.submit(request, block=not shed_on_full)
                )
            except AdmissionError:
                rejected += 1
        responses: list[InferenceResponse] = [
            future.result(timeout=60.0) for future in futures
        ]
        elapsed = time.monotonic() - start
        return LoadReport(
            pattern=pattern,
            offered=len(trace),
            submitted=len(futures),
            rejected=rejected,
            completed=len(responses),
            cache_hits=sum(1 for r in responses if r.cached),
            deadline_missed=sum(1 for r in responses if r.deadline_missed),
            duration_s=elapsed,
            latency=LatencySummary.from_seconds(
                [r.latency_s for r in responses]
            ),
        )


@dataclass(frozen=True)
class TenantLoadSpec:
    """One tenant's offered traffic in a multi-tenant mix."""

    tenant: str
    rate_per_s: float
    pattern: str = "poisson"
    deadline_s: float | None = None
    burst_size: int = 8

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ServingError("tenant must be non-empty")
        if self.rate_per_s <= 0:
            raise ServingError("rate_per_s must be positive")
        if self.pattern not in ArrivalTrace.PATTERNS:
            raise ServingError(f"unknown arrival pattern {self.pattern!r}")


@dataclass(frozen=True)
class MultiTenantLoadReport:
    """Scorecard of one multi-tenant run: one :class:`LoadReport` per tenant."""

    tenants: dict[str, LoadReport]
    duration_s: float

    @property
    def offered(self) -> int:
        """Total requests offered across all tenants."""
        return sum(r.offered for r in self.tenants.values())

    @property
    def completed(self) -> int:
        """Total requests completed across all tenants."""
        return sum(r.completed for r in self.tenants.values())

    def describe(self) -> str:
        """One summary line per tenant."""
        lines = [f"mixed load: {self.offered} offered over "
                 f"{self.duration_s:.2f}s"]
        for tenant in sorted(self.tenants):
            report = self.tenants[tenant]
            lines.append(
                f"  {tenant:<12} {report.pattern:<8} "
                f"completed {report.completed:>6} "
                f"(shed {report.rejected}), {report.latency.describe()}")
        return "\n".join(lines)


class MultiTenantLoadGenerator:
    """Replays several tenants' independent traces against one server.

    Each :class:`TenantLoadSpec` draws its own :class:`ArrivalTrace`
    (tenant-keyed RNG stream); the merged schedule interleaves them by
    arrival time with the tenant name as a deterministic tiebreak, so a
    mix replays identically run to run.
    """

    def __init__(self, server: SmolServer,
                 image_pool: Sequence[tuple[str, np.ndarray | None]],
                 specs: Sequence[TenantLoadSpec],
                 format_name: str = "full-jpeg", seed: int = 0) -> None:
        if not image_pool:
            raise ServingError("image_pool must be non-empty")
        if not specs:
            raise ServingError("specs must be non-empty")
        names = [spec.tenant for spec in specs]
        if len(set(names)) != len(names):
            raise ServingError(f"duplicate tenants in mix: {sorted(names)}")
        self._server = server
        self._pool = list(image_pool)
        self._specs = list(specs)
        self._format_name = format_name
        self._seed = seed

    def traces(self, duration_s: float) -> dict[str, ArrivalTrace]:
        """The deterministic per-tenant schedules :meth:`run` replays."""
        return {
            spec.tenant: ArrivalTrace.build(
                spec.pattern, spec.rate_per_s, duration_s,
                pool_size=len(self._pool), seed=self._seed,
                burst_size=spec.burst_size, tenant=spec.tenant,
            )
            for spec in self._specs
        }

    def run(self, duration_s: float, time_scale: float = 1.0,
            shed_on_full: bool = True) -> MultiTenantLoadReport:
        """Offer every tenant's trace concurrently and wait the mix out.

        Quota throttles (:class:`~repro.errors.QuotaExceededError` is an
        :class:`AdmissionError`) and queue sheds both count as rejected
        for the tenant that offered the request.
        """
        if time_scale <= 0:
            raise ServingError("time_scale must be positive")
        traces = self.traces(duration_s)
        deadlines = {spec.tenant: spec.deadline_s for spec in self._specs}
        merged = sorted(
            (offset, trace.tenant, int(choice))
            for trace in traces.values()
            for offset, choice in zip(trace.offsets, trace.choices)
        )
        futures: dict[str, list[Future]] = {t: [] for t in traces}
        rejected = {t: 0 for t in traces}
        start = time.monotonic()
        for offset, tenant, choice in merged:
            target = start + offset * time_scale
            delay = target - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            image_id, payload = self._pool[choice]
            request = InferenceRequest(
                image_id=image_id, payload=payload,
                format_name=self._format_name,
                deadline_s=deadlines[tenant], tenant=tenant,
            )
            try:
                futures[tenant].append(
                    self._server.submit(request, block=not shed_on_full)
                )
            except AdmissionError:
                rejected[tenant] += 1
        responses = {
            tenant: [future.result(timeout=60.0) for future in pending]
            for tenant, pending in futures.items()
        }
        elapsed = time.monotonic() - start
        reports = {}
        for spec in self._specs:
            tenant = spec.tenant
            answered = responses[tenant]
            reports[tenant] = LoadReport(
                pattern=spec.pattern,
                offered=len(traces[tenant]),
                submitted=len(futures[tenant]),
                rejected=rejected[tenant],
                completed=len(answered),
                cache_hits=sum(1 for r in answered if r.cached),
                deadline_missed=sum(
                    1 for r in answered if r.deadline_missed),
                duration_s=elapsed,
                latency=LatencySummary.from_seconds(
                    [r.latency_s for r in answered]
                ),
            )
        return MultiTenantLoadReport(tenants=reports, duration_s=elapsed)
