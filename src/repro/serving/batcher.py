"""Adaptive micro-batching.

The accelerator wants large batches; interactive traffic wants low latency.
The micro-batcher mediates with the classic serving policy (Clipper, and the
dynamic batching of production serving systems): wait for the first request,
then keep draining the queue until either ``max_batch_size`` requests are in
hand or ``max_wait_ms`` has elapsed since the batch opened.  Under heavy load
batches fill instantly (throughput mode); under light load the wait bound
caps the latency a lone request pays (latency mode).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Generic, TypeVar

from repro.chaos.faults import NULL_FAULTS
from repro.errors import ServingError
from repro.inference.mpmc import QueueClosed
from repro.obs import NULL_OBS
from repro.serving.queue import AdmissionQueue
from repro.serving.request import monotonic

T = TypeVar("T")


@dataclass(frozen=True)
class BatchPolicy:
    """One (max-batch-size, max-wait) micro-batching policy.

    Attributes
    ----------
    name:
        Label used in reports and benchmarks.
    max_batch_size:
        Hard cap on requests per micro-batch (the engine batch size).
    max_wait_ms:
        Longest a batch stays open after its first request arrives.
    """

    name: str
    max_batch_size: int
    max_wait_ms: float

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ServingError("max_batch_size must be positive")
        if self.max_wait_ms < 0:
            raise ServingError("max_wait_ms must be non-negative")

    @classmethod
    def latency(cls) -> "BatchPolicy":
        """Small batches, short waits: optimize tail latency."""
        return cls(name="latency", max_batch_size=8, max_wait_ms=2.0)

    @classmethod
    def throughput(cls) -> "BatchPolicy":
        """Engine-sized batches, longer waits: optimize images/second."""
        return cls(name="throughput", max_batch_size=64, max_wait_ms=25.0)


@dataclass
class BatcherStats:
    """Lifetime micro-batcher counters."""

    batches: int = 0
    items: int = 0
    full_batches: int = 0
    timeout_batches: int = 0
    size_histogram: dict[int, int] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        """Average requests per formed batch."""
        return self.items / self.batches if self.batches else 0.0


class MicroBatcher(Generic[T]):
    """Drains an :class:`AdmissionQueue` into policy-shaped micro-batches.

    ``faults`` is the chaos seam: the ``serving.batch`` site fires at the
    top of each :meth:`next_batch` attempt, *before* the first dequeue --
    an injected raise aborts the attempt with no request in hand (nothing
    is lost; the serving loop retries), and a stall delays batch formation
    the way a descheduled batcher thread would.
    """

    def __init__(self, queue: AdmissionQueue[T], policy: BatchPolicy,
                 obs=NULL_OBS, faults=NULL_FAULTS) -> None:
        self._faults = faults if faults is not None else NULL_FAULTS
        self._queue = queue
        self._policy = policy
        self._stats = BatcherStats()
        self._lock = threading.Lock()
        self._batches_metric = obs.counter("serving_batches_total",
                                           policy=policy.name)
        self._size_metric = obs.histogram("serving_batch_size",
                                          policy=policy.name)

    @property
    def policy(self) -> BatchPolicy:
        """The active batching policy."""
        return self._policy

    def next_batch(self, poll_timeout: float = 0.1) -> list[T] | None:
        """Form the next micro-batch.

        Blocks (in ``poll_timeout`` slices) for the first request, then fills
        until the policy's size cap or wait bound.  Returns None once the
        queue is closed and fully drained.
        """
        self._faults.hit("serving.batch", batcher=self)
        try:
            first = self._queue.get(timeout=poll_timeout)
        except QueueClosed:
            return None
        if first is None:
            return []
        batch = [first]
        deadline = monotonic() + self._policy.max_wait_ms / 1000.0
        filled = True
        while len(batch) < self._policy.max_batch_size:
            remaining = deadline - monotonic()
            if remaining <= 0:
                filled = False
                break
            try:
                item = self._queue.get(timeout=remaining)
            except QueueClosed:
                break
            if item is None:
                filled = False
                break
            batch.append(item)
        self._record(batch, filled and len(batch) == self._policy.max_batch_size)
        return batch

    def _record(self, batch: list[T], full: bool) -> None:
        with self._lock:
            self._stats.batches += 1
            self._stats.items += len(batch)
            if full:
                self._stats.full_batches += 1
            else:
                self._stats.timeout_batches += 1
            size = len(batch)
            self._stats.size_histogram[size] = (
                self._stats.size_histogram.get(size, 0) + 1
            )
        self._batches_metric.inc()
        self._size_metric.observe(len(batch))

    def stats(self) -> BatcherStats:
        """Snapshot of the batcher counters."""
        with self._lock:
            return BatcherStats(
                batches=self._stats.batches,
                items=self._stats.items,
                full_batches=self._stats.full_batches,
                timeout_batches=self._stats.timeout_batches,
                size_histogram=dict(self._stats.size_histogram),
            )
