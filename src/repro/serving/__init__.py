"""Online serving subsystem: Smol-Serve.

Turns the offline batch engine into an online inference service:

* :mod:`repro.serving.request` -- typed requests/responses with deadlines.
* :mod:`repro.serving.queue` -- admission-controlled bounded request queue.
* :mod:`repro.serving.batcher` -- adaptive micro-batching policies.
* :mod:`repro.serving.session` -- plan-aware warmed engine sessions with
  hot-swap when the planner changes its mind.
* :mod:`repro.serving.cache` -- LRU prediction cache keyed on
  (image, format, plan).
* :mod:`repro.serving.server` -- the :class:`SmolServer` facade
  (``submit() -> Future``, ``stats()``, ``close()``).
* :mod:`repro.serving.loadgen` -- open-loop Poisson/burst/diurnal/flash
  load generation (single- and multi-tenant mixes) with p50/p95/p99
  latency reporting.
* :mod:`repro.serving.metrics` -- latency percentile accounting.

Multi-tenant serving (quotas, weighted-fair scheduling, deadline-aware
plan selection) layers on top via :mod:`repro.tenant`; pass a
:class:`~repro.tenant.spec.TenantConfig` as ``SmolServer(tenants=...)``.
"""

from repro.serving.batcher import BatcherStats, BatchPolicy, MicroBatcher
from repro.serving.cache import CacheStats, LruCache, PredictionCache
from repro.serving.loadgen import (
    ArrivalTrace,
    LoadGenerator,
    LoadReport,
    MultiTenantLoadGenerator,
    MultiTenantLoadReport,
    TenantLoadSpec,
    burst_arrivals,
    diurnal_arrivals,
    flash_crowd_arrivals,
    poisson_arrivals,
)
from repro.serving.metrics import LatencyRecorder, LatencySummary, percentile
from repro.serving.queue import AdmissionQueue
from repro.serving.request import InferenceRequest, InferenceResponse
from repro.serving.server import ServerStats, SmolServer, TenantServingStats
from repro.serving.session import (
    BatchResult,
    EngineSession,
    FunctionalSession,
    SessionManager,
    SimulatedSession,
    functional_session_for_plan,
    serving_pipeline_ops,
    simulated_session_for_format,
)

__all__ = [
    "AdmissionQueue",
    "ArrivalTrace",
    "BatchPolicy",
    "BatchResult",
    "BatcherStats",
    "CacheStats",
    "EngineSession",
    "FunctionalSession",
    "InferenceRequest",
    "InferenceResponse",
    "LatencyRecorder",
    "LatencySummary",
    "LoadGenerator",
    "LoadReport",
    "LruCache",
    "MicroBatcher",
    "MultiTenantLoadGenerator",
    "MultiTenantLoadReport",
    "PredictionCache",
    "ServerStats",
    "SessionManager",
    "SimulatedSession",
    "SmolServer",
    "TenantLoadSpec",
    "TenantServingStats",
    "burst_arrivals",
    "diurnal_arrivals",
    "flash_crowd_arrivals",
    "functional_session_for_plan",
    "percentile",
    "poisson_arrivals",
    "serving_pipeline_ops",
    "simulated_session_for_format",
]
