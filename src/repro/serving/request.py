"""Typed inference requests and responses for the online serving path.

The offline engine consumes a fixed corpus by index; the serving layer instead
receives :class:`InferenceRequest` objects over time.  A request carries the
identity of the image (for caching), the decoded payload (functional mode) or
just its format (simulated mode), and an optional latency deadline the
admission controller and batcher honor.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ServingError

_REQUEST_COUNTER = itertools.count()


def monotonic() -> float:
    """The clock used for arrival times and deadlines (monotonic seconds)."""
    return time.monotonic()


@dataclass
class InferenceRequest:
    """One online inference request.

    Attributes
    ----------
    image_id:
        Stable identity of the input (cache key component).  Repeated ids are
        expected under real traffic and served from the prediction cache.
    payload:
        Decoded HWC uint8 array for functional mode; None in simulated mode.
    format_name:
        Name of the input rendition the payload was decoded from (cache key
        component, and the cost-model key in simulated mode).
    deadline_s:
        Optional latency budget in seconds relative to arrival.  Expired
        requests are still answered but flagged, so callers can discard them.
    tenant:
        Originating tenant for multi-tenant servers (quota, class, and SLO
        attribution).  The empty default routes through the server's
        default tenant spec, so single-tenant callers never set it.
    request_id:
        Process-unique id assigned at construction.
    arrival_s:
        Monotonic arrival timestamp, set at construction.
    trace:
        Optional picklable trace context ``(trace_id, span_id)`` from
        :mod:`repro.obs`.  Set by instrumented entry points so downstream
        spans (batching, cluster hops, store reads) parent into the
        request's trace; None when observability is disabled.
    """

    image_id: str
    payload: np.ndarray | None = None
    format_name: str = "full-jpeg"
    deadline_s: float | None = None
    tenant: str = ""
    request_id: int = field(default_factory=lambda: next(_REQUEST_COUNTER))
    arrival_s: float = field(default_factory=monotonic)
    trace: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if not self.image_id:
            raise ServingError("image_id must be non-empty")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ServingError("deadline_s must be positive when set")
        if self.payload is not None and self.payload.ndim != 3:
            raise ServingError("payload must be a decoded HWC array")

    def expired(self, now: float | None = None) -> bool:
        """True once the request's deadline (if any) has passed."""
        if self.deadline_s is None:
            return False
        return (now if now is not None else monotonic()) \
            > self.arrival_s + self.deadline_s

    def age(self, now: float | None = None) -> float:
        """Seconds since arrival."""
        return (now if now is not None else monotonic()) - self.arrival_s


@dataclass(frozen=True)
class InferenceResponse:
    """The answer to one request, resolved through the submit future.

    Attributes
    ----------
    request_id, image_id:
        Echoed from the request.
    prediction:
        Predicted class index.
    latency_s:
        Wall-clock seconds from arrival to completion (queueing + batching +
        execution); cache hits report their (near-zero) lookup latency.
    batch_size:
        Size of the micro-batch the request rode in (0 for cache hits).
    cached:
        True when the prediction came from the serving cache.
    deadline_missed:
        True when the request had a deadline and completion came after it.
    plan_key:
        The plan of the session that produced the prediction.
    """

    request_id: int
    image_id: str
    prediction: int
    latency_s: float
    batch_size: int = 0
    cached: bool = False
    deadline_missed: bool = False
    plan_key: str = ""
