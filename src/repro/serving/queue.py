"""Admission-controlled request queue.

A thin policy layer over the engine's :class:`MpmcQueue`: bounded capacity
provides backpressure, and the admission controller decides what happens when
the bound is hit -- block the caller (offline-style ingest) or reject the
request immediately (online load shedding).  Rejections and arrivals are
counted so the server can report shed rates.
"""

from __future__ import annotations

import threading
from typing import Generic, TypeVar

from repro.chaos.faults import NULL_FAULTS
from repro.errors import AdmissionError, EngineError
from repro.inference.mpmc import MpmcQueue, QueueClosed
from repro.obs import NULL_OBS

T = TypeVar("T")


class AdmissionQueue(Generic[T]):
    """Bounded MPMC queue with explicit admit/reject accounting.

    When given an :class:`~repro.obs.Observability`, admissions and
    rejections also tick stack-wide counters; instruments are pre-bound at
    construction so the disabled path stays a no-op method call.

    ``faults`` is the chaos seam: the ``serving.admit`` site fires on the
    submitter's thread before each enqueue, so an injected stall delays
    admission and an injected raise sheds the request before it was ever
    queued (the submitter sees the failure; nothing is half-admitted).
    """

    def __init__(self, capacity: int, obs=NULL_OBS,
                 faults=NULL_FAULTS) -> None:
        self._faults = faults if faults is not None else NULL_FAULTS
        self._queue: MpmcQueue[T] = MpmcQueue(capacity=capacity)
        self._lock = threading.Lock()
        self._admitted = 0
        self._rejected = 0
        self._admitted_metric = obs.counter("serving_admitted_total")
        self._rejected_metric = obs.counter("serving_rejected_total")
        self._depth_metric = obs.gauge("serving_queue_depth")

    @property
    def capacity(self) -> int:
        """Maximum number of queued items."""
        return self._queue.capacity

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._queue.closed

    def __len__(self) -> int:
        return len(self._queue)

    def admit(self, item: T, block: bool = True,
              timeout: float | None = None) -> None:
        """Admit ``item``, applying the admission policy at capacity.

        With ``block=True`` the caller waits for room (backpressure); with
        ``block=False`` a full queue raises :class:`AdmissionError`
        immediately (load shedding).  :class:`QueueClosed` propagates either
        way once the queue is closed.
        """
        # Chaos seam: fires before the enqueue, so a raise here is a clean
        # shed (the item never entered the queue) and a stall backpressures
        # the submitting thread.
        self._faults.hit("serving.admit", queue=self)
        try:
            if block:
                self._queue.put(item, timeout=timeout)
            else:
                if len(self._queue) >= self._queue.capacity:
                    raise AdmissionError(
                        f"queue full ({self._queue.capacity} pending)"
                    )
                self._queue.put(item, timeout=0.0)
        except AdmissionError:
            with self._lock:
                self._rejected += 1
            self._rejected_metric.inc()
            raise
        except QueueClosed:
            raise
        except EngineError as exc:
            # A put timeout at capacity is a rejection too (blocked too long).
            with self._lock:
                self._rejected += 1
            self._rejected_metric.inc()
            raise AdmissionError(str(exc)) from exc
        with self._lock:
            self._admitted += 1
        self._admitted_metric.inc()
        self._depth_metric.set(len(self._queue))

    def get(self, timeout: float | None = None) -> T | None:
        """Dequeue one item; None on timeout, QueueClosed when drained."""
        try:
            return self._queue.get(timeout=timeout)
        except QueueClosed:
            raise
        except EngineError:
            return None

    def close(self) -> None:
        """Close the underlying queue; consumers drain remaining items."""
        self._queue.close()

    def stats(self) -> dict[str, int]:
        """Admission counters plus the underlying queue counters."""
        with self._lock:
            counters = {"admitted": self._admitted, "rejected": self._rejected}
        counters.update(self._queue.stats())
        return counters
