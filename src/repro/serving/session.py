"""Plan-aware engine sessions.

The offline path rebuilds its preprocessing pipeline and model for every run.
Online serving cannot afford that per request, so a *session* pins everything
a plan needs -- the preprocessing DAG, the model (functional mode) or the
calibrated stage estimate (simulated mode) -- warmed once at construction and
reused for every micro-batch.  When the planner picks a new plan the
:class:`SessionManager` warms the replacement off to the side and hot-swaps
it atomically, so in-flight batches finish on the old session and later
batches see the new one.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.chaos.faults import NULL_FAULTS
from repro.codecs.formats import InputFormatSpec
from repro.core.plans import Plan, PlanEstimate
from repro.errors import ServingError
from repro.fuse.compiler import get_kernel
from repro.obs import NULL_OBS
from repro.inference.perfmodel import EngineConfig, PerformanceModel
from repro.nn.model import Sequential, build_mini_resnet
from repro.preprocessing.dag import PreprocessingDAG
from repro.preprocessing.ops import (
    CenterCropOp,
    ChannelReorderOp,
    ConvertDtypeOp,
    NormalizeOp,
    ResizeOp,
)
from repro.serving.request import InferenceRequest
from repro.utils.rng import stable_hash


@dataclass(frozen=True)
class BatchResult:
    """The outcome of executing one micro-batch on a session.

    Attributes
    ----------
    predictions:
        Predicted class index per request, in request order.
    modelled_seconds:
        The performance model's service time for the batch (simulated mode);
        0.0 in functional mode where wall time is the real service time.
    stage_seconds:
        Optional per-stage resource seconds the batch consumed (keys such
        as ``decode`` / ``preprocess`` / ``inference``).  Sessions that
        know their stage breakdown fill this so runtime telemetry
        (:mod:`repro.adapt.telemetry`) can calibrate observed stage costs;
        None when the session cannot attribute cost to stages.
    """

    predictions: np.ndarray
    modelled_seconds: float = 0.0
    stage_seconds: dict[str, float] | None = None


class EngineSession:
    """Base class: a warmed, reusable execution context for one plan."""

    def __init__(self, plan_key: str) -> None:
        if not plan_key:
            raise ServingError("plan_key must be non-empty")
        self._plan_key = plan_key
        self._warmed = False

    @property
    def plan_key(self) -> str:
        """Stable identifier of the plan this session executes."""
        return self._plan_key

    @property
    def warmed(self) -> bool:
        """True once :meth:`warmup` has run."""
        return self._warmed

    def warmup(self) -> None:
        """Pay one-time setup costs so the first real batch is not slower."""
        self._warmed = True

    def execute(self, requests: Sequence[InferenceRequest]) -> BatchResult:
        """Run one micro-batch and return per-request predictions."""
        raise NotImplementedError


class FunctionalSession(EngineSession):
    """Session running real pixels through a preprocessing DAG and model.

    With ``fuse=True`` the DAG is compiled once into a
    :class:`~repro.fuse.kernel.FusedKernel` (shared process-wide per plan
    fingerprint) and each micro-batch executes as batched array ops instead
    of per-image interpretation.  The interpreted path stays the reference
    oracle: fused predictions are bit-identical by the lowering contract
    (``tests/fuse/`` enforces it), so the toggle is purely a speed choice.
    ``faults``/``obs`` thread into the kernel, which keeps the
    ``fuse.execute`` chaos seam and per-segment spans visible.
    """

    def __init__(self, plan_key: str, preprocessing: PreprocessingDAG,
                 model: Sequential, fuse: bool = False,
                 faults=None, obs=None) -> None:
        super().__init__(plan_key)
        preprocessing.validate()
        self._preprocessing = preprocessing
        self._model = model
        self._faults = faults if faults is not None else NULL_FAULTS
        self._obs = obs if obs is not None else NULL_OBS
        self._kernel = None
        if fuse:
            self.set_fuse(True)

    @property
    def model(self) -> Sequential:
        """The numpy model answering requests."""
        return self._model

    @property
    def preprocessing(self) -> PreprocessingDAG:
        """The pinned preprocessing DAG."""
        return self._preprocessing

    @property
    def fused(self) -> bool:
        """True when micro-batches execute on the compiled kernel."""
        return self._kernel is not None

    @property
    def kernel(self):
        """The compiled fused kernel, or None on the interpreted path."""
        return self._kernel

    def set_fuse(self, enabled: bool) -> None:
        """Switch between fused and interpreted execution (hot-safe).

        Enabling compiles (or fetches the cached) kernel for the pinned
        DAG; disabling falls back to per-image interpretation.  Either
        mode produces bit-identical predictions.
        """
        if enabled:
            self._kernel = get_kernel(self._preprocessing)
        else:
            self._kernel = None

    def warmup(self, probe: np.ndarray | None = None) -> None:
        """Run one dummy image end to end (JIT-analogue of engine warmup)."""
        if probe is None:
            probe = np.zeros((48, 48, 3), dtype=np.uint8)
        preprocessed = self._preprocessing.execute(probe)
        self._model.predict(preprocessed[None].astype(np.float32))
        super().warmup()

    def _payloads(self, requests: Sequence[InferenceRequest]) -> list:
        payloads = []
        for request in requests:
            if request.payload is None:
                raise ServingError(
                    f"request {request.request_id} has no payload "
                    "(functional sessions need decoded images)"
                )
            payloads.append(request.payload)
        return payloads

    def execute(self, requests: Sequence[InferenceRequest]) -> BatchResult:
        if not requests:
            raise ServingError("cannot execute an empty batch")
        payloads = self._payloads(requests)
        if self._kernel is not None:
            stacked = self._kernel.execute_stacked(
                payloads, faults=self._faults, obs=self._obs
            ).astype(np.float32)
        else:
            tensors = [self._preprocessing.execute(payload)
                       for payload in payloads]
            stacked = np.stack(tensors).astype(np.float32)
        return BatchResult(predictions=self._model.predict(stacked))


def session_stage_estimate(performance_model: PerformanceModel, plan: Plan,
                           config: EngineConfig):
    """The stage estimate a simulated session charges batches against.

    Factored out so the adaptive layer (:mod:`repro.adapt`) can register
    calibration baselines from exactly the estimate the session reports
    observations against -- a drift-free session then calibrates to
    observed/modelled ratios of exactly 1.0.
    """
    return performance_model.estimate(
        plan.primary_model, plan.input_format, config,
        roi_fraction=plan.roi_fraction,
    )


class SimulatedSession(EngineSession):
    """Session backed by the calibrated performance model.

    Predictions are deterministic pseudo-labels (stable hash of image id and
    plan), and each batch reports the modelled service time so load tests can
    report accelerator-scale latency figures without accelerator hardware.
    Batches also report per-stage resource seconds (decode / preprocess /
    inference) so runtime telemetry can calibrate observed stage costs.
    """

    def __init__(self, plan: Plan, performance_model: PerformanceModel,
                 config: EngineConfig | None = None,
                 num_classes: int = 1000) -> None:
        super().__init__(plan.describe())
        if num_classes <= 1:
            raise ServingError("num_classes must be at least 2")
        self._plan = plan
        self._performance_model = performance_model
        self._config = config or EngineConfig()
        self._num_classes = num_classes
        self._throughput: float | None = None
        self._stage_seconds: dict[str, float] = {}

    @property
    def plan(self) -> Plan:
        """The plan this session models."""
        return self._plan

    @property
    def format_name(self) -> str:
        """Input-format name of the plan (telemetry subject for decode)."""
        return self._plan.input_format.name

    @property
    def model_name(self) -> str:
        """Primary-model name of the plan (telemetry subject for inference)."""
        return self._plan.primary_model.name

    @property
    def performance_model(self) -> PerformanceModel:
        """The calibrated performance model this session charges against."""
        return self._performance_model

    @property
    def config(self) -> EngineConfig:
        """The engine configuration the session is priced under."""
        return self._config

    @property
    def modelled_throughput(self) -> float:
        """Pipelined images/second from the performance model (post-warmup)."""
        if self._throughput is None:
            raise ServingError("session not warmed")
        return self._throughput

    def warmup(self) -> None:
        """Evaluate the stage estimate once; batches reuse it."""
        estimate = session_stage_estimate(
            self._performance_model, self._plan, self._config
        )
        self._throughput = estimate.pipelined_upper_bound
        self._stage_seconds = estimate.observed_stage_seconds()
        super().warmup()

    def batch_costs(self, batch_size: int) -> tuple[float, dict[str, float]]:
        """Modelled (service seconds, per-stage seconds) for one batch."""
        return (
            batch_size / self._throughput,
            {stage: seconds * batch_size
             for stage, seconds in self._stage_seconds.items()},
        )

    def execute(self, requests: Sequence[InferenceRequest]) -> BatchResult:
        if not requests:
            raise ServingError("cannot execute an empty batch")
        if self._throughput is None:
            self.warmup()
        predictions = np.array(
            [stable_hash(request.image_id, self._plan_key) % self._num_classes
             for request in requests],
            dtype=np.int64,
        )
        modelled_seconds, stage_seconds = self.batch_costs(len(requests))
        return BatchResult(
            predictions=predictions,
            modelled_seconds=modelled_seconds,
            stage_seconds=stage_seconds,
        )


def serving_pipeline_ops(input_size: int = 48, crop_size: int = 32) -> list:
    """The post-decode preprocessing chain serving sessions pin.

    Decode happens at ingest (the request payload is already pixels), so the
    session pipeline starts at resize -- mirroring production servers where
    decode runs on the request path and tensor prep on the batch path.
    """
    return [
        ResizeOp(short_side=input_size),
        CenterCropOp(size=crop_size),
        ConvertDtypeOp("float32"),
        NormalizeOp(),
        ChannelReorderOp(),
    ]


def functional_session_for_plan(plan: Plan | PlanEstimate,
                                num_classes: int = 2,
                                crop_size: int = 32,
                                seed: int = 0,
                                fuse: bool = False) -> FunctionalSession:
    """Build a warmed functional session executing ``plan``.

    The model depth follows the plan's primary DNN (``resnet-50`` maps to the
    depth-50 mini variant) and the crop size follows the session pipeline, so
    deeper plans really are slower -- the property load tests exercise.
    """
    actual = plan.plan if isinstance(plan, PlanEstimate) else plan
    name = actual.primary_model.name
    try:
        depth = int(name.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        depth = 18
    dag = PreprocessingDAG.from_ops(
        serving_pipeline_ops(input_size=crop_size + 16, crop_size=crop_size)
    )
    model = build_mini_resnet(depth, num_classes=num_classes,
                              input_size=crop_size, seed=seed)
    session = FunctionalSession(actual.describe(), dag, model, fuse=fuse)
    session.warmup()
    return session


class SessionManager:
    """Holds the live session and performs warm hot-swaps.

    ``ensure`` is the planner-facing entry point: handed the plan key the
    planner currently favors and a factory for the matching session, it swaps
    only when the plan actually changed.
    """

    def __init__(self, session: EngineSession) -> None:
        if not session.warmed:
            session.warmup()
        self._session = session
        self._lock = threading.Lock()
        self._swaps = 0

    def current(self) -> EngineSession:
        """The live session."""
        with self._lock:
            return self._session

    @property
    def swaps(self) -> int:
        """How many hot-swaps have happened."""
        with self._lock:
            return self._swaps

    def swap(self, session: EngineSession) -> EngineSession:
        """Warm ``session`` and atomically make it live; returns the old one."""
        if not session.warmed:
            session.warmup()
        with self._lock:
            old, self._session = self._session, session
            self._swaps += 1
        return old

    def ensure(self, plan_key: str,
               factory: Callable[[], EngineSession]) -> bool:
        """Swap to ``factory()`` if the live plan differs; True when swapped."""
        with self._lock:
            if self._session.plan_key == plan_key:
                return False
        self.swap(factory())
        return True


def simulated_session_for_format(model_profile, fmt: InputFormatSpec,
                                 performance_model: PerformanceModel,
                                 config: EngineConfig | None = None,
                                 ) -> SimulatedSession:
    """Convenience builder: a warmed simulated session for (model, format)."""
    plan = Plan.single(model_profile, fmt)
    session = SimulatedSession(plan, performance_model, config=config)
    session.warmup()
    return session
