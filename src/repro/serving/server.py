"""The SmolServer facade: an online serving loop over the batch engine.

Requests enter through :meth:`SmolServer.submit`, which returns a
:class:`concurrent.futures.Future` resolving to an
:class:`~repro.serving.request.InferenceResponse`.  Internally a single
serving thread drains the admission queue through the micro-batcher and
executes each micro-batch on the live plan session:

    submit() -> cache? -> AdmissionQueue -> MicroBatcher -> EngineSession
                   |                                            |
                hit: resolve immediately          resolve futures, fill cache

Both functional sessions (real pixels, real numpy model) and simulated
sessions (calibrated performance model) plug in unchanged, so the same load
generator drives correctness tests and accelerator-scale latency studies.

Besides point lookups, the server answers whole-corpus analytics queries
online: :meth:`SmolServer.query` accepts a declarative
:class:`~repro.query.spec.QuerySpec` (aggregation, limit, cascade) and
executes it on a dedicated pool of plan-warmed scan replicas without
blocking the serving loop.

The execution backend is pluggable: pass ``session=`` for the classic
single-session path, or ``cluster=`` (a
:class:`~repro.cluster.dispatcher.Dispatcher`) to fan micro-batches out
across a replica pool.  In cluster mode the serving thread hands each
micro-batch to the dispatcher asynchronously and keeps batching while
replicas execute in parallel, so one slow batch no longer serializes the
pipeline.  The server borrows the dispatcher -- the caller closes it.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass

from repro.chaos.faults import NULL_FAULTS
from repro.errors import ServingError
from repro.inference.mpmc import QueueClosed
from repro.obs import NULL_OBS
from repro.serving.batcher import BatcherStats, BatchPolicy, MicroBatcher
from repro.serving.cache import CacheStats, PredictionCache
from repro.serving.metrics import LatencyRecorder, LatencySummary
from repro.serving.queue import AdmissionQueue
from repro.serving.request import InferenceRequest, InferenceResponse, monotonic
from repro.serving.session import EngineSession, SessionManager


@dataclass(frozen=True)
class _Pending:
    """One admitted request waiting for its micro-batch.

    ``span`` is the request's ``serving.request`` span when observability
    is enabled (None otherwise); it is finished at resolution time.
    ``tenant`` / ``class_name`` are the multi-tenant accounting identity
    (the resolved spec name, not the raw request tenant, so strangers
    sharing the default spec share its books); ``gated`` marks requests
    holding a quota in-flight slot that must be released exactly once.
    """

    request: InferenceRequest
    future: Future
    span: object = None
    tenant: str = ""
    class_name: str = ""
    gated: bool = False


@dataclass(frozen=True)
class TenantServingStats:
    """Per-class and per-tenant counters of a multi-tenant server.

    ``class_latency`` / ``class_served`` are keyed by priority class;
    ``quotas`` is keyed by tenant spec name (including the default
    spec); ``downgrades`` counts batches the deadline ladder moved to a
    cheaper plan.
    """

    class_latency: dict[str, LatencySummary]
    class_served: dict[str, int]
    quotas: dict
    downgrades: int

    def describe(self) -> str:
        """Multi-line per-class / per-tenant summary."""
        lines = []
        for name in self.class_latency:
            summary = self.class_latency[name]
            lines.append(
                f"class {name:<12} served {self.class_served.get(name, 0):>6}"
                f"  {summary.describe()}")
        for name, quota in sorted(self.quotas.items()):
            lines.append(
                f"tenant {name:<11} admitted {quota.admitted:>6}, "
                f"throttled {quota.throttled} "
                f"(rate {quota.throttled_rate} / "
                f"in-flight {quota.throttled_in_flight})")
        lines.append(f"downgrades  {self.downgrades}")
        return "\n".join(lines)


@dataclass(frozen=True)
class ServerStats:
    """Snapshot of the server's lifetime counters."""

    submitted: int
    completed: int
    executed: int
    cache_hits: int
    rejected: int
    cancelled: int
    deadline_missed: int
    errors: int
    plan_swaps: int
    latency: LatencySummary
    batcher: BatcherStats
    cache: CacheStats | None
    queries: int = 0
    tenants: TenantServingStats | None = None

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"requests:   {self.submitted} submitted, {self.completed} "
            f"completed ({self.cache_hits} cached), {self.rejected} rejected, "
            f"{self.cancelled} cancelled",
            f"batches:    {self.batcher.batches} "
            f"(mean size {self.batcher.mean_batch_size:.1f}, "
            f"{self.batcher.full_batches} full / "
            f"{self.batcher.timeout_batches} timed out)",
            f"latency:    {self.latency.describe()}",
            f"deadlines:  {self.deadline_missed} missed",
            f"plan swaps: {self.plan_swaps}",
        ]
        if self.cache is not None:
            lines.append(
                f"cache:      {self.cache.hits}/{self.cache.hits + self.cache.misses} "
                f"hits ({self.cache.hit_rate * 100:.1f}%), "
                f"{self.cache.size}/{self.cache.capacity} entries"
            )
        if self.queries:
            lines.append(f"queries:    {self.queries} analytics queries")
        if self.tenants is not None:
            lines.append(self.tenants.describe())
        return "\n".join(lines)


class SmolServer:
    """Thread-based online inference server over a plan session.

    Parameters
    ----------
    session:
        The initial engine session (or a prebuilt :class:`SessionManager`).
        Mutually exclusive with ``cluster``.
    policy:
        Micro-batching policy; defaults to the latency preset.
    queue_capacity:
        Bound on admitted-but-unbatched requests (backpressure depth).
    cache_capacity:
        Prediction cache entries; 0 disables caching.
    block_on_full:
        Default admission behavior at capacity: block the submitter (True)
        or shed the request with :class:`AdmissionError` (False).  Each
        ``submit`` call may override.
    cluster:
        A :class:`~repro.cluster.dispatcher.Dispatcher` to execute
        micro-batches on instead of a local session.  The dispatcher's
        replicas must all run the plan the server advertises
        (``cluster.plan_key``).  The server does not close the dispatcher.
    store:
        Optional :class:`~repro.store.store.RenditionStore`.  Analytics
        queries answered via :meth:`query` then warm their scan sessions
        from the store (repeat queries hit persisted score tables instead
        of rescanning) and are planned cache-aware against the store's
        materialized renditions.
    telemetry:
        Optional :class:`~repro.adapt.telemetry.TelemetryCollector`.  Every
        executed micro-batch (session mode) is then reported with its
        per-stage costs, feeding the adaptive replanning loop
        (:mod:`repro.adapt`).  In cluster mode the dispatcher reports
        worker costs itself (``Dispatcher.attach_telemetry``).
    obs:
        Optional :class:`~repro.obs.Observability`.  Each submitted request
        then opens a ``serving.request`` span (parented to the caller's
        ambient trace context, if any), executed micro-batches emit
        ``serving.batch`` spans with modelled per-stage child spans, and
        stage costs are published on the stage-event bus.  The default
        :data:`~repro.obs.NULL_OBS` keeps the hot loop allocation-free.
    slo:
        Optional :class:`~repro.obs.slo.SloEngine`.  Every resolved
        request is then observed (latency + deadline verdict) and every
        failed request counts as an error, so the engine's burn-rate
        windows track exactly what the server promised.  Call
        ``slo.evaluate()`` periodically (e.g. between loadgen waves) to
        fire alerts.
    fuse:
        Fused-execution toggle for session mode.  ``True``/``False`` is
        applied to the initial session and every later :meth:`swap_plan`
        target that supports ``set_fuse`` (functional and scan sessions);
        the default ``None`` leaves sessions exactly as built.  Fused and
        interpreted execution are bit-identical, so the toggle never
        changes responses.
    faults:
        Chaos seam handle (:data:`~repro.chaos.faults.NULL_FAULTS` by
        default), threaded into the admission queue (``serving.admit``)
        and the micro-batcher (``serving.batch``); in multi-tenant mode
        the DRR scheduler's seams (``tenant.enqueue`` / ``tenant.batch``)
        replace them.
    tenants:
        Optional :class:`~repro.tenant.spec.TenantConfig`.  When set the
        server runs multi-tenant: every submit is charged against its
        tenant's admission quota (:class:`~repro.tenant.quota.QuotaGate`),
        routed to its priority class's queue, and micro-batched by
        deficit round-robin (:class:`~repro.tenant.scheduler.DrrScheduler`
        replaces the FIFO queue+batcher pair).  Requests without a
        deadline inherit their class's default; ``queue_capacity``
        becomes a per-class bound.
    ladder:
        Optional :class:`~repro.tenant.deadline.PlanLadder`.  Before each
        session-mode batch executes, the ladder is consulted with the
        batch's tightest remaining deadline budget and may substitute a
        cheaper pre-warmed plan rendition rather than knowingly miss the
        deadline.
    tenant_slo:
        Optional :class:`~repro.tenant.slo.TenantSloBoard`.  Every
        resolved or failed request is then also observed on its tenant's
        own burn-rate board (the shared ``slo`` engine keeps tracking the
        aggregate).
    """

    def __init__(self, session: EngineSession | SessionManager | None = None,
                 policy: BatchPolicy | None = None,
                 queue_capacity: int = 256,
                 cache_capacity: int = 2048,
                 block_on_full: bool = True,
                 cluster=None, store=None, telemetry=None,
                 obs=NULL_OBS, slo=None, fuse: bool | None = None,
                 faults=NULL_FAULTS, tenants=None, ladder=None,
                 tenant_slo=None) -> None:
        if (session is None) == (cluster is None):
            raise ServingError(
                "provide exactly one of session= or cluster="
            )
        self._cluster = cluster
        # The cluster's plan is immutable for the server's lifetime; cache
        # the key so the per-submit cache lookup never touches the
        # dispatcher's lock.
        self._cluster_plan_key = cluster.plan_key if cluster else None
        self._fuse = fuse
        self._sessions: SessionManager | None
        if session is None:
            self._sessions = None
        elif isinstance(session, SessionManager):
            self._sessions = session
        else:
            self._sessions = SessionManager(session)
        if self._sessions is not None:
            self._apply_fuse(self._sessions.current())
        self._policy = policy or BatchPolicy.latency()
        self._obs = obs if obs is not None else NULL_OBS
        self._faults = faults if faults is not None else NULL_FAULTS
        self._tenants = tenants
        self._ladder = ladder
        self._tenant_slo = tenant_slo
        if tenant_slo is not None:
            tenant_slo.attach(self._obs)
        if ladder is not None and cluster is not None:
            raise ServingError(
                "the deadline ladder applies to session-backed servers"
            )
        if tenants is not None:
            # Multi-tenant mode: one DRR scheduler plays both queue and
            # batcher (its surface matches each), so the serving loop and
            # close path below run unchanged.
            from repro.tenant.quota import QuotaGate
            from repro.tenant.scheduler import DrrScheduler

            self._gate = QuotaGate(tenants)
            scheduler = DrrScheduler(
                tenants.classes, self._policy, capacity=queue_capacity,
                obs=self._obs, faults=self._faults,
            )
            self._queue = scheduler
            self._batcher = scheduler
            self._class_latency = {c.name: LatencyRecorder()
                                   for c in tenants.classes}
            self._class_served = {c.name: 0 for c in tenants.classes}
        else:
            self._gate = None
            self._class_latency = {}
            self._class_served = {}
            self._queue: AdmissionQueue[_Pending] = AdmissionQueue(
                queue_capacity, obs=self._obs, faults=self._faults
            )
            self._batcher: MicroBatcher[_Pending] = MicroBatcher(
                self._queue, self._policy, obs=self._obs, faults=self._faults
            )
        self._latency_metric = self._obs.histogram("serving_latency_seconds")
        self._completed_metric = self._obs.counter("serving_completed_total")
        self._cache_hits_metric = self._obs.counter("serving_cache_hits_total")
        self._cache = (PredictionCache(cache_capacity)
                       if cache_capacity > 0 else None)
        self._block_on_full = block_on_full
        self._latency = LatencyRecorder()
        self._counters_lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._executed = 0
        self._cache_hits = 0
        self._deadline_missed = 0
        self._errors = 0
        self._cancelled = 0
        self._queries = 0
        self._store = store
        self._telemetry = telemetry
        self._slo = slo
        if slo is not None:
            slo.attach(self._obs)
        self._query_engine = None
        self._closed = False
        self._outstanding = 0
        self._outstanding_drained = threading.Condition(self._counters_lock)
        self._worker = threading.Thread(
            target=self._serve_loop, name="smol-serve", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    @property
    def policy(self) -> BatchPolicy:
        """The active micro-batching policy."""
        return self._policy

    @property
    def telemetry(self):
        """The attached runtime telemetry collector, or None."""
        return self._telemetry

    @property
    def sessions(self) -> SessionManager:
        """The session manager (for plan hot-swaps); session mode only."""
        if self._sessions is None:
            raise ServingError(
                "a cluster-backed server has no session manager"
            )
        return self._sessions

    @property
    def clustered(self) -> bool:
        """True when micro-batches execute on a cluster dispatcher."""
        return self._cluster is not None

    def _plan_key(self) -> str:
        """The plan key of the active backend (session or cluster)."""
        if self._sessions is not None:
            return self._sessions.current().plan_key
        return self._cluster_plan_key

    def submit(self, request: InferenceRequest,
               block: bool | None = None) -> Future:
        """Submit one request; the future resolves to an InferenceResponse.

        Cache hits resolve before this call returns.  At queue capacity the
        call blocks (``block=True``) or raises
        :class:`~repro.errors.AdmissionError` (``block=False``).
        """
        if self._closed:
            raise ServingError("cannot submit to a closed server")
        with self._counters_lock:
            self._submitted += 1
        span = None
        if self._obs.enabled:
            # Parents to the caller's ambient context (one traced workload
            # becomes one connected tree); a bare submit starts a new trace.
            span = self._obs.span("serving.request",
                                  image_id=request.image_id,
                                  format=request.format_name)
            request.trace = span.context
        tenant_name = ""
        class_name = ""
        if self._tenants is not None:
            # Resolve the accounting identity up front so cache hits and
            # queue rejections are attributed too.  Unknown tenants share
            # the default spec's books (TenantConfig.resolve).
            spec = self._tenants.resolve(request.tenant)
            tenant_name = spec.name
            class_name = spec.priority
            if request.deadline_s is None:
                policy = self._tenants.policy(class_name)
                request.deadline_s = policy.default_deadline_s
            if span is not None:
                span.set(tenant=tenant_name, priority=class_name)
        future: Future = Future()
        if self._cache is not None:
            plan_key = self._plan_key()
            key = PredictionCache.key(request.image_id, request.format_name,
                                      plan_key)
            hit = self._cache.get(key)
            if hit is not None:
                self._resolve(
                    _Pending(request, future, span,
                             tenant=tenant_name, class_name=class_name),
                    prediction=hit, batch_size=0, cached=True,
                    plan_key=plan_key, modelled_seconds=0.0,
                )
                return future
        should_block = self._block_on_full if block is None else block
        gated = False
        try:
            if self._gate is not None:
                # Quota first: a throttled request must not consume queue
                # space.  A successful admit is paired with exactly one
                # release at resolution, failure, or cancellation.
                self._gate.admit(tenant_name)
                gated = True
            self._queue.admit(
                _Pending(request, future, span, tenant=tenant_name,
                         class_name=class_name, gated=gated),
                block=should_block)
        except Exception as exc:
            if gated:
                self._gate.release(tenant_name)
            if span is not None:
                span.set(rejected=True, error=type(exc).__name__)
                span.finish()
            raise
        return future

    def query(self, spec, num_workers: int = 1, seed: int = 0,
              engine=None) -> Future:
        """Answer one analytics query online; resolves to its result.

        ``spec`` is a :class:`~repro.query.spec.QuerySpec` and the future
        resolves to the matching result type of
        :class:`~repro.query.engine.QueryEngine`.  The query runs on its own
        daemon thread against a dedicated pool of ``num_workers`` plan-warmed
        scan replicas -- analytics scans need scan sessions, not the serving
        plan's classification replicas, so the server's own backend keeps
        serving point requests untouched while the query executes.

        Pass ``engine`` (a prebuilt :class:`QueryEngine`) to control frame
        limits and batch sizes; one default engine is built lazily and
        reused across queries otherwise.
        """
        if self._closed:
            raise ServingError("cannot query a closed server")
        if engine is None:
            with self._counters_lock:
                engine = self._query_engine
            if engine is None:
                # Build outside the lock: engine construction is slow and
                # _counters_lock sits on the request hot path.  First
                # finished build wins; a concurrent loser is discarded.
                # Cost queries against the same modelled hardware as the
                # serving session when it exposes one (simulated sessions
                # do); otherwise fall back to the engine default.
                from repro.query.engine import QueryEngine

                performance_model = None
                if self._sessions is not None:
                    performance_model = getattr(
                        self._sessions.current(), "performance_model", None
                    )
                built = QueryEngine(performance_model=performance_model,
                                    store=self._store, obs=self._obs)
                with self._counters_lock:
                    if self._query_engine is None:
                        self._query_engine = built
                    engine = self._query_engine
        future: Future = Future()
        # The query runs on its own thread; capture the submitter's ambient
        # trace context here so the query's spans parent into it.
        parent_ctx = self._obs.current() if self._obs.enabled else None

        def run() -> None:
            if not future.set_running_or_notify_cancel():
                return
            span = None
            if self._obs.enabled:
                span = self._obs.span("serving.query", parent=parent_ctx,
                                      kind=spec.kind, dataset=spec.dataset)
            try:
                with self._obs.activate(span.context if span else None):
                    result = engine.execute(spec, num_workers=num_workers,
                                            seed=seed)
            except Exception as exc:
                if span is not None:
                    span.set(error=type(exc).__name__)
                    span.finish()
                future.set_exception(
                    ServingError(f"analytics query failed: {exc}")
                )
                return
            if span is not None:
                span.finish()
            with self._counters_lock:
                self._queries += 1
            future.set_result(result)

        threading.Thread(target=run, name="smol-query", daemon=True).start()
        return future

    def _apply_fuse(self, session: EngineSession) -> None:
        """Apply the server's fuse toggle to ``session`` when it supports it."""
        if self._fuse is None:
            return
        set_fuse = getattr(session, "set_fuse", None)
        if set_fuse is not None:
            set_fuse(self._fuse)

    def swap_plan(self, session: EngineSession) -> None:
        """Hot-swap the live plan session (in-flight batches finish first).

        The server's ``fuse=`` toggle carries over: an incoming session
        that supports fusion is switched to the server's mode before it
        goes live.
        """
        if self._sessions is None:
            raise ServingError(
                "plan swaps apply to session-backed servers; rebuild the "
                "cluster's workers to change plans"
            )
        self._apply_fuse(session)
        self._sessions.swap(session)

    def stats(self) -> ServerStats:
        """Snapshot of all serving counters."""
        with self._counters_lock:
            submitted = self._submitted
            completed = self._completed
            executed = self._executed
            cache_hits = self._cache_hits
            deadline_missed = self._deadline_missed
            errors = self._errors
            cancelled = self._cancelled
            queries = self._queries
        return ServerStats(
            submitted=submitted,
            completed=completed,
            executed=executed,
            cache_hits=cache_hits,
            rejected=self._queue.stats()["rejected"],
            cancelled=cancelled,
            deadline_missed=deadline_missed,
            errors=errors,
            plan_swaps=self._sessions.swaps if self._sessions else 0,
            latency=self._latency.summary(),
            batcher=(self._batcher.batch_stats() if self._tenants is not None
                     else self._batcher.stats()),
            cache=self._cache.stats() if self._cache is not None else None,
            queries=queries,
            tenants=self.tenant_stats(),
        )

    def tenant_stats(self) -> TenantServingStats | None:
        """Per-class / per-tenant counters; None for single-tenant servers."""
        if self._tenants is None:
            return None
        with self._counters_lock:
            served = dict(self._class_served)
        return TenantServingStats(
            class_latency={name: recorder.summary()
                           for name, recorder in self._class_latency.items()},
            class_served=served,
            quotas=self._gate.stats(),
            downgrades=(self._ladder.downgrades
                        if self._ladder is not None else 0),
        )

    def close(self, timeout: float = 30.0) -> None:
        """Stop accepting requests, drain the queue, and join the worker.

        In cluster mode this also waits for every micro-batch already handed
        to the dispatcher to resolve (the dispatcher itself stays open).
        """
        if self._closed:
            return
        self._closed = True
        self._queue.close()
        self._worker.join(timeout=timeout)
        if self._worker.is_alive():
            raise ServingError("serving thread did not drain in time")
        with self._outstanding_drained:
            if not self._outstanding_drained.wait_for(
                lambda: self._outstanding == 0, timeout=timeout
            ):
                raise ServingError(
                    "cluster batches did not resolve in time"
                )

    def __enter__(self) -> "SmolServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Serving loop
    # ------------------------------------------------------------------
    def _serve_loop(self) -> None:
        while True:
            try:
                batch = self._batcher.next_batch()
            except QueueClosed:  # pragma: no cover - next_batch returns None
                return
            except Exception:
                # An injected (or organic) failure forming a batch must not
                # take the serving thread down -- no request was dequeued
                # (the ``serving.batch`` seam fires before the first get),
                # so retrying loses nothing.
                self._obs.note("serving.batcher_failed")
                continue
            if batch is None:
                return
            if not batch:
                continue
            self._execute_batch(batch)

    def _execute_batch(self, batch: list[_Pending]) -> None:
        # Transition every future to RUNNING first: once running, a client
        # cancel() can no longer win the race against set_result below.
        live = []
        dropped = 0
        for item in batch:
            if item.future.set_running_or_notify_cancel():
                live.append(item)
            else:
                dropped += 1
                self._release_gate(item)
        if dropped:
            with self._counters_lock:
                self._cancelled += dropped
        if not live:
            return
        batch_class = getattr(batch, "class_name", "")
        batch = live
        if self._cluster is not None:
            self._dispatch_to_cluster(batch)
            return
        session = self._sessions.current()
        if self._ladder is not None:
            session = self._ladder.select(
                session, self._batch_budget(batch), len(batch))
        try:
            result = session.execute([item.request for item in batch])
        except Exception as exc:
            self._fail_batch(batch, exc)
            return
        if self._telemetry is not None:
            # Record before resolving so a client that awaited this batch
            # observes its telemetry too.  Telemetry is advisory: a
            # collector bug must not take the serving loop (and every
            # pending future) down with it.  Tenant batches report under a
            # per-class source so the adaptive layer sees each class's
            # cost stream separately.
            source = f"serving/{batch_class}" if batch_class else "serving"
            try:
                self._telemetry.record_session_batch(session, result,
                                                     source=source)
            except Exception:
                pass
        if self._obs.enabled:
            self._trace_session_batch(batch, session, result)
        self._resolve_batch(batch, result.predictions,
                            result.modelled_seconds, session.plan_key)

    def _trace_session_batch(self, batch: list[_Pending], session,
                             result) -> None:
        """Emit the batch span, modelled stage spans, and stage events."""
        parent = next(
            (item.request.trace for item in batch
             if item.request.trace is not None), None,
        )
        batch_span = None
        if parent is not None:
            batch_span = self._obs.record(
                "serving.batch", result.modelled_seconds, parent=parent,
                size=len(batch), plan=session.plan_key,
            )
        stage_seconds = result.stage_seconds or {}
        format_name = getattr(session, "format_name", "")
        model_name = getattr(session, "model_name", "")
        for stage, seconds in stage_seconds.items():
            if batch_span is not None:
                self._obs.record(f"stage.{stage}", seconds,
                                 parent=batch_span)
            subject = model_name if stage == "inference" else format_name
            self._obs.emit_stage(stage, subject, len(batch), seconds,
                                 source="serving")

    def _dispatch_to_cluster(self, batch: list[_Pending]) -> None:
        # Hand the batch to the dispatcher and return to batching; the
        # done-callback (a dispatcher thread) resolves the futures, so
        # replicas execute in parallel with batch formation.
        plan_key = self._cluster_plan_key
        with self._counters_lock:
            self._outstanding += 1
        try:
            cluster_future = self._cluster.submit(
                [item.request for item in batch]
            )
        except Exception as exc:
            self._finish_outstanding()
            self._fail_batch(batch, exc)
            return
        cluster_future.add_done_callback(
            lambda done: self._on_cluster_batch(batch, plan_key, done)
        )

    def _on_cluster_batch(self, batch: list[_Pending], plan_key: str,
                          done) -> None:
        try:
            error = done.exception()
            if error is not None:
                self._fail_batch(batch, error)
                return
            result = done.result()
            self._resolve_batch(batch, result.predictions,
                                result.modelled_seconds, plan_key)
        finally:
            self._finish_outstanding()

    def _finish_outstanding(self) -> None:
        with self._outstanding_drained:
            self._outstanding -= 1
            if self._outstanding == 0:
                self._outstanding_drained.notify_all()

    def _batch_budget(self, batch: list[_Pending]) -> float | None:
        """Tightest remaining deadline across ``batch`` (None: no deadlines)."""
        now = monotonic()
        budget = None
        for item in batch:
            deadline = item.request.deadline_s
            if deadline is None:
                continue
            remaining = item.request.arrival_s + deadline - now
            if budget is None or remaining < budget:
                budget = remaining
        return budget

    def _release_gate(self, item: _Pending) -> None:
        """Return the item's quota in-flight slot, if it holds one."""
        if item.gated and self._gate is not None:
            self._gate.release(item.tenant)

    def _fail_batch(self, batch: list[_Pending], exc: BaseException) -> None:
        with self._counters_lock:
            self._errors += len(batch)
        self._obs.note("serving.batch_failed", error=type(exc).__name__,
                       requests=len(batch))
        for item in batch:
            self._release_gate(item)
            if item.span is not None:
                item.span.set(error=type(exc).__name__)
                item.span.finish()
            if self._slo is not None:
                self._slo.observe(item.request.age(monotonic()), error=True)
            if self._tenant_slo is not None and item.tenant:
                self._tenant_slo.observe(item.tenant,
                                         item.request.age(monotonic()),
                                         error=True)
            item.future.set_exception(
                ServingError(f"batch execution failed: {exc}")
            )

    def _resolve_batch(self, batch: list[_Pending], predictions,
                       modelled_seconds: float, plan_key: str) -> None:
        for item, prediction in zip(batch, predictions):
            if self._cache is not None:
                self._cache.put(
                    PredictionCache.key(item.request.image_id,
                                        item.request.format_name,
                                        plan_key),
                    int(prediction),
                )
            self._resolve(
                item, prediction=int(prediction), batch_size=len(batch),
                cached=False, plan_key=plan_key,
                modelled_seconds=modelled_seconds,
            )

    def _resolve(self, item: _Pending, prediction: int, batch_size: int,
                 cached: bool, plan_key: str,
                 modelled_seconds: float) -> None:
        # Simulated sessions execute in microseconds but model accelerator
        # service time; fold it into the reported latency so both modes
        # produce comparable distributions.
        latency = item.request.age(monotonic()) + modelled_seconds
        missed = (item.request.deadline_s is not None
                  and latency > item.request.deadline_s)
        self._release_gate(item)
        response = InferenceResponse(
            request_id=item.request.request_id,
            image_id=item.request.image_id,
            prediction=prediction,
            latency_s=latency,
            batch_size=batch_size,
            cached=cached,
            deadline_missed=missed,
            plan_key=plan_key,
        )
        self._latency.record(latency)
        self._latency_metric.observe(latency)
        if item.class_name in self._class_latency:
            self._class_latency[item.class_name].record(latency)
            with self._counters_lock:
                self._class_served[item.class_name] += 1
        if self._slo is not None:
            self._slo.observe(latency, error=missed)
        if self._tenant_slo is not None and item.tenant:
            self._tenant_slo.observe(item.tenant, latency, error=missed)
        self._completed_metric.inc()
        if cached:
            self._cache_hits_metric.inc()
        if item.span is not None:
            item.span.set(cached=cached, batch_size=batch_size,
                          latency_ms=latency * 1000.0, plan=plan_key,
                          deadline_missed=missed)
            item.span.finish()
        with self._counters_lock:
            self._completed += 1
            if cached:
                self._cache_hits += 1
            else:
                self._executed += 1
            if missed:
                self._deadline_missed += 1
        item.future.set_result(response)
