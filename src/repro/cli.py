"""Command-line interface for the Smol reproduction.

Subcommands:

* ``plan``      -- print the Pareto frontier and the selected plan for a dataset.
* ``run``       -- execute the selected plan in the simulated runtime.
* ``measure``   -- print the Section 2 measurement study tables.
* ``costs``     -- print the Section 7 / Table 8 cost analyses.
* ``video``     -- run the BlazeIt-vs-Smol video aggregation comparison.

Examples
--------
    python -m repro.cli plan --dataset imagenet --accuracy-floor 0.74
    python -m repro.cli run --dataset bike-bird --images 8192
    python -m repro.cli measure
    python -m repro.cli video --dataset taipei --error 0.03
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.baselines.blazeit import BlazeItBaseline, SmolVideoRunner
from repro.core.smol import Smol
from repro.datasets.video import load_video_dataset
from repro.hardware.instance import get_instance
from repro.inference.perfmodel import PerformanceModel
from repro.measurement.costs import CostAnalysis
from repro.measurement.study import MeasurementStudy
from repro.utils.tables import Table


def _cmd_plan(args: argparse.Namespace) -> int:
    smol = Smol(instance=args.instance, dataset_name=args.dataset)
    report = smol.report(accuracy_floor=args.accuracy_floor)
    print(report.describe())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    smol = Smol(instance=args.instance, dataset_name=args.dataset)
    estimate = smol.best_plan(accuracy_floor=args.accuracy_floor)
    result = smol.run(estimate, limit=args.images)
    print(f"plan:       {estimate.plan.describe()}")
    print(f"estimated:  {estimate.throughput:,.0f} im/s at "
          f"{estimate.accuracy * 100:.2f}% accuracy")
    print(f"simulated:  {result.throughput:,.0f} im/s over "
          f"{result.num_images} images")
    return 0


def _cmd_measure(args: argparse.Namespace) -> int:
    study = MeasurementStudy(args.instance)
    table = Table("ResNet-50 by execution backend",
                  ["Backend", "Batch", "Throughput (im/s)"])
    for row in study.backend_comparison():
        table.add_row(row.backend_name, row.batch_size, round(row.throughput))
    print(table)
    print()
    table = Table("ResNet-50 by GPU generation",
                  ["GPU", "Year", "Throughput (im/s)"])
    for row in study.gpu_generation_trend():
        table.add_row(row["gpu"], row["release_year"], round(row["throughput"]))
    print(table)
    print()
    for model in ("resnet-50", "resnet-18"):
        gap = study.preprocessing_vs_execution(model)
        print(f"{model}: DNN execution is {gap['ratio']:.1f}x faster than "
              f"preprocessing ({gap['dnn_throughput']:,.0f} vs "
              f"{gap['preprocessing_throughput']:,.0f} im/s)")
    return 0


def _cmd_costs(args: argparse.Namespace) -> int:
    analysis = CostAnalysis(args.instance)
    table = Table("Throughput and cost at 75% ImageNet accuracy",
                  ["Condition", "vCPUs", "Throughput (im/s)", "Cents / 1M images"])
    for point in analysis.accuracy_target_scaling():
        table.add_row(point.condition, point.vcpus, round(point.throughput),
                      round(point.cents_per_million_images, 2))
    print(table)
    return 0


def _cmd_video(args: argparse.Namespace) -> int:
    perf = PerformanceModel(get_instance(args.instance))
    dataset = load_video_dataset(args.dataset)
    blazeit = BlazeItBaseline(perf).run(dataset, args.error, seed=args.seed)
    smol = SmolVideoRunner(perf).run(dataset, args.error, seed=args.seed)
    table = Table(f"Aggregation query on {dataset.name} (error {args.error})",
                  ["System", "Query time (s)", "Target invocations", "Estimate"])
    table.add_row("BlazeIt", round(blazeit.total_seconds, 1),
                  blazeit.target_invocations, round(blazeit.estimate, 3))
    table.add_row("Smol", round(smol.total_seconds, 1),
                  smol.target_invocations, round(smol.estimate, 3))
    print(table)
    print(f"speedup: {blazeit.total_seconds / smol.total_seconds:.2f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Smol reproduction command-line interface"
    )
    parser.add_argument("--instance", default="g4dn.xlarge",
                        help="cloud instance to model (default: g4dn.xlarge)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    plan = subparsers.add_parser("plan", help="print the Pareto frontier")
    plan.add_argument("--dataset", default="imagenet")
    plan.add_argument("--accuracy-floor", type=float, default=None)
    plan.set_defaults(func=_cmd_plan)

    run = subparsers.add_parser("run", help="execute the selected plan")
    run.add_argument("--dataset", default="imagenet")
    run.add_argument("--accuracy-floor", type=float, default=None)
    run.add_argument("--images", type=int, default=4096)
    run.set_defaults(func=_cmd_run)

    measure = subparsers.add_parser("measure", help="Section 2 measurement study")
    measure.set_defaults(func=_cmd_measure)

    costs = subparsers.add_parser("costs", help="Section 7 / Table 8 cost analysis")
    costs.set_defaults(func=_cmd_costs)

    video = subparsers.add_parser("video", help="video aggregation comparison")
    video.add_argument("--dataset", default="taipei")
    video.add_argument("--error", type=float, default=0.03)
    video.add_argument("--seed", type=int, default=0)
    video.set_defaults(func=_cmd_video)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
