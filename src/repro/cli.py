"""Command-line interface for the Smol reproduction.

Subcommands:

* ``plan``          -- print the Pareto frontier and the selected plan for a dataset.
* ``run``           -- execute the selected plan in the simulated runtime.
* ``measure``       -- print the Section 2 measurement study tables.
* ``costs``         -- print the Section 7 / Table 8 cost analyses.
* ``video``         -- run the BlazeIt-vs-Smol video aggregation comparison.
* ``serve-bench``   -- compare micro-batching policies on the online server.
* ``loadtest``      -- drive the online server with open-loop traffic.
* ``cluster-bench`` -- sharded multi-worker scaling study (offline + online).
* ``query``         -- run a declarative analytics query sharded over the
  cluster runtime, verifying bit-identical results across worker counts.
* ``store``         -- inspect (``stats``), garbage-collect (``gc``), or
  pre-materialize (``warm``) the persistent rendition & score store.
* ``adapt``         -- run the online cost-feedback replanning demo: a
  frozen-plan run and an adaptive run through the same mid-run decode
  slowdown, reporting throughput recovery (and, for the scan scenario,
  verifying results stay bit-identical across the hot-swap).
* ``obs``           -- observability tooling: ``demo`` runs a fully traced
  workload across every subsystem (serving, cluster, query, store, adapt)
  and exports the span log, Chrome trace, and Prometheus metrics;
  ``summarize`` prints the per-span-name duration table of a saved JSONL
  trace; ``export`` converts a JSONL trace to Chrome ``trace_event`` JSON;
  ``analyze`` attributes each request's latency across pipeline categories
  (critical-path blame, verified to sum to the request durations);
  ``slo`` replays a span log through a multi-window SLO burn-rate engine
  (``--fail-on-burn`` exits 1 when the log burns); ``postmortem``
  reconstructs the failure trace from a flight-recorder bundle.
* ``chaos``         -- scenario fuzzing + fault injection: ``run`` sweeps a
  fixed seed range through every global invariant (exactly-once
  resolution, bit-identical scores, connected traces, crash-safe
  manifests), ``replay`` re-runs one seed or a dumped scenario
  deterministically, ``shrink`` minimizes a failing seed to the smallest
  scenario that still violates the same invariant.
* ``bench-diff``    -- compare two ``BENCH_*.json`` scorecards field by
  field and exit 1 on regressions beyond tolerance.

The serving/cluster/query benchmarks also record their scorecards as
machine-readable artifacts (``BENCH_serving.json`` / ``BENCH_cluster.json``
/ ``BENCH_query.json``, see ``--bench-json``) so the performance trajectory
is trackable.

Errors from the library (unknown datasets, infeasible constraints, bad
serving parameters) exit with status 2 and a one-line message rather than a
traceback.

Examples
--------
    python -m repro.cli plan --dataset imagenet --accuracy-floor 0.74
    python -m repro.cli run --dataset bike-bird --images 8192
    python -m repro.cli measure
    python -m repro.cli video --dataset taipei --error 0.03
    python -m repro.cli serve-bench --mode simulated --requests 2000
    python -m repro.cli loadtest --rate 500 --duration 2 --pattern burst
    python -m repro.cli cluster-bench --workers 1 2 4 --images 4096
    python -m repro.cli query --kind aggregate --dataset taipei --error 0.05 \
        --workers 1 4
    python -m repro.cli store warm --root .smol-store --dataset taipei
    python -m repro.cli query --kind aggregate --dataset taipei --error 0.05 \
        --store-root .smol-store      # warm cache hit, streamed shards
    python -m repro.cli store stats --root .smol-store
    python -m repro.cli adapt --scenario serving --drift-factor 4
    python -m repro.cli adapt --scenario scan --frames 2400 --segments 6
    python -m repro.cli obs demo --dataset taipei --frames 2400
    python -m repro.cli query --kind aggregate --dataset taipei --error 0.05 \
        --trace-out TRACE_query.jsonl
    python -m repro.cli obs summarize --trace TRACE_query.jsonl
    python -m repro.cli obs export --trace TRACE_query.jsonl \
        --out TRACE_query_chrome.json
    python -m repro.cli obs analyze --trace TRACE_query.jsonl --top-k 10
    python -m repro.cli obs slo --trace TRACE_query.jsonl \
        --latency-target-ms 50 --objective 0.99 --fail-on-burn
    python -m repro.cli obs postmortem --bundle postmortems/postmortem-0001
    python -m repro.cli chaos run --seeds 1000 --postmortem-dir postmortems
    python -m repro.cli chaos replay 137
    python -m repro.cli chaos shrink 137 --out postmortems/minimal-137
    python -m repro.cli bench-diff BENCH_obs.json BENCH_obs.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.baselines.blazeit import BlazeItBaseline, SmolVideoRunner
from repro.cluster import (
    Dispatcher,
    LabeledExample,
    ShardedCorpusRunner,
    ThreadWorker,
)
from repro.core.smol import Smol
from repro.datasets.synthetic import SyntheticImageGenerator
from repro.datasets.video import load_video_dataset
from repro.errors import ReproError, ServingError
from repro.hardware.instance import get_instance
from repro.inference.perfmodel import PerformanceModel
from repro.measurement.costs import CostAnalysis
from repro.measurement.study import MeasurementStudy
from repro.obs import (
    NULL_OBS,
    Observability,
    read_spans_jsonl,
    summarize_spans,
    validate_span_tree,
    write_chrome_trace,
)
from repro.query import QueryEngine, QuerySpec
from repro.serving import (
    BatchPolicy,
    LoadGenerator,
    SimulatedSession,
    SmolServer,
    functional_session_for_plan,
)
from repro.utils.benchio import latency_metrics, write_bench_json
from repro.utils.tables import Table


def _cmd_plan(args: argparse.Namespace) -> int:
    smol = Smol(instance=args.instance, dataset_name=args.dataset)
    report = smol.report(accuracy_floor=args.accuracy_floor)
    print(report.describe())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    smol = Smol(instance=args.instance, dataset_name=args.dataset)
    estimate = smol.best_plan(accuracy_floor=args.accuracy_floor)
    result = smol.run(estimate, limit=args.images)
    print(f"plan:       {estimate.plan.describe()}")
    print(f"estimated:  {estimate.throughput:,.0f} im/s at "
          f"{estimate.accuracy * 100:.2f}% accuracy")
    print(f"simulated:  {result.throughput:,.0f} im/s over "
          f"{result.num_images} images")
    return 0


def _cmd_measure(args: argparse.Namespace) -> int:
    study = MeasurementStudy(args.instance)
    table = Table("ResNet-50 by execution backend",
                  ["Backend", "Batch", "Throughput (im/s)"])
    for row in study.backend_comparison():
        table.add_row(row.backend_name, row.batch_size, round(row.throughput))
    print(table)
    print()
    table = Table("ResNet-50 by GPU generation",
                  ["GPU", "Year", "Throughput (im/s)"])
    for row in study.gpu_generation_trend():
        table.add_row(row["gpu"], row["release_year"], round(row["throughput"]))
    print(table)
    print()
    for model in ("resnet-50", "resnet-18"):
        gap = study.preprocessing_vs_execution(model)
        print(f"{model}: DNN execution is {gap['ratio']:.1f}x faster than "
              f"preprocessing ({gap['dnn_throughput']:,.0f} vs "
              f"{gap['preprocessing_throughput']:,.0f} im/s)")
    return 0


def _cmd_costs(args: argparse.Namespace) -> int:
    analysis = CostAnalysis(args.instance)
    table = Table("Throughput and cost at 75% ImageNet accuracy",
                  ["Condition", "vCPUs", "Throughput (im/s)", "Cents / 1M images"])
    for point in analysis.accuracy_target_scaling():
        table.add_row(point.condition, point.vcpus, round(point.throughput),
                      round(point.cents_per_million_images, 2))
    print(table)
    return 0


def _cmd_video(args: argparse.Namespace) -> int:
    perf = PerformanceModel(get_instance(args.instance))
    dataset = load_video_dataset(args.dataset)
    blazeit = BlazeItBaseline(perf).run(dataset, args.error, seed=args.seed)
    smol = SmolVideoRunner(perf).run(dataset, args.error, seed=args.seed)
    table = Table(f"Aggregation query on {dataset.name} (error {args.error})",
                  ["System", "Query time (s)", "Target invocations", "Estimate"])
    table.add_row("BlazeIt", round(blazeit.total_seconds, 1),
                  blazeit.target_invocations, round(blazeit.estimate, 3))
    table.add_row("Smol", round(smol.total_seconds, 1),
                  smol.target_invocations, round(smol.estimate, 3))
    print(table)
    print(f"speedup: {blazeit.total_seconds / smol.total_seconds:.2f}x")
    return 0


def _select_estimate(args: argparse.Namespace) -> tuple[Smol, object]:
    """The plan the serving/cluster commands execute: the constrained best
    plan when a floor is given, else the frontier's throughput champion."""
    smol = Smol(instance=args.instance, dataset_name=args.dataset)
    estimate = (smol.best_plan(accuracy_floor=args.accuracy_floor)
                if args.accuracy_floor is not None
                else max(smol.pareto_frontier(), key=lambda e: e.throughput))
    return smol, estimate


def _make_session(args: argparse.Namespace, smol: Smol, estimate,
                  num_classes: int | None = None):
    """Wrap the selected plan in a warmed serving session."""
    if args.mode == "functional":
        return functional_session_for_plan(estimate)
    kwargs = {} if num_classes is None else {"num_classes": num_classes}
    session = SimulatedSession(estimate.plan, smol.performance_model,
                               config=smol.engine_config, **kwargs)
    session.warmup()
    return session


def _build_session(args: argparse.Namespace):
    """Select a plan for the dataset and wrap it in a serving session."""
    smol, estimate = _select_estimate(args)
    return estimate, _make_session(args, smol, estimate)


def _tracing_obs(args: argparse.Namespace):
    """An Observability when ``--trace-out`` was given, else NULL_OBS."""
    return Observability() if getattr(args, "trace_out", None) else NULL_OBS


def _finish_trace(obs, trace_out: str | None) -> None:
    """Write ``obs``'s finished spans as JSONL when a path was given."""
    if not trace_out:
        return
    from repro.obs import write_spans_jsonl

    count = write_spans_jsonl(obs.spans(), trace_out)
    print(f"wrote {count} spans to {trace_out}")


def _image_pool(args: argparse.Namespace) -> list:
    """A pool of (image_id, payload) pairs sized for cache-hit traffic."""
    if args.mode != "functional":
        return [(f"img-{i}", None) for i in range(args.pool_size)]
    generator = SyntheticImageGenerator(num_classes=2, image_size=48,
                                        seed=args.seed)
    return [(f"img-{i}", generator.generate_image(i % 2, i).pixels)
            for i in range(args.pool_size)]


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    if args.rate <= 0:
        raise ServingError("--rate must be positive")
    estimate, session = _build_session(args)
    pool = _image_pool(args)
    obs = _tracing_obs(args)
    duration = args.requests / args.rate
    table = Table(
        f"Serving latency/throughput by batching policy ({args.mode} mode)",
        ["Policy", "Batch", "Wait (ms)", "Req/s", "p50 (ms)", "p95 (ms)",
         "p99 (ms)"],
    )
    print(f"plan: {estimate.plan.describe()}")
    rows = []
    for policy in (BatchPolicy.latency(), BatchPolicy.throughput()):
        with SmolServer(session, policy=policy,
                        cache_capacity=args.cache_capacity,
                        obs=obs) as server:
            generator = LoadGenerator(server, pool, seed=args.seed)
            report = generator.run(rate_per_s=args.rate, duration_s=duration,
                                   pattern="poisson")
        table.add_row(policy.name, policy.max_batch_size,
                      policy.max_wait_ms, round(report.throughput),
                      round(report.latency.p50_ms, 2),
                      round(report.latency.p95_ms, 2),
                      round(report.latency.p99_ms, 2))
        rows.append({
            "policy": policy.name,
            "max_batch_size": policy.max_batch_size,
            "max_wait_ms": policy.max_wait_ms,
            **latency_metrics(report),
        })
    print(table)
    written = write_bench_json(
        args.bench_json, "serve-bench", rows,
        meta={"mode": args.mode, "plan": estimate.plan.describe(),
              "rate_per_s": args.rate, "requests": args.requests,
              "seed": args.seed},
    )
    print(f"wrote {written}")
    _finish_trace(obs, args.trace_out)
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    estimate, session = _build_session(args)
    pool = _image_pool(args)
    obs = _tracing_obs(args)
    policy = BatchPolicy(name="custom", max_batch_size=args.max_batch,
                         max_wait_ms=args.max_wait_ms)
    print(f"plan: {estimate.plan.describe()}")
    with SmolServer(session, policy=policy,
                    queue_capacity=args.queue_capacity,
                    cache_capacity=args.cache_capacity,
                    obs=obs) as server:
        generator = LoadGenerator(server, pool, seed=args.seed)
        report = generator.run(
            rate_per_s=args.rate, duration_s=args.duration,
            pattern=args.pattern, burst_size=args.burst_size,
            deadline_s=(args.deadline_ms / 1000.0
                        if args.deadline_ms is not None else None),
            shed_on_full=args.shed,
        )
        stats = server.stats()
    print(report.describe())
    print()
    print(stats.describe())
    written = write_bench_json(
        args.bench_json, "loadtest",
        [{"pattern": args.pattern, "rate_per_s": args.rate,
          "cache_hits": report.cache_hits, **latency_metrics(report)}],
        meta={"mode": args.mode, "plan": estimate.plan.describe(),
              "duration_s": args.duration, "seed": args.seed},
    )
    print(f"wrote {written}")
    _finish_trace(obs, args.trace_out)
    return 0


def _cmd_tenant(args: argparse.Namespace) -> int:
    """Mixed-load multi-tenant demo: DRR fairness made visible.

    Three tenants (one per priority class) flood the server with equal
    backlogs; deficit round-robin drains the interactive class 8x faster
    than batch, so tail latency must come out ordered
    ``interactive < standard < batch``.  Exits 1 when it does not -- CI
    runs this as the end-to-end fairness smoke test.
    """
    from repro.serving.request import InferenceRequest
    from repro.tenant import (
        ClassPolicy,
        TenantConfig,
        TenantSloBoard,
        TenantSpec,
    )

    estimate, session = _build_session(args)
    pool = _image_pool(args)
    tenants = (("dashboard", "interactive"), ("api", "standard"),
               ("backfill", "batch"))
    config = TenantConfig(
        tenants=tuple(TenantSpec(name=name, priority=priority)
                      for name, priority in tenants),
        # Deadline-free classes: the demo measures pure scheduling, not
        # deadline accounting.
        classes=(ClassPolicy("interactive", weight=8.0, rank=0),
                 ClassPolicy("standard", weight=4.0, rank=1),
                 ClassPolicy("batch", weight=1.0, rank=2)),
    )
    board = TenantSloBoard(config, fallback_target_s=args.slo_target_ms
                           / 1000.0)
    policy = BatchPolicy(name="tenant-demo", max_batch_size=args.max_batch,
                         max_wait_ms=1.0)
    print(f"plan: {estimate.plan.describe()}")
    print(f"mixed load: {args.requests} requests per tenant, "
          f"classes weighted 8/4/1")
    with SmolServer(session, policy=policy,
                    queue_capacity=3 * args.requests + 8,
                    cache_capacity=0, tenants=config,
                    tenant_slo=board) as server:
        futures = []
        # Interleaved round-robin submission builds an equal backlog per
        # class; the DRR weights decide the drain order.
        for index in range(args.requests):
            for name, _ in tenants:
                image_id, payload = pool[index % len(pool)]
                futures.append(server.submit(InferenceRequest(
                    image_id=image_id, payload=payload, tenant=name)))
        for future in futures:
            future.result(timeout=120.0)
        stats = server.tenant_stats()
        board.evaluate()

    table = Table(
        "Per-class latency under mixed tenant load",
        ["Class", "Tenant", "Weight", "Served", "p50 (ms)", "p95 (ms)",
         "p99 (ms)"],
    )
    p99 = {}
    for (name, priority), weight in zip(tenants, (8.0, 4.0, 1.0)):
        latency = stats.class_latency[priority]
        p99[priority] = latency.p99_ms
        table.add_row(priority, name, f"{weight:.0f}x",
                      stats.class_served[priority],
                      f"{latency.p50_ms:.2f}", f"{latency.p95_ms:.2f}",
                      f"{latency.p99_ms:.2f}")
    print()
    print(table.render())
    print("per-tenant SLO state:")
    for tenant, state in sorted(board.state().items()):
        spec = state["specs"][0]
        shortest = min(spec["windows"], key=lambda w: w["window_s"])
        verdict = "BURNING" if spec["burning"] else "ok"
        print(f"  {tenant:<12} target {spec['latency_target_s'] * 1e3:.0f}ms"
              f"  burn {shortest['burn_rate']:.2f}x  {verdict}")
    ordered = p99["interactive"] < p99["standard"] < p99["batch"]
    if not ordered:
        print("FAIL: per-class p99 ordering violated "
              f"(interactive={p99['interactive']:.2f}ms, "
              f"standard={p99['standard']:.2f}ms, "
              f"batch={p99['batch']:.2f}ms)")
        return 1
    print("per-class p99 ordering holds: interactive < standard < batch")
    return 0


def _cluster_worker_factory(args: argparse.Namespace, smol: Smol, estimate,
                            obs=NULL_OBS):
    """A worker factory building one warmed replica per call."""
    def factory(worker_id: str, results):
        session = _make_session(args, smol, estimate,
                                num_classes=args.num_classes)
        return ThreadWorker(worker_id, session, results,
                            service_time_scale=args.service_scale,
                            obs=obs)
    return factory


def _cmd_cluster_bench(args: argparse.Namespace) -> int:
    if args.rate <= 0:
        raise ServingError("--rate must be positive")
    if any(count <= 0 for count in args.workers):
        raise ServingError("--workers counts must be positive")
    smol, estimate = _select_estimate(args)
    obs = _tracing_obs(args)
    factory = _cluster_worker_factory(args, smol, estimate, obs=obs)
    if args.mode == "functional":
        # Functional replicas run real pixels through a binary model.
        generator = SyntheticImageGenerator(num_classes=2, image_size=48,
                                            seed=args.seed)
        examples = [
            LabeledExample(image_id=f"img-{i}", label=i % 2,
                           payload=generator.generate_image(i % 2, i).pixels)
            for i in range(args.images)
        ]
    else:
        examples = [
            LabeledExample(image_id=f"img-{i}", label=i % args.num_classes)
            for i in range(args.images)
        ]
    pool = _image_pool(args)
    print(f"plan: {estimate.plan.describe()}")
    table = Table(
        f"Smol-Cluster scaling ({args.mode} mode, {args.images} images, "
        f"router {args.router})",
        ["Workers", "Shard im/s", "Speedup", "Req/s", "p50 (ms)",
         "p95 (ms)", "p99 (ms)"],
    )
    rows = []
    baseline = None
    for count in args.workers:
        with Dispatcher(factory, num_workers=count,
                        router=args.router, obs=obs) as dispatcher:
            runner = ShardedCorpusRunner(
                factory, num_workers=count, num_classes=args.num_classes,
                batch_size=args.max_batch, router=args.router,
                format_name=estimate.plan.input_format.name, obs=obs,
            )
            corpus = runner.run(examples, dispatcher=dispatcher)
            with SmolServer(cluster=dispatcher,
                            policy=BatchPolicy(name="cluster",
                                               max_batch_size=args.max_batch,
                                               max_wait_ms=2.0),
                            cache_capacity=args.cache_capacity,
                            obs=obs) as server:
                generator = LoadGenerator(server, pool, seed=args.seed)
                online = generator.run(rate_per_s=args.rate,
                                       duration_s=args.duration,
                                       pattern=args.pattern,
                                       burst_size=args.burst_size)
        if baseline is None:
            baseline = corpus.simulated_throughput
        speedup = (corpus.simulated_throughput / baseline
                   if baseline > 0 else 0.0)
        table.add_row(count, round(corpus.simulated_throughput),
                      round(speedup, 2), round(online.throughput),
                      round(online.latency.p50_ms, 2),
                      round(online.latency.p95_ms, 2),
                      round(online.latency.p99_ms, 2))
        rows.append({
            "workers": count,
            "simulated_throughput": round(corpus.simulated_throughput, 2),
            "speedup": round(speedup, 3),
            "corpus_accuracy": round(corpus.total.accuracy, 4),
            "pattern": args.pattern,
            **latency_metrics(online),
        })
    print(table)
    written = write_bench_json(
        args.bench_json, "cluster-bench", rows,
        meta={"mode": args.mode, "plan": estimate.plan.describe(),
              "images": args.images, "router": args.router,
              "rate_per_s": args.rate, "seed": args.seed},
    )
    print(f"wrote {written}")
    _finish_trace(obs, args.trace_out)
    return 0


def _query_spec(args: argparse.Namespace) -> QuerySpec:
    """Build the declarative spec the ``query`` subcommand describes."""
    if args.kind == "aggregate":
        if args.error is None:
            raise ServingError("aggregate queries need --error")
        return QuerySpec.aggregate(
            args.dataset, error_bound=args.error,
            specialized_accuracy=args.specialized_accuracy,
            accuracy_floor=args.accuracy_floor,
        )
    if args.kind == "limit":
        if args.min_count is None or args.limit is None:
            raise ServingError("limit queries need --min-count and --limit")
        return QuerySpec.limit(
            args.dataset, min_count=args.min_count, limit=args.limit,
            specialized_accuracy=args.specialized_accuracy,
            accuracy_floor=args.accuracy_floor,
        )
    return QuerySpec.cascade(
        args.dataset, num_classes=args.num_classes, images=args.images,
        specialized_accuracy=args.specialized_accuracy,
        accuracy_floor=args.accuracy_floor,
    )


def _query_signature(result) -> tuple:
    """The statistics that must be bit-identical across worker counts."""
    if hasattr(result, "estimate"):
        return (result.estimate, result.ci_half_width,
                result.target_invocations, result.population_proxy_mean)
    if hasattr(result, "found_frames"):
        return (result.found_frames, result.frames_scanned,
                result.target_invocations)
    return (result.accuracy, result.accuracy_ci_half_width,
            result.mean_prediction, result.confusion.tobytes())


def _query_headline(result) -> str:
    """The one-cell summary of a query result for the sweep table."""
    if hasattr(result, "estimate"):
        return f"{result.estimate:.4f} ± {result.ci_half_width:.4f}"
    if hasattr(result, "found_frames"):
        return (f"{len(result.found_frames)}/{result.spec.limit} found, "
                f"{result.frames_scanned} scanned")
    return (f"acc {result.accuracy * 100:.2f}% "
            f"± {result.accuracy_ci_half_width * 100:.2f}%")


def _open_store(root: str | None, obs=NULL_OBS):
    """A RenditionStore handle for ``root``, or None when no root given."""
    if root is None:
        return None
    from repro.store import RenditionStore

    return RenditionStore(root, obs=obs)


def _span_summary_table(title: str, spans) -> Table:
    """The per-span-name duration table of a span export."""
    table = Table(title, ["Span", "Count", "Total (ms)", "Mean (ms)",
                          "p50 (ms)", "p95 (ms)", "Max (ms)"])
    for row in summarize_spans(spans):
        table.add_row(row["name"], row["count"], round(row["total_ms"], 2),
                      round(row["mean_ms"], 3), round(row["p50_ms"], 3),
                      round(row["p95_ms"], 3), round(row["max_ms"], 3))
    return table


def _cmd_query(args: argparse.Namespace) -> int:
    if any(count <= 0 for count in args.workers):
        raise ServingError("--workers counts must be positive")
    spec = _query_spec(args)
    obs = _tracing_obs(args)
    engine = QueryEngine(instance=args.instance,
                         frame_limit=args.frame_limit,
                         batch_size=args.max_batch,
                         store=_open_store(args.store_root, obs=obs),
                         obs=obs)
    reference = engine.execute_single(spec, seed=args.seed)
    print(f"query: {spec.describe()}")
    print(reference.plans.describe())
    table = Table(
        f"Smol-Query sweep ({spec.kind} on {spec.dataset})",
        ["Workers", "Result (must be identical)", "Makespan (s)", "Speedup",
         "Wall (s)"],
    )
    rows = []
    baseline_makespan = None
    expected = _query_signature(reference)
    result = reference
    for count in args.workers:
        result = engine.execute(spec, num_workers=count, seed=args.seed)
        if _query_signature(result) != expected:
            raise ServingError(
                f"sharded execution on {count} workers diverged from the "
                "single-process engines -- merge exactness is broken"
            )
        makespan = result.execution.cheap_pass_makespan_s
        if baseline_makespan is None:
            baseline_makespan = makespan
        speedup = baseline_makespan / makespan if makespan > 0 else 0.0
        table.add_row(count, _query_headline(result), round(makespan, 3),
                      round(speedup, 2),
                      round(result.execution.wall_seconds, 3))
        rows.append({
            "workers": count,
            "cheap_pass_makespan_s": round(makespan, 6),
            "cheap_pass_speedup": round(speedup, 3),
            "modelled_speedup": round(result.execution.modelled_speedup, 3),
            "wall_seconds": round(result.execution.wall_seconds, 4),
            "frames_scanned": result.execution.frames_scanned,
            "headline": _query_headline(result),
        })
    print(table)
    print("bit-identical across worker counts: OK")
    print()
    print(result.describe())
    written = write_bench_json(
        args.bench_json, "query", rows,
        meta={"spec": spec.describe(),
              "cheap_plan": reference.plans.cheap.plan.describe(),
              "accurate_plan": reference.plans.accurate.plan.describe(),
              "frame_limit": args.frame_limit, "seed": args.seed},
    )
    print(f"wrote {written}")
    _finish_trace(obs, args.trace_out)
    if engine.store is not None:
        print()
        print(engine.store.stats().describe())
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.errors import StoreError
    from repro.store import RenditionStore

    if args.action in ("stats", "gc") and not Path(args.root).exists():
        # Opening a store creates it; inspecting a mistyped path must not
        # silently conjure an empty store and report all-zero stats.
        raise StoreError(
            f"no store at {args.root!r} ('store warm' creates one)"
        )
    store = RenditionStore(args.root)
    if args.action == "stats":
        print(f"store: {store.root}")
        print(store.stats().describe())
        return 0
    if args.action == "gc":
        report = store.gc()
        print(f"gc: removed {report.removed_objects} unreferenced objects "
              f"({report.freed_bytes / 1e6:.2f} MB freed), "
              f"{report.live_objects} live")
        return 0
    # warm: plan the spec, persist its cheap-pass score table, and
    # materialize a decoded rendition sample so later plans price it
    # cache-aware.
    engine = QueryEngine(instance=args.instance,
                         frame_limit=args.frames, store=store)
    spec = QuerySpec.aggregate(
        args.dataset, error_bound=args.error,
        specialized_accuracy=args.specialized_accuracy,
    )
    plans = engine.warm(spec, rendition_frames=args.rendition_frames)
    print(f"warmed {args.dataset}: cheap pass "
          f"{plans.cheap.plan.describe()} over {args.frames} frames"
          + (f", {args.rendition_frames} rendition frames materialized"
             if args.rendition_frames else ""))
    print(store.stats().describe())
    return 0


def _adapt_scenario_reports(args: argparse.Namespace):
    """Run the frozen and adaptive variants of the selected scenario."""
    from repro.adapt import (
        ScanDriftConfig,
        ServingDriftConfig,
        run_scan_drift_scenario,
        run_serving_drift_scenario,
    )

    if args.dataset is None:
        # Per-scenario default: serving plans an image dataset, the scan
        # scenario streams a video dataset.
        args.dataset = "imagenet" if args.scenario == "serving" else "taipei"
    if args.scenario == "serving":
        config = ServingDriftConfig(
            dataset=args.dataset, instance=args.instance,
            waves=args.waves, wave_requests=args.wave_requests,
            drift_wave=args.drift_wave, drift_factor=args.drift_factor,
            materialize_format=args.materialize_format,
            threshold=args.threshold, hysteresis=args.hysteresis,
            min_improvement=args.min_improvement,
        )
        runner = run_serving_drift_scenario
    else:
        config = ScanDriftConfig(
            dataset=args.dataset,
            instance=args.instance,
            frames=args.frames, segments=args.segments,
            drift_segment=args.drift_segment,
            drift_factor=args.drift_factor,
            materialize=not args.no_materialize,
            workers=args.adapt_workers, batch_size=args.max_batch,
            threshold=args.threshold, hysteresis=args.hysteresis,
            min_improvement=args.min_improvement, seed=args.seed,
        )
        runner = run_scan_drift_scenario
    return config, runner(False, config), runner(True, config)


def _cmd_adapt(args: argparse.Namespace) -> int:
    config, frozen, adaptive = _adapt_scenario_reports(args)
    phase_name = "Wave" if args.scenario == "serving" else "Segment"
    table = Table(
        f"Smol-Adapt {args.scenario} drift recovery "
        f"({args.drift_factor:g}x decode slowdown at {phase_name.lower()} "
        f"{frozen.drift_phase})",
        [phase_name, "Frozen (im/s)", "Adaptive (im/s)", "Decision", "Plan"],
    )
    for frozen_phase, adaptive_phase in zip(frozen.phases, adaptive.phases):
        table.add_row(
            frozen_phase.index,
            round(frozen_phase.throughput),
            round(adaptive_phase.throughput),
            adaptive_phase.decision or "-",
            adaptive_phase.plan_key,
        )
    print(table)
    print(f"frozen:    {frozen.recovery * 100:6.1f}% of pre-drift throughput")
    print(f"adaptive:  {adaptive.recovery * 100:6.1f}% of pre-drift "
          f"throughput ({adaptive.swaps} hot-swap(s), "
          f"{adaptive.replans} replans)")
    meta = {"scenario": args.scenario, "drift_factor": args.drift_factor,
            "seed": args.seed}
    if args.scenario == "scan":
        from repro.adapt import scan_identity

        identity = scan_identity(frozen, adaptive)
        identical = all(identity.values())
        meta.update(identity)
        print("results bit-identical across the hot-swap: "
              + ("OK" if identical else "BROKEN"))
        if not identical:
            raise ServingError(
                "adaptive scan diverged from the frozen-plan run -- "
                "replan safety is broken"
            )
    # ScenarioReport.scorecard_row is the single source of the row
    # schema, shared with benchmarks/bench_adapt.py (which sweeps both
    # scenarios); the CLI regenerates the selected scenario's rows.
    rows = [report.scorecard_row(args.scenario)
            for report in (frozen, adaptive)]
    written = write_bench_json(args.bench_json, "adapt-drift-recovery",
                               rows, meta=meta)
    print(f"wrote {written}")
    return 0


#: Span-name prefixes the ``obs demo`` trace must cover -- one per
#: subsystem layer (the acceptance gate of the observability PR).
DEMO_COVERAGE = ("serving.", "cluster.", "query.", "store.", "adapt.")


def _cmd_obs_demo(args: argparse.Namespace) -> int:
    """One traced workload through every layer, exported three ways.

    Runs the same aggregate query untraced first, then traced (with a
    warm store, a serving wave, and one adaptive-controller step) under a
    single root span -- and fails loudly if the traced scores differ by a
    bit, or if the exported spans do not form one connected tree covering
    every subsystem.
    """
    import tempfile

    from repro.adapt import (
        AdaptiveController,
        DriftDetector,
        OnlineCalibrator,
        Replanner,
        TelemetryCollector,
    )
    from repro.core.accuracy import AccuracyEstimator
    from repro.core.costmodel import SmolCostModel
    from repro.core.planner import PlanGenerator
    from repro.query.engine import VIDEO_SENSITIVITY, VIDEO_TOP_ACCURACY
    from repro.query.scan import scan_store_fingerprint
    from repro.serving import InferenceRequest, SimulatedSession
    from repro.store import RenditionStore

    spec = QuerySpec.aggregate(args.dataset, error_bound=args.error,
                               specialized_accuracy=args.specialized_accuracy)
    # The untraced reference first: tracing must not perturb a single bit
    # of any query statistic.
    untraced = QueryEngine(instance=args.instance,
                           frame_limit=args.frames,
                           batch_size=args.max_batch)
    expected = _query_signature(
        untraced.execute(spec, num_workers=args.workers, seed=args.seed)
    )

    obs = Observability()
    store_root = args.store_root or tempfile.mkdtemp(prefix="smol-obs-demo-")
    store = RenditionStore(store_root, obs=obs)
    engine = QueryEngine(instance=args.instance, frame_limit=args.frames,
                         batch_size=args.max_batch, store=store, obs=obs)
    telemetry = TelemetryCollector()
    telemetry.subscribe_to(obs)
    dataset = load_video_dataset(args.dataset)
    formats = dataset.available_formats

    def planner_factory(observations=None) -> PlanGenerator:
        return PlanGenerator(
            cost_model=SmolCostModel(engine.performance_model, engine.config),
            accuracy=AccuracyEstimator(args.dataset,
                                       top_accuracy=VIDEO_TOP_ACCURACY,
                                       sensitivity=VIDEO_SENSITIVITY),
            catalog=store.catalog(item=args.dataset,
                                  fingerprint=scan_store_fingerprint()),
            observations=observations,
        )

    planner = planner_factory()
    candidates = planner.score(planner.generate(formats))
    initial = max(candidates, key=lambda e: (e.throughput, e.accuracy))
    controller = AdaptiveController(
        telemetry=telemetry,
        calibrator=OnlineCalibrator(),
        replanner=Replanner(planner_factory, formats=formats),
        current_plan=initial,
        detector=DriftDetector(),
        obs=obs,
    )
    controller.watch_store(store)

    root = obs.span("demo", dataset=args.dataset, workers=args.workers)
    with obs.activate(root.context):
        plans = engine.warm(spec)          # traced store writes
        result = engine.execute(spec, num_workers=args.workers,
                                seed=args.seed)
        session = SimulatedSession(plans.cheap.plan,
                                   engine.performance_model,
                                   config=engine.config)
        session.warmup()
        with SmolServer(session, policy=BatchPolicy.latency(),
                        obs=obs) as server:
            futures = [
                server.submit(InferenceRequest(image_id=f"demo-{i}"))
                for i in range(args.requests)
            ]
            for future in futures:
                future.result(timeout=30.0)
        decision = controller.step()
    root.finish()
    controller.close()

    if _query_signature(result) != expected:
        raise ServingError(
            "traced execution diverged from the untraced run -- tracing "
            "perturbed query results"
        )
    spans = obs.spans()
    tree = validate_span_tree(spans)
    print(f"query: {spec.describe()}")
    print(f"adapt: {decision.reason}")
    print(_span_summary_table(
        f"Traced demo on {args.dataset} ({tree.spans} spans)", spans))
    print("scores bit-identical to the untraced run: OK")
    if not tree.connected:
        raise ServingError("trace is not a single connected tree: "
                           + "; ".join(tree.problems))
    if not tree.covers(*DEMO_COVERAGE):
        missing = [prefix for prefix in DEMO_COVERAGE
                   if not tree.covers(prefix)]
        raise ServingError(
            f"trace does not cover every subsystem; missing {missing}"
        )
    print("single connected span tree covering "
          + ", ".join(p.rstrip(".") for p in DEMO_COVERAGE) + ": OK")
    _finish_trace(obs, args.trace_out)
    events = write_chrome_trace(spans, args.chrome_out)
    print(f"wrote {events} trace events to {args.chrome_out}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(obs.prometheus())
        print(f"wrote metrics to {args.metrics_out}")
    return 0


def _cmd_obs_analyze(args: argparse.Namespace) -> int:
    """Critical-path attribution of a span log (blame + slowest requests)."""
    from repro.obs import analyze_critical_path
    from repro.obs.analyze import CATEGORIES

    spans = read_spans_jsonl(args.trace)
    report = analyze_critical_path(spans, top_k=args.top_k)
    if not report.requests:
        print(f"{args.trace}: no request spans "
              "(serving.request / cluster.item) to attribute")
        return 0
    # The invariant the analysis stands on: every request's category
    # breakdown sums exactly to its end-to-end span duration.
    worst_residual = max(
        abs(sum(row.breakdown.values()) - row.duration_s)
        for row in report.requests
    )
    if worst_residual > 1e-9 + 1e-6 * report.total_s:
        raise ServingError(
            f"attribution does not sum to request durations "
            f"(worst residual {worst_residual:.3e}s)"
        )
    shares = report.blame_shares()
    blame = Table(
        f"Critical-path blame over {len(report.requests)} requests "
        f"({report.spans_attributed}/{report.spans_seen} spans attributed)",
        ["Category", "Total (ms)", "Share"],
    )
    for category in CATEGORIES:
        seconds = report.blame.get(category, 0.0)
        if seconds <= 0.0:
            continue
        blame.add_row(category, round(seconds * 1000.0, 3),
                      f"{shares[category]:.1%}")
    print(blame)
    slow = Table(
        f"Top {len(report.slowest)} slowest requests",
        ["Trace", "Span", "Name", "ms", "Dominant", "Spans"],
    )
    for row in report.slowest:
        slow.add_row(row.trace_id, row.span_id, row.name,
                     round(row.duration_s * 1000.0, 3), row.dominant,
                     row.spans)
    print(slow)
    print(f"attribution sums to request durations "
          f"(worst residual {worst_residual:.1e}s): OK")
    if args.json_out:
        import json

        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote {args.json_out}")
    return 0


def _cmd_obs_slo(args: argparse.Namespace) -> int:
    """Replay a span log against an SLO spec; report burn-rate windows."""
    from repro.obs import SloSpec, SloWindow, replay_spans

    spans = read_spans_jsonl(args.trace)
    spec = SloSpec(
        name=args.slo_name,
        latency_target_s=args.latency_target_ms / 1000.0,
        objective=args.objective,
        windows=(
            SloWindow(seconds=args.short_window_s,
                      max_burn_rate=args.short_burn),
            SloWindow(seconds=args.long_window_s,
                      max_burn_rate=args.long_burn),
        ),
        min_events=args.min_events,
    )
    statuses = replay_spans(spans, [spec])
    status = statuses[0]
    table = Table(
        f"SLO '{spec.name}' (p{spec.objective * 100:g} under "
        f"{args.latency_target_ms:g} ms) over {args.trace}",
        ["Window (s)", "Events", "Bad", "Burn rate", "Alarm at", "Burning"],
    )
    for burn in status.windows:
        table.add_row(burn.window_s, burn.events, burn.bad,
                      round(burn.burn_rate, 3), burn.max_burn_rate,
                      "YES" if burn.burning else "no")
    print(table)
    verdict = "BURNING" if status.burning else "healthy"
    print(f"verdict: {verdict} "
          f"({status.alerts_total} alert(s) would have fired)")
    return 1 if status.burning and args.fail_on_burn else 0


def _cmd_obs_postmortem(args: argparse.Namespace) -> int:
    """Inspect a flight-recorder bundle; reconstruct the failure trace."""
    from repro.obs import load_postmortem

    bundle = load_postmortem(args.bundle)
    manifest = bundle.manifest
    print(f"bundle: {bundle.path}")
    print(f"reason: {bundle.reason}  context: {manifest.get('context', {})}")
    print(f"spans: {manifest.get('spans', len(bundle.spans))} "
          f"({manifest.get('open_spans', 0)} still open)  "
          f"events: {manifest.get('events', len(bundle.events))}  "
          f"trips: {manifest.get('trips', 0)}")
    trace = bundle.trace_spans()
    if trace:
        tree = validate_span_tree(trace)
        trace_id = trace[0]["trace_id"]
        print(_span_summary_table(
            f"Failure trace {trace_id} ({tree.spans} spans)", trace))
        if tree.connected:
            print(f"trace {trace_id}: single connected span tree: OK")
        else:
            print(f"trace {trace_id}: not a single connected tree: "
                  + "; ".join(tree.problems))
        open_spans = [span for span in trace if span.get("open")]
        if open_spans:
            print("in flight at dump time: "
                  + ", ".join(f"{span['name']}#{span['span_id']}"
                              for span in open_spans))
    else:
        print("no spans in the bundle")
    errors = bundle.error_spans()
    if errors:
        print("error spans: "
              + ", ".join(f"{span['name']}#{span['span_id']}"
                          f"({span['attrs'].get('error')})"
                          for span in errors[:8]))
    tail = bundle.events[-args.events:] if args.events else []
    if tail:
        events = Table(f"Last {len(tail)} recorded events",
                       ["Kind", "Detail"])
        for event in tail:
            kind = event.get("kind", "?")
            detail = {key: value for key, value in event.items()
                      if key not in ("kind", "time")}
            events.add_row(kind, str(detail))
        print(events)
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.action == "demo":
        return _cmd_obs_demo(args)
    if args.action == "analyze":
        return _cmd_obs_analyze(args)
    if args.action == "slo":
        return _cmd_obs_slo(args)
    if args.action == "postmortem":
        return _cmd_obs_postmortem(args)
    spans = read_spans_jsonl(args.trace)
    if args.action == "export":
        events = write_chrome_trace(spans, args.out)
        print(f"wrote {events} trace events to {args.out}")
        return 0
    tree = validate_span_tree(spans)
    print(_span_summary_table(f"{args.trace} ({tree.spans} spans)", spans))
    if tree.connected:
        print("single connected span tree: OK")
    else:
        print("not a single connected tree: " + "; ".join(tree.problems))
    return 0


def _chaos_scenario(args: argparse.Namespace, gen):
    """The scenario a chaos subcommand targets: a file, or a seed."""
    if getattr(args, "scenario", None):
        import json
        from pathlib import Path

        from repro.chaos import Scenario

        data = json.loads(Path(args.scenario).read_text(encoding="utf-8"))
        if "scenario" in data:  # a dumped report (scenario.json bundle)
            data = data["scenario"]
        return Scenario.from_dict(data)
    if getattr(args, "seed", None) is None:
        raise ReproError("chaos needs a seed or --scenario <json>")
    return gen.generate(args.seed)


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Chaos harness: sweep seeds, replay one, or shrink a failure."""
    import time
    from pathlib import Path

    from repro.chaos import ChaosRunner, ScenarioGen
    from repro.chaos import shrink as chaos_shrink
    from repro.chaos.runner import dump_report

    runner = ChaosRunner(fuse_mode=getattr(args, "fuse", "seed"))
    gen = ScenarioGen()
    if args.action == "run":
        start = time.monotonic()
        failures = 0
        fired = 0
        for seed in range(args.start, args.start + args.seeds):
            report = runner.run(gen.generate(seed))
            fired += len(report.fired)
            if not report.ok:
                failures += 1
                print(report.describe())
                if args.postmortem_dir:
                    bundle = dump_report(
                        report, Path(args.postmortem_dir) / f"seed-{seed}")
                    print(f"  postmortem bundle: {bundle}")
        elapsed = time.monotonic() - start
        print(f"{args.seeds - failures}/{args.seeds} seeds ok "
              f"({fired} faults fired, {elapsed:.1f}s)")
        return 1 if failures else 0
    scenario = _chaos_scenario(args, gen)
    if args.action == "replay":
        report = runner.run(scenario)
        print(report.describe())
        for violation in report.violations:
            print(f"  violated {violation}")
        for firing in report.fired:
            print(f"  fired {firing['action']}@{firing['site']} "
                  f"(hit {firing['hit']})")
        if not report.ok and args.postmortem_dir:
            bundle = dump_report(
                report,
                Path(args.postmortem_dir) / f"seed-{scenario.seed}")
            print(f"postmortem bundle: {bundle}")
        return 0 if report.ok else 1
    # shrink: minimize the scenario while it keeps failing the same
    # invariant the original run failed first.
    first = runner.run(scenario)
    if first.ok:
        print(f"seed {scenario.seed}: no invariant violated; "
              "nothing to shrink")
        return 0
    target = first.violations[0].invariant
    print(f"seed {scenario.seed}: shrinking against {target}")

    def fails(candidate) -> bool:
        for _ in range(args.retries):
            report = runner.run(candidate)
            if any(v.invariant == target for v in report.violations):
                return True
        return False

    result = chaos_shrink(scenario, fails, max_attempts=args.max_attempts)
    before = scenario.dimensions()
    after = result.minimal.dimensions()
    table = Table(f"Shrunk seed {scenario.seed} "
                  f"({result.steps} reductions, {result.attempts} re-runs)",
                  ["Dimension", "Before", "After"])
    for name in before:
        table.add_row(name, str(before[name]), str(after[name]))
    print(table)
    final = runner.run(result.minimal)
    print(final.describe())
    if args.out:
        bundle = dump_report(final, args.out)
        print(f"minimal reproducer bundle: {bundle}")
    return 1


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    """Diff two BENCH_*.json scorecards; exit 1 on metric regressions."""
    import json

    from repro.obs import bench_diff

    def load(path: str) -> dict:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ServingError(f"cannot read bench file {path}: {exc}") \
                from exc

    overrides = {}
    for item in args.field_tolerance or ():
        name, _, value = item.partition("=")
        try:
            overrides[name] = float(value)
        except ValueError:
            raise ServingError(
                f"--field-tolerance wants NAME=FLOAT, got {item!r}"
            ) from None
    diff = bench_diff(load(args.baseline), load(args.candidate),
                      tolerance=args.tolerance,
                      field_tolerances=overrides)
    print(f"bench: {diff.bench}  ({args.baseline} -> {args.candidate}, "
          f"tolerance {args.tolerance:.0%})")
    for problem in diff.problems:
        print(f"problem: {problem}")
    shown = diff.deltas if args.verbose else diff.regressions
    for delta in shown:
        print(delta.describe())
    if diff.ok:
        print("no regressions")
        return 0
    print(f"{len(diff.regressions)} regression(s), "
          f"{len(diff.problems)} problem(s)")
    return 1


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Smol reproduction command-line interface"
    )
    parser.add_argument("--instance", default="g4dn.xlarge",
                        help="cloud instance to model (default: g4dn.xlarge)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    plan = subparsers.add_parser("plan", help="print the Pareto frontier")
    plan.add_argument("--dataset", default="imagenet")
    plan.add_argument("--accuracy-floor", type=float, default=None)
    plan.set_defaults(func=_cmd_plan)

    run = subparsers.add_parser("run", help="execute the selected plan")
    run.add_argument("--dataset", default="imagenet")
    run.add_argument("--accuracy-floor", type=float, default=None)
    run.add_argument("--images", type=int, default=4096)
    run.set_defaults(func=_cmd_run)

    measure = subparsers.add_parser("measure", help="Section 2 measurement study")
    measure.set_defaults(func=_cmd_measure)

    costs = subparsers.add_parser("costs", help="Section 7 / Table 8 cost analysis")
    costs.set_defaults(func=_cmd_costs)

    video = subparsers.add_parser("video", help="video aggregation comparison")
    video.add_argument("--dataset", default="taipei")
    video.add_argument("--error", type=float, default=0.03)
    video.add_argument("--seed", type=int, default=0)
    video.set_defaults(func=_cmd_video)

    def add_serving_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--dataset", default="imagenet")
        sub.add_argument("--accuracy-floor", type=float, default=None)
        sub.add_argument("--mode", choices=("simulated", "functional"),
                         default="simulated")
        sub.add_argument("--rate", type=float, default=2000.0,
                         help="offered requests/second")
        sub.add_argument("--pool-size", type=int, default=64,
                         help="distinct images in the traffic mix")
        sub.add_argument("--cache-capacity", type=int, default=2048)
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument("--trace-out", default=None,
                         help="trace the run and write the span log here as "
                              "JSONL (see 'obs summarize' / 'obs analyze')")

    serve_bench = subparsers.add_parser(
        "serve-bench", help="compare micro-batching policies on SmolServer"
    )
    add_serving_arguments(serve_bench)
    serve_bench.add_argument("--requests", type=int, default=2000,
                             help="approximate requests per policy")
    serve_bench.add_argument("--bench-json", default="BENCH_serving.json",
                             help="where to write the machine-readable "
                                  "scorecard")
    serve_bench.set_defaults(func=_cmd_serve_bench)

    loadtest = subparsers.add_parser(
        "loadtest", help="drive SmolServer with open-loop traffic"
    )
    add_serving_arguments(loadtest)
    loadtest.add_argument("--duration", type=float, default=2.0,
                          help="seconds of offered traffic")
    loadtest.add_argument("--pattern", choices=("poisson", "burst"),
                          default="poisson")
    loadtest.add_argument("--burst-size", type=int, default=8)
    loadtest.add_argument("--max-batch", type=int, default=32)
    loadtest.add_argument("--max-wait-ms", type=float, default=5.0)
    loadtest.add_argument("--queue-capacity", type=int, default=256)
    loadtest.add_argument("--deadline-ms", type=float, default=None)
    loadtest.add_argument("--shed", action="store_true",
                          help="reject instead of blocking when the queue fills")
    loadtest.add_argument("--bench-json", default="BENCH_serving.json",
                          help="where to write the machine-readable scorecard")
    loadtest.set_defaults(func=_cmd_loadtest)

    tenant = subparsers.add_parser(
        "tenant", help="multi-tenant fairness demo (weighted-fair classes)"
    )
    add_serving_arguments(tenant)
    tenant.add_argument("--requests", type=int, default=96,
                        help="requests offered per tenant")
    tenant.add_argument("--max-batch", type=int, default=8)
    tenant.add_argument("--slo-target-ms", type=float, default=1000.0,
                        help="per-tenant SLO latency target")
    # Real compute by default: the fairness ordering needs batches with
    # measurable service time, which the simulated session does not pay.
    tenant.set_defaults(func=_cmd_tenant, mode="functional")

    cluster_bench = subparsers.add_parser(
        "cluster-bench",
        help="sharded multi-worker scaling study (offline corpus + online "
             "traffic per worker count)",
    )
    add_serving_arguments(cluster_bench)
    cluster_bench.add_argument("--workers", type=int, nargs="+",
                               default=[1, 2, 4],
                               help="worker counts to sweep")
    cluster_bench.add_argument("--images", type=int, default=4096,
                               help="offline corpus size per sweep point")
    cluster_bench.add_argument("--num-classes", type=int, default=8,
                               help="label/prediction arity for the "
                                    "confusion matrix")
    cluster_bench.add_argument("--router",
                               choices=("round-robin", "consistent-hash"),
                               default="round-robin")
    cluster_bench.add_argument("--duration", type=float, default=0.25,
                               help="seconds of online traffic per sweep "
                                    "point")
    cluster_bench.add_argument("--pattern", choices=("poisson", "burst"),
                               default="poisson")
    cluster_bench.add_argument("--burst-size", type=int, default=8)
    cluster_bench.add_argument("--max-batch", type=int, default=32)
    cluster_bench.add_argument("--service-scale", type=float, default=0.0,
                               help="sleep modelled service time times this "
                                    "factor on each replica")
    cluster_bench.add_argument("--bench-json", default="BENCH_cluster.json",
                               help="where to write the machine-readable "
                                    "scorecard")
    cluster_bench.set_defaults(func=_cmd_cluster_bench)

    query = subparsers.add_parser(
        "query",
        help="run a declarative analytics query sharded over the cluster "
             "runtime (estimates must be bit-identical at every worker "
             "count)",
    )
    query.add_argument("--kind", choices=("aggregate", "limit", "cascade"),
                       default="aggregate")
    query.add_argument("--dataset", default="taipei",
                       help="video dataset (aggregate/limit) or corpus name "
                            "(cascade)")
    query.add_argument("--error", type=float, default=None,
                       help="absolute error bound (required for aggregate)")
    query.add_argument("--min-count", type=int, default=None,
                       help="per-frame object predicate (limit)")
    query.add_argument("--limit", type=int, default=None,
                       help="frames to find (limit)")
    query.add_argument("--num-classes", type=int, default=8,
                       help="label arity (cascade)")
    query.add_argument("--images", type=int, default=2048,
                       help="corpus size (cascade)")
    query.add_argument("--workers", type=int, nargs="+", default=[1, 4],
                       help="worker counts to sweep")
    query.add_argument("--frame-limit", type=int, default=12_000,
                       help="functional scan length bound")
    query.add_argument("--max-batch", type=int, default=256,
                       help="frames per dispatched micro-batch")
    query.add_argument("--specialized-accuracy", type=float, default=0.9)
    query.add_argument("--accuracy-floor", type=float, default=None)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--bench-json", default="BENCH_query.json",
                       help="where to write the machine-readable scorecard")
    query.add_argument("--store-root", default=None,
                       help="rendition/score store directory; when given, "
                            "the cheap pass reads/writes the store and "
                            "shards stream score chunks, bounding "
                            "per-worker memory by the store's chunk size "
                            "(default 2048 frames x 8 bytes) instead of "
                            "the full frame range")
    query.add_argument("--trace-out", default=None,
                       help="trace the sweep and write the span log here "
                            "as JSONL (see 'obs summarize' / 'obs export')")
    query.set_defaults(func=_cmd_query)

    store = subparsers.add_parser(
        "store",
        help="inspect, garbage-collect, or warm the persistent "
             "rendition & score store",
    )
    store.add_argument("action", choices=("stats", "gc", "warm"))
    store.add_argument("--root", default=".smol-store",
                       help="store directory (default: .smol-store)")
    store.add_argument("--dataset", default="taipei",
                       help="video dataset to warm")
    store.add_argument("--frames", type=int, default=12_000,
                       help="functional scan length to warm")
    store.add_argument("--error", type=float, default=0.05,
                       help="error bound of the planned warm query")
    store.add_argument("--specialized-accuracy", type=float, default=0.9)
    store.add_argument("--rendition-frames", type=int, default=64,
                       help="decoded rendition frames to materialize "
                            "(0 disables; enables cache-aware planning)")
    store.set_defaults(func=_cmd_store)

    adapt = subparsers.add_parser(
        "adapt",
        help="online cost-feedback replanning demo: frozen vs adaptive "
             "through the same mid-run decode slowdown",
    )
    adapt.add_argument("--scenario", choices=("serving", "scan"),
                       default="serving")
    adapt.add_argument("--dataset", default=None,
                       help="image dataset (serving; default imagenet) or "
                            "video dataset (scan; default taipei)")
    adapt.add_argument("--drift-factor", type=float, default=4.0,
                       help="decode slowdown injected mid-run")
    adapt.add_argument("--threshold", type=float, default=1.5,
                       help="drift detector deviation threshold (>1)")
    adapt.add_argument("--hysteresis", type=int, default=2,
                       help="consecutive drifting updates before a replan")
    adapt.add_argument("--min-improvement", type=float, default=0.1,
                       help="relative gain required to accept a swap")
    adapt.add_argument("--waves", type=int, default=6,
                       help="serving: request waves to run")
    adapt.add_argument("--wave-requests", type=int, default=256,
                       help="serving: requests per wave")
    adapt.add_argument("--drift-wave", type=int, default=2,
                       help="serving: wave at which decode drifts")
    adapt.add_argument("--materialize-format", default="161-jpeg-q95",
                       help="serving: rendition that becomes warm at the "
                            "drift wave ('' disables)")
    adapt.add_argument("--frames", type=int, default=3000,
                       help="scan: functional frames to stream")
    adapt.add_argument("--segments", type=int, default=6,
                       help="scan: stream segments (replan points)")
    adapt.add_argument("--drift-segment", type=int, default=2,
                       help="scan: segment at which decode drifts")
    adapt.add_argument("--no-materialize", action="store_true",
                       help="scan: do not warm the scanned rendition at "
                            "the drift segment")
    adapt.add_argument("--workers", dest="adapt_workers", type=int,
                       default=2, help="scan: shard replicas")
    adapt.add_argument("--max-batch", type=int, default=256,
                       help="scan: frames per dispatched micro-batch")
    adapt.add_argument("--seed", type=int, default=0)
    adapt.add_argument("--bench-json", default="BENCH_adapt.json",
                       help="where to write the machine-readable scorecard")
    adapt.set_defaults(func=_cmd_adapt)

    obs = subparsers.add_parser(
        "obs",
        help="observability tooling: traced end-to-end demo, span-log "
             "summaries, Chrome trace export, critical-path analysis, "
             "SLO replay, postmortem inspection",
    )
    obs.add_argument("action", choices=("demo", "summarize", "export",
                                        "analyze", "slo", "postmortem"))
    obs.add_argument("--trace", default="TRACE_obs.jsonl",
                     help="JSONL span log to summarize/export")
    obs.add_argument("--out", default="TRACE_obs_chrome.json",
                     help="export: Chrome trace_event output path")
    obs.add_argument("--dataset", default="taipei",
                     help="demo: video dataset to query")
    obs.add_argument("--error", type=float, default=0.05,
                     help="demo: error bound of the traced aggregate query")
    obs.add_argument("--frames", type=int, default=2400,
                     help="demo: functional scan length bound")
    obs.add_argument("--workers", type=int, default=2,
                     help="demo: shard replicas for the traced query")
    obs.add_argument("--requests", type=int, default=32,
                     help="demo: requests in the traced serving wave")
    obs.add_argument("--max-batch", type=int, default=256,
                     help="demo: frames per dispatched micro-batch")
    obs.add_argument("--specialized-accuracy", type=float, default=0.9)
    obs.add_argument("--store-root", default=None,
                     help="demo: store directory (default: a fresh temp "
                          "directory)")
    obs.add_argument("--seed", type=int, default=0)
    obs.add_argument("--trace-out", default="TRACE_obs.jsonl",
                     help="demo: JSONL span log output path")
    obs.add_argument("--chrome-out", default="TRACE_obs_chrome.json",
                     help="demo: Chrome trace_event output path")
    obs.add_argument("--metrics-out", default=None,
                     help="demo: Prometheus text metrics output path")
    obs.add_argument("--top-k", type=int, default=10,
                     help="analyze: slowest requests to report")
    obs.add_argument("--json-out", default=None,
                     help="analyze: also write the report as JSON here")
    obs.add_argument("--slo-name", default="serving-latency",
                     help="slo: objective name")
    obs.add_argument("--latency-target-ms", type=float, default=50.0,
                     help="slo: per-request latency target")
    obs.add_argument("--objective", type=float, default=0.99,
                     help="slo: promised good fraction (error budget is "
                          "1 - objective)")
    obs.add_argument("--short-window-s", type=float, default=60.0,
                     help="slo: short burn window")
    obs.add_argument("--short-burn", type=float, default=14.4,
                     help="slo: short-window burn-rate alarm threshold")
    obs.add_argument("--long-window-s", type=float, default=300.0,
                     help="slo: long burn window")
    obs.add_argument("--long-burn", type=float, default=6.0,
                     help="slo: long-window burn-rate alarm threshold")
    obs.add_argument("--min-events", type=int, default=10,
                     help="slo: samples required before alerting")
    obs.add_argument("--fail-on-burn", action="store_true",
                     help="slo: exit 1 when the objective is burning")
    obs.add_argument("--bundle", default="postmortem-0001",
                     help="postmortem: bundle directory to inspect")
    obs.add_argument("--events", type=int, default=10,
                     help="postmortem: recorded events to show")
    obs.set_defaults(func=_cmd_obs)

    chaos = subparsers.add_parser(
        "chaos",
        help="scenario fuzzing + fault injection: run a seed sweep, "
             "replay one seed, or shrink a failing seed to a minimal "
             "reproducer (exit 1 when an invariant breaks)",
    )
    chaos_actions = chaos.add_subparsers(dest="action", required=True)
    chaos_run = chaos_actions.add_parser(
        "run", help="sweep a fixed seed range through every invariant")
    chaos_run.add_argument("--seeds", type=int, default=200,
                           help="how many consecutive seeds to run")
    chaos_run.add_argument("--start", type=int, default=0,
                           help="first seed of the range")
    chaos_run.add_argument("--postmortem-dir", default=None,
                           help="dump a flight-recorder bundle per "
                                "failing seed under this directory")
    chaos_run.add_argument("--fuse", choices=("seed", "on", "off"),
                           default="seed",
                           help="fused-execution pass: per-seed draw "
                                "(default), forced on for every seed, or "
                                "suppressed entirely")
    chaos_replay = chaos_actions.add_parser(
        "replay", help="re-run one seed (or a dumped scenario.json) "
                       "deterministically")
    chaos_replay.add_argument("seed", type=int, nargs="?", default=None,
                              help="generator seed to replay")
    chaos_replay.add_argument("--scenario", default=None,
                              help="scenario JSON from a postmortem "
                                   "bundle (overrides the seed)")
    chaos_replay.add_argument("--postmortem-dir", default=None,
                              help="dump a bundle if the replay fails")
    chaos_replay.add_argument("--fuse", choices=("seed", "on", "off"),
                              default="seed",
                              help="fused-execution pass mode for the "
                                   "replay (match the failing sweep's)")
    chaos_shrink = chaos_actions.add_parser(
        "shrink", help="minimize a failing seed to the smallest scenario "
                       "that still violates the same invariant")
    chaos_shrink.add_argument("seed", type=int, nargs="?", default=None,
                              help="failing generator seed")
    chaos_shrink.add_argument("--scenario", default=None,
                              help="scenario JSON to shrink instead of a "
                                   "seed")
    chaos_shrink.add_argument("--retries", type=int, default=3,
                              help="runs per candidate before declaring "
                                   "it non-failing (races reproduce "
                                   "probabilistically)")
    chaos_shrink.add_argument("--max-attempts", type=int, default=200,
                              help="total candidate re-runs to budget")
    chaos_shrink.add_argument("--out", default=None,
                              help="write the minimal reproducer bundle "
                                   "here")
    chaos.set_defaults(func=_cmd_chaos)

    bench_diff = subparsers.add_parser(
        "bench-diff",
        help="compare two BENCH_*.json scorecards and flag metric "
             "regressions beyond per-field tolerances (exit 1 on "
             "regression)",
    )
    bench_diff.add_argument("baseline", help="baseline BENCH_*.json")
    bench_diff.add_argument("candidate", help="candidate BENCH_*.json")
    bench_diff.add_argument("--tolerance", type=float, default=0.1,
                            help="default relative tolerance (0.1 = 10%%)")
    bench_diff.add_argument("--field-tolerance", action="append",
                            metavar="NAME=FLOAT", default=None,
                            help="per-field tolerance override "
                                 "(repeatable)")
    bench_diff.add_argument("--verbose", action="store_true",
                            help="print every delta, not only regressions")
    bench_diff.set_defaults(func=_cmd_bench_diff)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.

    Library failures (unknown dataset, infeasible constraints, invalid
    serving parameters) print a one-line error and exit with status 2,
    matching argparse's own usage-error convention.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
