"""The naive baseline: standard ResNets on full-resolution data.

This baseline has no access to alternative input formats and no preprocessing
or runtime optimizations -- it is what a practitioner gets by exporting a
standard ResNet and running it behind an unoptimized data loader.  The paper
shows all depths of this baseline are preprocessing-bound, so further DNN-side
optimizations cannot improve its end-to-end throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codecs.formats import FULL_JPEG, InputFormatSpec
from repro.core.accuracy import AccuracyEstimator
from repro.core.plans import Plan, PlanEstimate
from repro.inference.perfmodel import EngineConfig, PerformanceModel
from repro.nn.zoo import resnet_profile


@dataclass
class NaiveResNetBaseline:
    """Standard ResNets (18/34/50) on the provided full-resolution format."""

    performance_model: PerformanceModel
    dataset_name: str = "imagenet"
    input_format: InputFormatSpec = FULL_JPEG
    depths: tuple[int, ...] = (18, 34, 50)
    optimized_runtime: bool = False

    def plans(self) -> list[Plan]:
        """One single-model plan per ResNet depth on full-resolution data."""
        return [
            Plan.single(resnet_profile(depth), self.input_format,
                        label=f"naive-resnet-{depth}")
            for depth in self.depths
        ]

    def evaluate(self) -> list[PlanEstimate]:
        """Throughput/accuracy estimates for each depth."""
        accuracy = AccuracyEstimator(self.dataset_name)
        config = EngineConfig(
            num_producers=self.performance_model.instance.vcpus,
            optimize_dag=self.optimized_runtime,
            reuse_buffers=self.optimized_runtime,
            pinned_memory=self.optimized_runtime,
        )
        estimates: list[PlanEstimate] = []
        for plan in self.plans():
            stage = self.performance_model.estimate(
                plan.primary_model, plan.input_format, config,
                offloaded_fraction=0.0,
            )
            throughput = stage.pipelined_upper_bound
            acc = accuracy.calibrated(plan.primary_model, plan.input_format,
                                      training="regular")
            estimates.append(PlanEstimate(
                plan=plan,
                throughput=throughput,
                accuracy=acc.accuracy,
                preprocessing_throughput=stage.preprocessing_throughput,
                dnn_throughput=stage.dnn_throughput,
            ))
        return estimates
