"""Tahoma-style baseline: specialized-NN cascades on a fixed input format.

Tahoma trains a family of specialized NNs and cascades each with the target
DNN; its cost model adds preprocessing and DNN time serially (Equation 3) and
it only ever considers the provided full-resolution JPEG input format.  The
baseline exposes the same (throughput, accuracy) estimate interface as the
Smol planner so Figure 4 can overlay the two Pareto frontiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analytics.classification import CascadeClassifier, CascadeEvaluation
from repro.codecs.formats import FULL_JPEG, InputFormatSpec
from repro.core.accuracy import AccuracyEstimator
from repro.errors import PlanError
from repro.inference.perfmodel import EngineConfig, PerformanceModel
from repro.nn.specialized import SpecializedNN, make_specialized_family
from repro.nn.zoo import ModelProfile, get_model_profile, resnet_profile
from repro.utils.pareto import pareto_frontier, sort_frontier


@dataclass
class TahomaBaseline:
    """Cascades of specialized NNs with a ResNet-50 target on full-res JPEG."""

    performance_model: PerformanceModel
    dataset_name: str = "imagenet"
    input_format: InputFormatSpec = FULL_JPEG
    num_specialized: int = 8
    target_model: ModelProfile = field(
        default_factory=lambda: get_model_profile("resnet-50")
    )

    def specialized_family(self) -> list[SpecializedNN]:
        """The representative family of specialized NN architectures."""
        return make_specialized_family(self.num_specialized)

    def _proxy_profile(self, specialized: SpecializedNN) -> ModelProfile:
        """Express a specialized NN as a ModelProfile for the cost models."""
        gpu = self.performance_model.instance.gpu
        return ModelProfile(
            name=specialized.name,
            gflops=specialized.gflops_224,
            t4_throughput=specialized.throughput_on(gpu),
            imagenet_top1=None,
            input_size=224,
        )

    def evaluate(self) -> list[CascadeEvaluation]:
        """Evaluate every (specialized NN, pass-through rate) cascade."""
        accuracy_estimator = AccuracyEstimator(self.dataset_name)
        target_accuracy = accuracy_estimator.calibrated(
            self.target_model, self.input_format, training="regular"
        ).accuracy
        config = EngineConfig(num_producers=self.performance_model.instance.vcpus,
                              optimize_dag=False)
        classifier = CascadeClassifier(self.performance_model, config)
        proxies = []
        for specialized in self.specialized_family():
            proxy_accuracy = accuracy_estimator.calibrated(
                resnet_profile(18), self.input_format, training="regular",
                accuracy_factor=specialized.accuracy_factor,
            ).accuracy
            proxies.append((self._proxy_profile(specialized), proxy_accuracy))
        return classifier.sweep(
            proxies=proxies,
            target=self.target_model,
            target_accuracy=target_accuracy,
            fmt=self.input_format,
            num_classes=2,
        )

    def pareto_frontier(self) -> list[CascadeEvaluation]:
        """Pareto-optimal cascade configurations in (throughput, accuracy)."""
        evaluations = self.evaluate()
        if not evaluations:
            raise PlanError("no cascade configurations were evaluated")
        frontier = pareto_frontier(evaluations, lambda e: e.objectives())
        return sort_frontier(frontier, lambda e: e.objectives(), axis=0)

    def estimate_throughput_serial_sum(self, evaluation: CascadeEvaluation) -> float:
        """Tahoma's own (serial-sum) throughput estimate for a cascade."""
        return 1.0 / (
            1.0 / evaluation.preprocessing_throughput
            + 1.0 / evaluation.dnn_throughput
        )
