"""BlazeIt-style baseline for aggregation queries.

BlazeIt uses a single tiny specialized NN, a fixed full-resolution video
rendition, and an unoptimized runtime engine; its cost model ignores
preprocessing.  Smol's video experiments (Figure 9) replicate BlazeIt's query
processing but swap in a more accurate specialized NN, low-resolution video,
and the optimized runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.aggregation import (
    AggregationEngine,
    AggregationQuery,
    AggregationResult,
)
from repro.codecs.formats import VIDEO_1080P_H264, VIDEO_480P_H264
from repro.datasets.video import VideoDataset
from repro.inference.perfmodel import EngineConfig, PerformanceModel
from repro.nn.specialized import SpecializedNN, tiny_resnet
from repro.nn.zoo import ModelProfile


def _profile_for(specialized: SpecializedNN,
                 performance_model: PerformanceModel) -> ModelProfile:
    """Wrap a specialized NN descriptor as a ModelProfile."""
    gpu = performance_model.instance.gpu
    return ModelProfile(
        name=specialized.name,
        gflops=specialized.gflops_224,
        t4_throughput=specialized.throughput_on(gpu),
        imagenet_top1=None,
        input_size=224,
    )


@dataclass
class BlazeItBaseline:
    """BlazeIt configuration: tiny ResNet, full-resolution video, plain engine."""

    performance_model: PerformanceModel
    specialized_accuracy: float = 0.80

    def run(self, dataset: VideoDataset, error_bound: float,
            seed: int = 0) -> AggregationResult:
        """Execute an aggregation query the way BlazeIt would."""
        config = EngineConfig(
            num_producers=self.performance_model.instance.vcpus,
            optimize_dag=False,
            reuse_buffers=False,
            pinned_memory=False,
        )
        engine = AggregationEngine(self.performance_model, config,
                                   use_control_variate=True)
        specialized = _profile_for(tiny_resnet(), self.performance_model)
        query = AggregationQuery(dataset=dataset, error_bound=error_bound)
        return engine.execute(
            query, specialized_model=specialized, fmt=VIDEO_1080P_H264,
            specialized_accuracy=self.specialized_accuracy, seed=seed,
        )


@dataclass
class SmolVideoRunner:
    """Smol's configuration for the same queries: better specialized NN,
    low-resolution rendition, optimized engine."""

    performance_model: PerformanceModel
    specialized_accuracy: float = 0.93
    use_low_resolution: bool = True

    def run(self, dataset: VideoDataset, error_bound: float,
            seed: int = 0) -> AggregationResult:
        """Execute an aggregation query with Smol's optimizations."""
        config = EngineConfig(num_producers=self.performance_model.instance.vcpus)
        engine = AggregationEngine(self.performance_model, config,
                                   use_control_variate=True)
        # Smol expands the specialized-NN search space: a ResNet-18-class
        # model is affordable because preprocessing, not the DNN, is the
        # bottleneck for the cheap pass.
        specialized = SpecializedNN(
            name="specialized-resnet18", width=64, depth=8,
            gflops_224=1.82, accuracy_factor=0.95,
        )
        fmt = VIDEO_480P_H264 if self.use_low_resolution else VIDEO_1080P_H264
        query = AggregationQuery(dataset=dataset, error_bound=error_bound)
        return engine.execute(
            query, specialized_model=_profile_for(specialized, self.performance_model),
            fmt=fmt, specialized_accuracy=self.specialized_accuracy, seed=seed,
        )
