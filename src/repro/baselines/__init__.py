"""Baseline systems Smol is compared against.

* :mod:`repro.baselines.naive` -- standard ResNets on full-resolution data
  (the "naive" baseline of Figure 4).
* :mod:`repro.baselines.tahoma` -- Tahoma-style cascades with a fixed input
  format and a fixed target model.
* :mod:`repro.baselines.blazeit` -- BlazeIt-style aggregation with a single
  tiny specialized NN and full-resolution video.
* :mod:`repro.baselines.dali` -- a DALI-like preprocessing library model
  (training-oriented, no buffer reuse into the inference engine).
* :mod:`repro.baselines.pytorch_loader` -- a PyTorch-DataLoader-like CPU
  preprocessing baseline with an unoptimized execution backend.
"""

from repro.baselines.naive import NaiveResNetBaseline
from repro.baselines.tahoma import TahomaBaseline
from repro.baselines.blazeit import BlazeItBaseline
from repro.baselines.dali import DaliLikeLoader
from repro.baselines.pytorch_loader import PyTorchLikeLoader

__all__ = [
    "NaiveResNetBaseline",
    "TahomaBaseline",
    "BlazeItBaseline",
    "DaliLikeLoader",
    "PyTorchLikeLoader",
]
