"""A DALI-like preprocessing library model (Appendix A.1, Figure 10).

NVIDIA DALI accelerates preprocessing for DNN *training*: it splits work
between CPU and GPU with a fixed pipeline, but (as officially supported at the
time of the paper) it cannot reuse buffers into an inference engine, does not
do ROI decoding for inference, and is not hardware-aware about placement.
The model below captures those behavioural differences as throughput factors
relative to Smol's cost model so the Figure 10 comparison can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codecs.formats import InputFormatSpec
from repro.inference.perfmodel import EngineConfig, PerformanceModel
from repro.nn.zoo import ModelProfile

# DALI allocates fresh buffers per batch (required for training integration).
DALI_ALLOCATION_PENALTY = 1.30
# Fixed CPU/GPU pipeline split: a fraction of post-decode work always runs on
# the GPU regardless of core count.
DALI_FIXED_GPU_FRACTION = 0.6
# Extra copies when integrating with an inference backend (no official
# TensorRT integration).
DALI_INTEGRATION_COPY_PENALTY = 1.18
# GPU-side contention when many CPU workers feed the fixed GPU pipeline.
DALI_GPU_CONTENTION_PER_8VCPU = 0.06


@dataclass
class DaliLikeLoader:
    """Analytic model of a DALI-like loader on a given instance."""

    performance_model: PerformanceModel

    def cpu_preprocessing_throughput(self, fmt: InputFormatSpec,
                                     vcpus: int) -> float:
        """CPU-only preprocessing throughput (Figure 10a)."""
        config = EngineConfig(num_producers=vcpus, optimize_dag=False)
        base = self.performance_model.preprocessing_model.throughput(
            fmt, config, cpu_op_fraction=1.0
        )
        return base / DALI_ALLOCATION_PENALTY

    def optimized_preprocessing_throughput(self, fmt: InputFormatSpec,
                                           vcpus: int) -> float:
        """Split CPU/GPU preprocessing throughput (Figure 10b).

        The fixed pipeline gives DALI an edge at very low core counts (the
        GPU share does not shrink), but contention on the GPU limits scaling
        at high core counts.
        """
        config = EngineConfig(num_producers=vcpus, optimize_dag=False)
        cpu_side = self.performance_model.preprocessing_model.throughput(
            fmt, config, cpu_op_fraction=1.0 - DALI_FIXED_GPU_FRACTION
        ) / DALI_ALLOCATION_PENALTY
        contention = 1.0 + DALI_GPU_CONTENTION_PER_8VCPU * max(0, vcpus - 8) / 8
        return cpu_side / contention

    def end_to_end_throughput(self, model: ModelProfile, fmt: InputFormatSpec,
                              vcpus: int) -> float:
        """Pipelined end-to-end throughput with an inference backend (Figure 10c)."""
        config = EngineConfig(num_producers=vcpus)
        preproc = self.optimized_preprocessing_throughput(fmt, vcpus)
        dnn = self.performance_model.dnn_model.throughput(model, config)
        return min(preproc, dnn) / DALI_INTEGRATION_COPY_PENALTY
