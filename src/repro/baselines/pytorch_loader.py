"""A PyTorch-DataLoader-like baseline (Appendix A.1, Figure 10).

The stock PyTorch path uses multiprocess CPU workers for preprocessing (with
per-batch tensor allocation and inter-process copies) and executes the model
without an optimized inference compiler.  Its preprocessing throughput scales
with cores but with higher per-image overhead than a tuned C++ loop, and it
loses NUMA locality at high core counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codecs.formats import InputFormatSpec
from repro.inference.perfmodel import EngineConfig, PerformanceModel
from repro.nn.zoo import ModelProfile

# Python-level per-image overhead and worker-to-main-process copies.
PYTORCH_LOADER_PENALTY = 1.8
# Loss of efficiency past 16 workers from NUMA-unaware placement.
PYTORCH_NUMA_PENALTY_PER_16VCPU = 0.35
# PyTorch eager execution backend efficiency comes from the backend model.
PYTORCH_BACKEND = "pytorch"


@dataclass
class PyTorchLikeLoader:
    """Analytic model of the stock PyTorch preprocessing + eager execution."""

    performance_model: PerformanceModel

    def cpu_preprocessing_throughput(self, fmt: InputFormatSpec,
                                     vcpus: int) -> float:
        """CPU preprocessing throughput of the DataLoader (Figure 10a)."""
        config = EngineConfig(num_producers=vcpus, optimize_dag=False)
        base = self.performance_model.preprocessing_model.throughput(
            fmt, config, cpu_op_fraction=1.0
        )
        numa_penalty = 1.0 + PYTORCH_NUMA_PENALTY_PER_16VCPU * max(
            0, vcpus - 16
        ) / 16
        return base / (PYTORCH_LOADER_PENALTY * numa_penalty)

    def end_to_end_throughput(self, model: ModelProfile, fmt: InputFormatSpec,
                              vcpus: int) -> float:
        """End-to-end throughput with eager-mode execution (Figure 10c)."""
        from repro.inference.backends import get_backend

        config = EngineConfig(num_producers=vcpus)
        preproc = self.cpu_preprocessing_throughput(fmt, vcpus)
        backend = get_backend(PYTORCH_BACKEND)
        dnn = model.throughput_on(
            self.performance_model.instance.gpu,
            backend_efficiency=backend.efficiency,
        )
        # Eager execution does not overlap preprocessing with execution as
        # effectively; model it as partially serialized.
        pipelined = min(preproc, dnn)
        serial = 1.0 / (1.0 / preproc + 1.0 / dnn)
        return 0.5 * pipelined + 0.5 * serial

    def optimized_preprocessing_throughput(self, fmt: InputFormatSpec,
                                           vcpus: int) -> float:
        """PyTorch has no GPU preprocessing path; same as the CPU number."""
        return self.cpu_preprocessing_throughput(fmt, vcpus)
