"""Device catalog: GPU accelerators and CPUs.

The GPU specs are calibrated to the ResNet-50 throughputs the paper measures
(Table 5) and expose an *effective compute rate* used by the model zoo to
scale throughput across DNN architectures.  CPU specs capture per-core decode
and image-processing rates plus hyperthread scaling, calibrated to the
preprocessing throughputs in Sections 2 and 5.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError
from repro.hardware import calibration as cal

# ResNet-50 at 224x224 requires roughly 4.1 GFLOPs per image (He et al. 2016).
RESNET50_GFLOPS = 4.1


@dataclass(frozen=True)
class GpuSpec:
    """An accelerator model.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"T4"``.
    release_year:
        Year of release; used for the hardware-trend table (Table 5).
    resnet50_throughput:
        Measured ResNet-50 images/second at batch 64 with an optimized
        compiler.  This is the calibration anchor.
    power_watts:
        Board power under inference load.
    inference_optimized:
        True for accelerators marketed for inference (T4, RTX).
    hourly_price_usd:
        Estimated on-demand hourly price of the accelerator portion of a
        cloud instance (Section 7's linear-interpolation estimate for the T4).
    """

    name: str
    release_year: int
    resnet50_throughput: float
    power_watts: float
    inference_optimized: bool
    hourly_price_usd: float

    @property
    def effective_tflops(self) -> float:
        """Effective sustained TFLOPs implied by the ResNet-50 anchor."""
        return self.resnet50_throughput * RESNET50_GFLOPS / 1000.0

    def throughput_for_gflops(self, gflops_per_image: float,
                              utilization: float = 1.0) -> float:
        """Estimate images/second for a DNN costing ``gflops_per_image``.

        The scaling is linear in FLOPs relative to the ResNet-50 anchor with
        an optional utilization discount for models that use the hardware
        less efficiently (e.g. very small networks dominated by kernel-launch
        overheads).
        """
        if gflops_per_image <= 0:
            raise HardwareError("gflops_per_image must be positive")
        if not 0 < utilization <= 1.0:
            raise HardwareError("utilization must be in (0, 1]")
        return (self.effective_tflops * 1000.0 / gflops_per_image) * utilization


@dataclass(frozen=True)
class CpuSpec:
    """A host CPU model (vCPU = hyperthread, as on AWS).

    Attributes
    ----------
    name:
        CPU model name.
    vcpus:
        Number of vCPUs (hyperthreads) exposed to the instance.
    watts_per_vcpu:
        Power attributed to a single vCPU under load.
    hourly_price_per_vcpu:
        Estimated hourly price of one vCPU (Section 7's regression).
    scaling_exponent:
        Exponent of the sub-linear throughput scaling with vCPU count:
        throughput(n) = per_vcpu_rate * n ** scaling_exponent.  Hyperthreads
        share physical cores, so compute-bound preprocessing scales
        sub-linearly (the paper notes this in Section 8.1).
    """

    name: str
    vcpus: int
    watts_per_vcpu: float = cal.CPU_WATTS_PER_VCPU
    hourly_price_per_vcpu: float = cal.VCPU_HOURLY_PRICE_USD
    scaling_exponent: float = cal.VCPU_SCALING_EXPONENT

    def __post_init__(self) -> None:
        if self.vcpus <= 0:
            raise HardwareError(f"vcpus must be positive, got {self.vcpus}")

    def effective_parallelism(self, vcpus: int | None = None) -> float:
        """Effective parallel speedup of ``vcpus`` hyperthreads over one."""
        n = self.vcpus if vcpus is None else vcpus
        if n <= 0:
            raise HardwareError("vcpus must be positive")
        return float(n) ** self.scaling_exponent

    @property
    def power_watts(self) -> float:
        """Total CPU power attributable to this instance's vCPUs."""
        return self.vcpus * self.watts_per_vcpu

    @property
    def hourly_price_usd(self) -> float:
        """Total hourly price attributable to this instance's vCPUs."""
        return self.vcpus * self.hourly_price_per_vcpu


def _build_gpu_catalog() -> dict[str, GpuSpec]:
    power = {"K80": 300.0, "P100": 250.0, "T4": 70.0, "V100": 300.0, "RTX": 280.0}
    inference = {"K80": False, "P100": False, "T4": True, "V100": False, "RTX": True}
    # Only the T4's price is estimated in the paper; scale others by relative
    # throughput for the what-if cost analyses.
    t4_price = cal.T4_HOURLY_PRICE_USD
    t4_tp = cal.RESNET50_THROUGHPUT_BY_GPU["T4"]
    catalog = {}
    for name, throughput in cal.RESNET50_THROUGHPUT_BY_GPU.items():
        catalog[name] = GpuSpec(
            name=name,
            release_year=cal.GPU_RELEASE_YEAR[name],
            resnet50_throughput=throughput,
            power_watts=power[name],
            inference_optimized=inference[name],
            hourly_price_usd=t4_price if name == "T4" else t4_price * throughput / t4_tp,
        )
    return catalog


GPU_CATALOG: dict[str, GpuSpec] = _build_gpu_catalog()

CPU_CATALOG: dict[str, CpuSpec] = {
    "xeon-8259cl-4": CpuSpec(name="Intel Xeon Platinum 8259CL", vcpus=4),
    "xeon-8259cl-8": CpuSpec(name="Intel Xeon Platinum 8259CL", vcpus=8),
    "xeon-8259cl-16": CpuSpec(name="Intel Xeon Platinum 8259CL", vcpus=16),
    "xeon-8259cl-32": CpuSpec(name="Intel Xeon Platinum 8259CL", vcpus=32),
    "xeon-8259cl-64": CpuSpec(name="Intel Xeon Platinum 8259CL", vcpus=64),
}


def get_gpu(name: str) -> GpuSpec:
    """Look up a GPU by name (case-insensitive)."""
    key = name.upper()
    if key not in GPU_CATALOG:
        raise HardwareError(
            f"unknown GPU {name!r}; known GPUs: {sorted(GPU_CATALOG)}"
        )
    return GPU_CATALOG[key]


def list_gpus() -> list[GpuSpec]:
    """Return all known GPUs ordered by release year then throughput."""
    return sorted(
        GPU_CATALOG.values(),
        key=lambda g: (g.release_year, g.resnet50_throughput),
    )


def get_cpu(vcpus: int) -> CpuSpec:
    """Return the Xeon 8259CL CPU spec with the requested vCPU count."""
    key = f"xeon-8259cl-{vcpus}"
    if key in CPU_CATALOG:
        return CPU_CATALOG[key]
    if vcpus <= 0:
        raise HardwareError(f"vcpus must be positive, got {vcpus}")
    return CpuSpec(name="Intel Xeon Platinum 8259CL", vcpus=vcpus)
