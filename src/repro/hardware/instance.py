"""Cloud instance models and pricing.

The paper evaluates on the AWS ``g4dn`` family: one NVIDIA T4 plus a variable
number of vCPUs.  Section 7 estimates the per-vCPU price with a linear
regression over the family's on-demand prices, attributing a fixed price to
the T4.  This module reproduces both the instance catalog and that regression.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HardwareError
from repro.hardware.devices import CpuSpec, GpuSpec, get_cpu, get_gpu

# On-demand hourly prices (USD) for the g4dn family (us-east-1, 2020), used
# for the Section 7 per-core price regression.
G4DN_HOURLY_PRICES: dict[str, float] = {
    "g4dn.xlarge": 0.526,
    "g4dn.2xlarge": 0.752,
    "g4dn.4xlarge": 1.204,
    "g4dn.8xlarge": 2.176,
    "g4dn.16xlarge": 4.352,
}
G4DN_VCPUS: dict[str, int] = {
    "g4dn.xlarge": 4,
    "g4dn.2xlarge": 8,
    "g4dn.4xlarge": 16,
    "g4dn.8xlarge": 32,
    "g4dn.16xlarge": 64,
}


@dataclass(frozen=True)
class CloudInstance:
    """A cloud VM with one accelerator and a number of vCPUs."""

    name: str
    gpu: GpuSpec
    cpu: CpuSpec
    hourly_price_usd: float
    memory_gb: float = 16.0

    @property
    def vcpus(self) -> int:
        """Number of vCPUs on the instance."""
        return self.cpu.vcpus

    @property
    def gpu_price_fraction(self) -> float:
        """Fraction of the instance price attributable to the accelerator."""
        return self.gpu.hourly_price_usd / self.hourly_price_usd

    def price_per_million_images(self, throughput_im_s: float) -> float:
        """Cost in US cents to process one million images at ``throughput_im_s``."""
        if throughput_im_s <= 0:
            raise HardwareError("throughput must be positive")
        hours = 1e6 / throughput_im_s / 3600.0
        return hours * self.hourly_price_usd * 100.0

    def with_vcpus(self, vcpus: int) -> "CloudInstance":
        """Return a hypothetical instance with the same GPU but ``vcpus`` cores.

        Priced with the Section 7 regression: fixed T4 price plus per-core
        price times the core count.
        """
        slope, intercept = estimate_core_price()
        price = intercept + slope * vcpus
        return CloudInstance(
            name=f"g4dn-custom-{vcpus}vcpu",
            gpu=self.gpu,
            cpu=get_cpu(vcpus),
            hourly_price_usd=price,
            memory_gb=self.memory_gb,
        )


def estimate_core_price() -> tuple[float, float]:
    """Fit price = intercept + slope * vcpus over the g4dn family.

    Returns (slope, intercept): the per-vCPU hourly price and the fixed price
    attributed to the T4 plus base platform.  The paper reports roughly
    $0.0639 per vCPU and $0.218 for the T4 with an R^2 of 0.999.
    """
    names = sorted(G4DN_HOURLY_PRICES)
    vcpus = np.array([G4DN_VCPUS[n] for n in names], dtype=float)
    prices = np.array([G4DN_HOURLY_PRICES[n] for n in names], dtype=float)
    slope, intercept = np.polyfit(vcpus, prices, deg=1)
    return float(slope), float(intercept)


def _build_instances() -> dict[str, CloudInstance]:
    instances = {}
    for name, price in G4DN_HOURLY_PRICES.items():
        instances[name] = CloudInstance(
            name=name,
            gpu=get_gpu("T4"),
            cpu=get_cpu(G4DN_VCPUS[name]),
            hourly_price_usd=price,
            memory_gb=16.0 * G4DN_VCPUS[name] / 4,
        )
    # Training-optimized comparison point mentioned in Section 8.1.
    instances["p3.2xlarge"] = CloudInstance(
        name="p3.2xlarge",
        gpu=get_gpu("V100"),
        cpu=get_cpu(8),
        hourly_price_usd=3.06,
        memory_gb=61.0,
    )
    return instances


INSTANCE_CATALOG: dict[str, CloudInstance] = _build_instances()


def get_instance(name: str) -> CloudInstance:
    """Look up a cloud instance by name."""
    if name not in INSTANCE_CATALOG:
        raise HardwareError(
            f"unknown instance {name!r}; known: {sorted(INSTANCE_CATALOG)}"
        )
    return INSTANCE_CATALOG[name]


def list_instances() -> list[CloudInstance]:
    """Return all known instances ordered by vCPU count."""
    return sorted(INSTANCE_CATALOG.values(), key=lambda i: i.vcpus)
