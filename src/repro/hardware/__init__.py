"""Hardware substrate: accelerators, CPUs, cloud instances, power, and pricing.

The paper benchmarks on the AWS ``g4dn.xlarge`` instance (one NVIDIA T4 GPU and
4 vCPU cores).  Since no GPU is available in this environment, this package
provides calibrated analytic models of the devices the paper measures.  The
calibration anchors (ResNet-50 throughput per GPU generation, vCPU pricing,
power draws) come directly from the paper's Tables 1, 2 and 5 and Section 7.
"""

from repro.hardware.devices import (
    GpuSpec,
    CpuSpec,
    get_gpu,
    get_cpu,
    list_gpus,
    GPU_CATALOG,
)
from repro.hardware.instance import (
    CloudInstance,
    get_instance,
    list_instances,
    estimate_core_price,
)
from repro.hardware.power import PowerModel, PowerBreakdown
from repro.hardware.clock import SimClock

__all__ = [
    "GpuSpec",
    "CpuSpec",
    "get_gpu",
    "get_cpu",
    "list_gpus",
    "GPU_CATALOG",
    "CloudInstance",
    "get_instance",
    "list_instances",
    "estimate_core_price",
    "PowerModel",
    "PowerBreakdown",
    "SimClock",
]
