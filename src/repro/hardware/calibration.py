"""Calibration anchors taken from the paper.

Every constant in this module is a number reported in Kang et al. (VLDB 2020);
the analytic performance models elsewhere in :mod:`repro.hardware`,
:mod:`repro.inference`, and :mod:`repro.nn.zoo` are fit to these anchors so
that the reproduced tables and figures have the same shape as the paper's.

Keeping them in one module makes it easy to audit which results are calibrated
(absolute levels) versus derived (relative orderings and crossovers).
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Table 5: ResNet-50 throughput (images/second) by GPU generation, batch 64,
# TensorRT-style optimized execution.
# ---------------------------------------------------------------------------
RESNET50_THROUGHPUT_BY_GPU: dict[str, float] = {
    "K80": 159.0,
    "P100": 1955.0,
    "T4": 4513.0,
    "V100": 7151.0,
    "RTX": 15008.0,
}

GPU_RELEASE_YEAR: dict[str, int] = {
    "K80": 2014,
    "P100": 2016,
    "T4": 2019,
    "V100": 2017,
    "RTX": 2019,
}

# ---------------------------------------------------------------------------
# Table 1: ResNet-50 throughput on the T4 under three execution environments.
# TensorRT is the reference (efficiency 1.0); Keras and PyTorch are modelled
# as fixed efficiency fractions of the optimized compiler.
# ---------------------------------------------------------------------------
RESNET50_T4_BY_BACKEND: dict[str, float] = {
    "keras": 243.0,
    "pytorch": 424.0,
    "tensorrt": 4513.0,
}
BACKEND_OPTIMAL_BATCH: dict[str, int] = {"keras": 64, "pytorch": 256, "tensorrt": 64}

# ---------------------------------------------------------------------------
# Table 2: ResNet depth vs throughput (T4, TensorRT) and ImageNet top-1.
# ---------------------------------------------------------------------------
RESNET_T4_THROUGHPUT: dict[int, float] = {18: 12592.0, 34: 6860.0, 50: 4513.0}
RESNET_IMAGENET_TOP1: dict[int, float] = {18: 0.682, 34: 0.719, 50: 0.7434}

# Section 5.2 quotes slightly different accuracies for the motivating example
# (full-resolution, augmented-training table); Table 7 is authoritative for
# the training-procedure experiment.
RESNET_IMAGENET_TOP1_TABLE7: dict[int, float] = {34: 0.7272, 50: 0.7516}

# ---------------------------------------------------------------------------
# Section 2 / Figure 1: per-image preprocessing stage latencies (microseconds,
# single producer thread) and DNN execution latencies on the T4 at batch 64.
# ---------------------------------------------------------------------------
FIG1_STAGE_US: dict[str, float] = {
    "decode": 1668.0,
    "resize": 201.0,
    "normalize": 125.0,
    "split": 30.0,
}
FIG1_DNN_EXEC_US: dict[str, float] = {"resnet-50": 222.0, "resnet-18": 79.0}
FIG1_PREPROC_SLOWDOWN_RN50 = 7.1
FIG1_PREPROC_SLOWDOWN_RN18 = 22.9

# MobileNet-SSD (MLPerf inference) anchor quoted in Section 2.
MOBILENET_SSD_T4_THROUGHPUT = 7431.0
MOBILENET_SSD_PREPROC_THROUGHPUT = 397.0

# ---------------------------------------------------------------------------
# Section 5.2 / 8.2: preprocessing throughput by input format on 4 vCPUs.
# ---------------------------------------------------------------------------
PREPROC_THROUGHPUT_4VCPU: dict[str, float] = {
    "full-jpeg": 527.0,
    "161-png": 1995.0,
    "161-jpeg-q95": 3400.0,
    "161-jpeg-q75": 5900.0,
}

# Section 8.2: pipelining verification numbers for 161 JPEG q75 + ResNet-50.
SEC82_PREPROC = 5900.0
SEC82_DNN_EXEC = 4200.0
SEC82_END_TO_END = 3600.0
SEC82_PIPELINE_OVERHEAD = 0.16  # observed 16% overhead vs min() prediction

# Average absolute cost-model errors reported in Section 8.2.
SEC82_AVG_ERROR = {"smol": 0.059, "exec_only": 2.17, "sum": 0.23}

# ---------------------------------------------------------------------------
# Table 3: cost model validation configurations (im/s).
# ---------------------------------------------------------------------------
TABLE3_CONFIGS: dict[str, dict[str, float]] = {
    "balanced": {"preproc": 4001.0, "dnn": 4999.0, "pipelined": 4056.0},
    "preproc-bound": {"preproc": 534.0, "dnn": 4999.0, "pipelined": 557.0},
    "dnn-bound": {"preproc": 5876.0, "dnn": 1844.0, "pipelined": 1720.0},
}

# ---------------------------------------------------------------------------
# Section 7: instance pricing and power.
# ---------------------------------------------------------------------------
T4_HOURLY_PRICE_USD = 0.218
VCPU_HOURLY_PRICE_USD = 0.0639
CPU_WATTS_PER_VCPU = 4.375          # Xeon Platinum 8259CL: 210 W / 48 vCPUs
T4_POWER_WATTS = 70.0
PREPROC_POWER_WATTS_RN50 = 158.0    # power needed to keep up with RN-50 on T4
PREPROC_POWER_WATTS_RN18 = 444.0
PREPROC_COST_PER_HOUR_RN50 = 2.37   # USD of vCPUs needed to match RN-50
PREPROC_COST_PER_HOUR_RN18 = 6.501

# ---------------------------------------------------------------------------
# Table 8: throughput and cost to reach 75% ImageNet accuracy, by vCPU count,
# with and without Smol's optimizations.
# ---------------------------------------------------------------------------
TABLE8: dict[tuple[str, int], dict[str, float]] = {
    ("opt", 4): {"throughput": 1927.0, "cents_per_million": 7.58},
    ("no-opt", 4): {"throughput": 377.0, "cents_per_million": 38.75},
    ("opt", 8): {"throughput": 3756.0, "cents_per_million": 5.56},
    ("no-opt", 8): {"throughput": 634.0, "cents_per_million": 32.92},
    ("opt", 16): {"throughput": 4548.0, "cents_per_million": 7.35},
    ("no-opt", 16): {"throughput": 1165.0, "cents_per_million": 28.68},
}

# ---------------------------------------------------------------------------
# Table 7: ImageNet accuracy by input format and training procedure.
# Keys: (format, depth, training) where training is "regular" or "lowres".
# ---------------------------------------------------------------------------
TABLE7_ACCURACY: dict[tuple[str, int, str], float] = {
    ("full", 50, "regular"): 0.7516,
    ("full", 50, "lowres"): 0.5772,
    ("full", 34, "regular"): 0.7272,
    ("full", 34, "lowres"): 0.6476,
    ("161-png", 50, "regular"): 0.7092,
    ("161-png", 50, "lowres"): 0.7500,
    ("161-png", 34, "regular"): 0.6830,
    ("161-png", 34, "lowres"): 0.7250,
    ("161-jpeg-q95", 50, "regular"): 0.6893,
    ("161-jpeg-q95", 50, "lowres"): 0.7194,
    ("161-jpeg-q95", 34, "regular"): 0.6692,
    ("161-jpeg-q95", 34, "lowres"): 0.6979,
    ("161-jpeg-q75", 50, "regular"): 0.6402,
    ("161-jpeg-q75", 50, "lowres"): 0.6323,
    ("161-jpeg-q75", 34, "regular"): 0.6245,
    ("161-jpeg-q75", 34, "lowres"): 0.6245,
}

# ---------------------------------------------------------------------------
# Table 6: evaluation dataset statistics.
# ---------------------------------------------------------------------------
TABLE6_DATASETS: dict[str, dict[str, int]] = {
    "bike-bird": {"classes": 2, "train": 23_000, "test": 1_000},
    "animals-10": {"classes": 10, "train": 25_400, "test": 2_800},
    "birds-200": {"classes": 200, "train": 6_000, "test": 5_800},
    "imagenet": {"classes": 1_000, "train": 1_200_000, "test": 50_000},
}

# Headline end-to-end improvements (Abstract / Section 8).
MAX_IMAGE_SPEEDUP = 5.9
MAX_IMAGE_SPEEDUP_VS_RN50 = 2.2
MAX_VIDEO_SPEEDUP = 2.5

# Sub-linear scaling of CPU preprocessing with hyperthreaded vCPUs: 4 vCPUs
# are 2 physical cores, and Table 8's no-opt column scales ~1.7x per doubling.
VCPU_SCALING_EXPONENT = 0.78
