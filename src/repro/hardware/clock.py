"""A simulated clock for deterministic performance experiments.

The pipelined runtime engine executes real Python threads but charges
operation costs to this clock instead of wall time, so throughput results are
deterministic and independent of the host machine.  The clock also supports a
simple multi-resource model: each named resource (e.g. ``"cpu:0"``,
``"gpu:stream0"``) has its own timeline, and pipelined throughput emerges from
the per-resource busy times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HardwareError


@dataclass
class SimClock:
    """Tracks simulated busy time per resource.

    The engine charges each unit of work to one resource; the makespan of a
    pipelined run is the maximum busy time across resources (stages overlap),
    while a serial run is the sum.
    """

    busy_us: dict[str, float] = field(default_factory=dict)

    def charge(self, resource: str, microseconds: float) -> None:
        """Charge ``microseconds`` of busy time to ``resource``."""
        if microseconds < 0:
            raise HardwareError("cannot charge negative time")
        self.busy_us[resource] = self.busy_us.get(resource, 0.0) + microseconds

    def busy(self, resource: str) -> float:
        """Busy microseconds accumulated by ``resource``."""
        return self.busy_us.get(resource, 0.0)

    def makespan_pipelined(self) -> float:
        """Simulated elapsed time assuming all resources run concurrently."""
        if not self.busy_us:
            return 0.0
        return max(self.busy_us.values())

    def makespan_serial(self) -> float:
        """Simulated elapsed time assuming resources never overlap."""
        return sum(self.busy_us.values())

    def group_totals(self, prefix: str) -> float:
        """Total busy time over all resources whose name starts with ``prefix``."""
        return sum(v for k, v in self.busy_us.items() if k.startswith(prefix))

    def reset(self) -> None:
        """Clear all accumulated busy time."""
        self.busy_us.clear()
