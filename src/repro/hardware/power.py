"""Power modelling for end-to-end inference (Section 7).

The paper's observation: on the inference-optimized T4, preprocessing needs
roughly 2.2-2.3x the power of DNN execution for ResNet-50 (158 W of CPU versus
70 W of GPU), and the gap widens for smaller DNNs like ResNet-18.  This module
computes those comparisons from the device models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError
from repro.hardware.devices import CpuSpec, GpuSpec


@dataclass(frozen=True)
class PowerBreakdown:
    """Power required by preprocessing and DNN execution to sustain a rate.

    Attributes
    ----------
    target_throughput:
        The end-to-end throughput both sides must sustain (images/second).
    preproc_watts:
        CPU power needed for preprocessing to keep up.
    dnn_watts:
        Accelerator power needed for DNN execution to keep up.
    preproc_vcpus:
        Number of vCPUs needed for preprocessing to keep up.
    """

    target_throughput: float
    preproc_watts: float
    dnn_watts: float
    preproc_vcpus: float

    @property
    def power_ratio(self) -> float:
        """How many times more power preprocessing needs than DNN execution."""
        if self.dnn_watts <= 0:
            raise HardwareError("DNN power must be positive")
        return self.preproc_watts / self.dnn_watts


class PowerModel:
    """Computes power breakdowns for a (CPU, GPU) pair."""

    def __init__(self, cpu: CpuSpec, gpu: GpuSpec) -> None:
        self._cpu = cpu
        self._gpu = gpu

    def vcpus_to_sustain(self, preproc_per_vcpu_im_s: float,
                         target_throughput: float) -> float:
        """vCPUs needed for preprocessing to sustain ``target_throughput``.

        Inverts the sub-linear scaling model of :class:`CpuSpec`:
        throughput(n) = rate * n**k  =>  n = (target / rate) ** (1/k).
        """
        if preproc_per_vcpu_im_s <= 0:
            raise HardwareError("per-vCPU preprocessing rate must be positive")
        if target_throughput <= 0:
            raise HardwareError("target throughput must be positive")
        ratio = target_throughput / preproc_per_vcpu_im_s
        return ratio ** (1.0 / self._cpu.scaling_exponent)

    def breakdown(self, preproc_per_vcpu_im_s: float,
                  dnn_throughput: float) -> PowerBreakdown:
        """Power needed on each side to sustain the DNN's full throughput."""
        vcpus = self.vcpus_to_sustain(preproc_per_vcpu_im_s, dnn_throughput)
        return PowerBreakdown(
            target_throughput=dnn_throughput,
            preproc_watts=vcpus * self._cpu.watts_per_vcpu,
            dnn_watts=self._gpu.power_watts,
            preproc_vcpus=vcpus,
        )

    def hourly_cost_breakdown(self, preproc_per_vcpu_im_s: float,
                              dnn_throughput: float) -> dict[str, float]:
        """Hourly dollar cost of each side to sustain the DNN's throughput."""
        vcpus = self.vcpus_to_sustain(preproc_per_vcpu_im_s, dnn_throughput)
        return {
            "preproc_usd_per_hour": vcpus * self._cpu.hourly_price_per_vcpu,
            "dnn_usd_per_hour": self._gpu.hourly_price_usd,
            "preproc_vcpus": vcpus,
        }
