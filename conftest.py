"""Repository-root pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (offline environments without a working editable install).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))
