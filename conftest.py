"""Repository-root pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (offline environments without a working editable install), and
registers the ``--update-golden`` flag used by the golden plan-trace
regression tests (``tests/core/test_golden_plans.py``).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))


def pytest_addoption(parser):
    """Register ``--update-golden``: rewrite golden snapshots instead of
    comparing against them (run the golden tests, review the diff, commit)."""
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite golden plan-trace snapshots instead of asserting",
    )
