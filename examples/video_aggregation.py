#!/usr/bin/env python3
"""Video aggregation example: BlazeIt-style queries accelerated by Smol.

Scenario from the paper's aggregation example (Section 3.2): "what is the
average number of cars per frame?" over long fixed-camera videos, answered to
a requested error bound.  The query engine runs a cheap specialized NN over
every frame (cost dominated by video decoding) and samples frames for the
expensive target detector, using the specialized NN as a control variate.

The example contrasts the BlazeIt configuration (tiny specialized NN,
full-resolution video, plain runtime) with Smol's (more accurate specialized
NN, natively-present 480p rendition, optimized runtime), reproducing the
shape of Figure 9.

Run with:  python examples/video_aggregation.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines.blazeit import BlazeItBaseline, SmolVideoRunner
from repro.datasets.video import list_video_datasets
from repro.hardware.instance import get_instance
from repro.inference.perfmodel import PerformanceModel
from repro.utils.tables import Table


def main() -> None:
    perf = PerformanceModel(get_instance("g4dn.xlarge"))
    blazeit = BlazeItBaseline(perf)
    smol = SmolVideoRunner(perf)
    error_bounds = (0.01, 0.03, 0.05)

    table = Table("Aggregation query execution time (seconds)",
                  ["Video", "Error bound", "BlazeIt", "Smol", "Speedup",
                   "Smol estimate", "True mean"])
    for dataset in list_video_datasets():
        for error in error_bounds:
            blazeit_result = blazeit.run(dataset, error, seed=42)
            smol_result = smol.run(dataset, error, seed=42)
            table.add_row(
                dataset.name,
                error,
                round(blazeit_result.total_seconds, 1),
                round(smol_result.total_seconds, 1),
                f"{blazeit_result.total_seconds / smol_result.total_seconds:.2f}x",
                round(smol_result.estimate, 3),
                round(smol_result.true_mean, 3),
            )
    print(table)
    print()
    print("Where the speedup comes from (error bound 0.03, taipei):")
    dataset = next(d for d in list_video_datasets() if d.name == "taipei")
    blazeit_result = blazeit.run(dataset, 0.03, seed=42)
    smol_result = smol.run(dataset, 0.03, seed=42)
    print(f"  BlazeIt: cheap pass {blazeit_result.specialized_pass_seconds:8.1f}s"
          f" + target pass {blazeit_result.target_pass_seconds:8.1f}s"
          f" ({blazeit_result.target_invocations:,} target invocations)")
    print(f"  Smol:    cheap pass {smol_result.specialized_pass_seconds:8.1f}s"
          f" + target pass {smol_result.target_pass_seconds:8.1f}s"
          f" ({smol_result.target_invocations:,} target invocations)")
    print()
    print("Smol's cheaper pass comes from decoding the 480p rendition; its "
          "smaller target pass comes from the more accurate specialized NN "
          "reducing sampling variance.")


if __name__ == "__main__":
    main()
