#!/usr/bin/env python3
"""Smol-Store walkthrough: warm the cache, watch queries get faster.

The paper's core measurement is that preprocessing (decode + resize)
dominates end-to-end cost, so decoded renditions and the scores computed
from them are worth persisting.  This walkthrough (referenced from
``docs/store.md``) shows the store end to end:

1. Run an aggregation query **cold** -- every scan replica computes the
   specialized-NN score table from scratch.
2. Attach a :class:`RenditionStore` and run the same query: the first run
   write-throughs the table, the second run is a pure **warm** cache hit
   streaming chunks from disk -- and produces *bit-identical* results.
3. Materialize a decoded rendition sample and watch **cache-aware
   planning** price the materialized format cheaper (the decode stage
   collapses to a chunk read).
4. Inspect store stats and garbage-collect after an invalidation.

Run with:  python examples/store_warmup.py
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.query import QueryEngine, QuerySpec
from repro.store import RenditionStore

FRAME_LIMIT = 12_000
SPEC = QuerySpec.aggregate("taipei", error_bound=0.05)


def timed(engine: QueryEngine, label: str):
    start = time.perf_counter()
    result = engine.execute(SPEC, num_workers=2)
    elapsed = time.perf_counter() - start
    print(f"{label:>18}: {elapsed * 1e3:7.1f} ms wall, "
          f"estimate {result.estimate:.4f} +/- {result.ci_half_width:.4f}")
    return result, elapsed


def main() -> None:
    root = tempfile.mkdtemp(prefix="smol-store-example-")
    try:
        # 1. Cold, storeless: every replica recomputes the score table.
        cold_engine = QueryEngine(frame_limit=FRAME_LIMIT)
        cold, _ = timed(cold_engine, "cold (no store)")

        # 2. Store-backed: first run writes through, second run is warm.
        store = RenditionStore(root)
        engine = QueryEngine(frame_limit=FRAME_LIMIT, store=store)
        first, first_s = timed(engine, "cold (write-through)")
        warm, warm_s = timed(engine, "warm (cache hit)")
        assert (warm.estimate, warm.ci_half_width) == \
            (cold.estimate, cold.ci_half_width), "store changed an answer!"
        print(f"{'':>18}  warm results bit-identical to cold, "
              f"{first_s / warm_s:.1f}x faster than the write-through run")

        # 3. Cache-aware planning: materialize the chosen rendition and
        #    re-plan -- the planner now discounts its decode cost.
        before = engine.stage_plans(SPEC)
        engine.warm(SPEC, rendition_frames=32)
        after = engine.stage_plans(SPEC)
        print("\nplanned cheap-pass throughput, cold pricing:   "
              f"{before.cheap.throughput:10,.0f} im/s "
              f"({before.cheap.plan.describe()})")
        print("planned cheap-pass throughput, cache-aware:    "
              f"{after.cheap.throughput:10,.0f} im/s "
              f"({after.cheap.plan.describe()})")
        print(store.catalog(item="taipei").describe())

        # 4. Stats, invalidation, GC.  (min_age_seconds=0: single-process
        # demo with no concurrent writers, so reclaim immediately.)
        print(f"\n{store.stats().describe()}")
        dropped = store.invalidate("scores/")
        report = store.gc(min_age_seconds=0.0)
        print(f"\ninvalidated {dropped} score entries; gc removed "
              f"{report.removed_objects} chunks "
              f"({report.freed_bytes / 1e3:.0f} KB)")
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
