#!/usr/bin/env python3
"""Quickstart: plan and execute an end-to-end visual analytics query with Smol.

This example mirrors the system diagram of the paper (Figure 2): Smol takes a
set of candidate DNNs, the natively available input formats, and an accuracy
constraint; it produces the Pareto frontier of (throughput, accuracy) plans,
selects the best one under the constraint, and executes it in the pipelined
runtime (simulated on the calibrated g4dn.xlarge performance model).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Smol
from repro.utils.tables import Table


def main() -> None:
    # 1. Build Smol for the ImageNet-like workload on the paper's instance.
    smol = Smol(instance="g4dn.xlarge", dataset_name="imagenet")

    # 2. Inspect the Pareto frontier over DNNs x input formats.
    frontier = smol.pareto_frontier()
    table = Table("Pareto frontier (DNN x input format)",
                  ["Plan", "Throughput (im/s)", "Accuracy"])
    for estimate in frontier:
        table.add_row(estimate.plan.describe(), round(estimate.throughput),
                      f"{estimate.accuracy * 100:.2f}%")
    print(table)
    print()

    # 3. Select the best plan subject to an accuracy floor.
    best = smol.best_plan(accuracy_floor=0.74)
    print(f"Selected plan: {best.plan.describe()}")
    print(f"  estimated throughput: {best.throughput:,.0f} im/s")
    print(f"  estimated accuracy:   {best.accuracy * 100:.2f}%")
    print(f"  bottleneck:           {best.bottleneck}")
    print()

    # 4. Execute the plan in the pipelined runtime engine.
    result = smol.run(best, limit=8192)
    print(f"Simulated end-to-end run over {result.num_images} images:")
    print(f"  measured throughput:  {result.throughput:,.0f} im/s")
    stats = result.pipeline_stats
    print(f"  producer utilization: {stats.producer_utilization * 100:.0f}%")
    print(f"  stream utilization:   {stats.consumer_utilization * 100:.0f}%")

    # 5. Compare against the naive single-format baseline.
    naive = [e for e in smol.planner.score(smol.planner.generate())
             if e.plan.input_format.is_full_resolution
             and e.plan.primary_model.name == "resnet-50"][0]
    print()
    print(f"Naive ResNet-50 on full-resolution JPEG: {naive.throughput:,.0f} im/s")
    print(f"Speedup at no accuracy loss: {best.throughput / naive.throughput:.1f}x")


if __name__ == "__main__":
    main()
