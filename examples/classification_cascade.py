#!/usr/bin/env python3
"""Classification example: Tahoma-style cascades versus Smol's joint plans.

Scenario from the paper's classification example (Section 3.2): a binary
"is there a bird or a bike in this image?" query over a large photo corpus
stored with natively-present thumbnails.  The example compares:

* the naive baseline (standard ResNets on full-resolution JPEG),
* Tahoma-style cascades (specialized NNs filtering for a ResNet-50 target,
  fixed full-resolution input format),
* Smol (joint selection of the DNN and the input format, ROI decoding, and
  the optimized runtime).

It also runs a *functional* end-to-end check on real encoded data: a small
numpy classifier trained on the synthetic bike-bird dataset, executed through
the threaded runtime engine on JPEG-encoded images.

Run with:  python examples/classification_cascade.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import Smol
from repro.baselines.naive import NaiveResNetBaseline
from repro.baselines.tahoma import TahomaBaseline
from repro.datasets.images import load_image_dataset
from repro.inference.engine import SmolRuntimeEngine
from repro.inference.perfmodel import EngineConfig, PerformanceModel
from repro.hardware.instance import get_instance
from repro.nn.model import build_mini_resnet
from repro.nn.train import Trainer, TrainingConfig
from repro.preprocessing.dag import PreprocessingDAG
from repro.preprocessing.ops import (
    CenterCropOp,
    ChannelReorderOp,
    ConvertDtypeOp,
    NormalizeOp,
    ResizeOp,
)
from repro.utils.tables import Table


def plan_comparison() -> None:
    """Compare planner output for the three systems on bike-bird."""
    instance = get_instance("g4dn.xlarge")
    perf = PerformanceModel(instance)
    dataset_name = "bike-bird"

    table = Table("bike-bird: accuracy/throughput trade-offs",
                  ["System", "Configuration", "Throughput (im/s)", "Accuracy"])

    for estimate in NaiveResNetBaseline(perf, dataset_name=dataset_name).evaluate():
        table.add_row("naive", estimate.plan.describe(),
                      round(estimate.throughput),
                      f"{estimate.accuracy * 100:.2f}%")

    tahoma = TahomaBaseline(perf, dataset_name=dataset_name, num_specialized=4)
    for evaluation in tahoma.pareto_frontier():
        table.add_row("tahoma",
                      f"{evaluation.proxy_name} -> {evaluation.target_name} "
                      f"(alpha={evaluation.pass_through_rate})",
                      round(evaluation.throughput),
                      f"{evaluation.accuracy * 100:.2f}%")

    smol = Smol(dataset_name=dataset_name)
    for estimate in smol.pareto_frontier():
        table.add_row("smol", estimate.plan.describe(),
                      round(estimate.throughput),
                      f"{estimate.accuracy * 100:.2f}%")
    print(table)

    best = smol.best_plan(accuracy_floor=0.99)
    print()
    print(f"Smol plan meeting a 99% accuracy floor: {best.plan.describe()} "
          f"at {best.throughput:,.0f} im/s")


def functional_demo() -> None:
    """Train a tiny classifier and run it on real encoded renditions."""
    dataset = load_image_dataset("bike-bird")
    print()
    print("Training a small classifier on the synthetic bike-bird dataset ...")
    train_x, train_y = dataset.training_arrays(samples_per_class=14)
    crops = train_x[:, :, 16:48, 16:48]
    model = build_mini_resnet(10, num_classes=dataset.synthetic_classes,
                              input_size=32, seed=3)
    Trainer(model, TrainingConfig(epochs=4, batch_size=8, learning_rate=0.08,
                                  flip_augment=False)).fit(crops, train_y)

    print("Encoding a sample of images into full-resolution JPEG and 161-px "
          "PNG renditions ...")
    store = dataset.build_store(images_per_class=4)
    asset_ids = store.asset_ids()
    labels = np.array([store.rendition(a, "full-jpeg").label for a in asset_ids])

    pipeline = PreprocessingDAG.from_ops([
        ResizeOp(short_side=36),
        CenterCropOp(size=32),
        ConvertDtypeOp("float32"),
        NormalizeOp(mean=(0.0, 0.0, 0.0), std=(1.0, 1.0, 1.0)),
        ChannelReorderOp(),
    ])
    engine = SmolRuntimeEngine(EngineConfig(num_producers=2, batch_size=4,
                                            queue_capacity=2))
    for rendition in ("full-jpeg", "161-png"):
        result = engine.run_functional(
            decode_fn=lambda i, r=rendition: store.decode(asset_ids[i], r).pixels,
            preprocessing=pipeline,
            model=model,
            num_images=len(asset_ids),
        )
        accuracy = float((result.predictions == labels).mean())
        print(f"  {rendition:10s}: accuracy {accuracy * 100:5.1f}% over "
              f"{len(asset_ids)} encoded images "
              f"(buffer reuse {result.memory_stats.reuse_fraction * 100:.0f}%)")


def main() -> None:
    plan_comparison()
    functional_demo()


if __name__ == "__main__":
    main()
