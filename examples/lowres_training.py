#!/usr/bin/env python3
"""Low-resolution-aware training example (Section 5.3).

The paper's key accuracy technique: when reading natively-present
low-resolution data, a DNN trained only on full-resolution inputs loses
accuracy; fine-tuning it with a low-resolution round-trip augmentation
(downsample to the target resolution, upsample back) recovers most of that
accuracy for a ~30% training-time overhead.

This example demonstrates the effect end-to-end with the numpy trainer on the
synthetic animals-10 dataset, then prints the calibrated ImageNet accuracy
surface (Table 7) used by the planner at paper scale.

Run with:  python examples/lowres_training.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.codecs.formats import (
    FULL_JPEG,
    THUMB_JPEG_161_Q75,
    THUMB_JPEG_161_Q95,
    THUMB_PNG_161,
)
from repro.core.accuracy import AccuracyEstimator
from repro.core.training import LowResolutionTrainer
from repro.datasets.images import load_image_dataset
from repro.nn.train import TrainingConfig
from repro.nn.zoo import resnet_profile
from repro.utils.tables import Table


def functional_demo() -> None:
    """Train, degrade, and fine-tune a small model on synthetic data."""
    dataset = load_image_dataset("animals-10")
    print(f"Dataset: {dataset.name} ({dataset.synthetic_classes} synthetic "
          f"classes standing in for {dataset.num_classes})")
    train_x, train_y = dataset.training_arrays(samples_per_class=12)
    test_x, test_y = dataset.test_arrays(samples_per_class=5)

    driver = LowResolutionTrainer(
        num_classes=dataset.synthetic_classes,
        input_size=dataset.image_size,
        base_config=TrainingConfig(epochs=4, batch_size=12, learning_rate=0.08,
                                   flip_augment=False),
        finetune_epoch_fraction=0.5,
    )
    print("Training the full-resolution baseline ...")
    model, full_accuracy = driver.train_baseline(18, train_x, train_y,
                                                 test_x, test_y)
    print(f"  full-resolution validation accuracy: {full_accuracy * 100:.1f}%")

    target_short_side = dataset.image_size // 3
    print(f"Fine-tuning with {target_short_side}px low-resolution augmentation "
          f"(~{driver.training_overhead(1) * 100:.0f}% extra training) ...")
    result = driver.finetune_lowres(model, target_short_side, train_x, train_y,
                                    test_x, test_y)
    print(f"  accuracy on degraded inputs before fine-tune: "
          f"{result.baseline_accuracy * 100:.1f}%")
    print(f"  accuracy on degraded inputs after fine-tune:  "
          f"{result.finetuned_accuracy * 100:.1f}%")
    print(f"  recovered: {result.accuracy_recovered * 100:+.1f} points")


def calibrated_surface() -> None:
    """Print the Table 7 accuracy surface the planner uses at paper scale."""
    estimator = AccuracyEstimator("imagenet")
    table = Table("Calibrated ImageNet accuracy by format and training (Table 7)",
                  ["Format", "RN-50 regular", "RN-50 low-res", "RN-34 regular",
                   "RN-34 low-res"])
    for label, fmt in (("Full resolution", FULL_JPEG),
                       ("161 PNG", THUMB_PNG_161),
                       ("161 JPEG q=95", THUMB_JPEG_161_Q95),
                       ("161 JPEG q=75", THUMB_JPEG_161_Q75)):
        row = [label]
        for depth in (50, 34):
            for training in ("regular", "lowres"):
                accuracy = estimator.calibrated(resnet_profile(depth), fmt,
                                                training=training).accuracy
                row.append(f"{accuracy * 100:.2f}%")
        table.add_row(*row)
    print()
    print(table)
    print()
    print("Reading: with low-resolution-aware training, ResNet-50 on 161px PNG "
          "thumbnails matches full-resolution accuracy while decoding ~4x "
          "faster -- the combination the planner exploits.")


def main() -> None:
    functional_demo()
    calibrated_surface()


if __name__ == "__main__":
    main()
