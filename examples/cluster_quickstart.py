#!/usr/bin/env python3
"""Smol-Cluster walkthrough: shard, survive failures, autoscale.

Smol-Serve (see ``online_serving.py``) executes every micro-batch on one
session in one process.  This walkthrough shows the cluster runtime that
lifts that cap:

1. Build a replica pool: a worker factory wrapping plan-warmed sessions,
   managed by a :class:`Dispatcher` with consistent-hash routing.
2. Submit work directly to the dispatcher and read its provenance
   (which replica served what, after how many attempts).
3. Kill a replica mid-run and watch failover finish every request.
4. Let the queue-depth autoscaler grow and shrink the pool.
5. Shard an offline labeled corpus across the pool and verify the merged
   aggregates match a single-process run exactly.
6. Plug the same dispatcher into :class:`SmolServer` as a drop-in backend.

Run with:  python examples/cluster_quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import (
    AutoscalePolicy,
    Autoscaler,
    Dispatcher,
    InferenceRequest,
    LabeledExample,
    SessionSpec,
    ShardedCorpusRunner,
    SmolServer,
    ThreadWorker,
)
from repro.cluster import run_single_process

NUM_CLASSES = 8
SPEC = SessionSpec(model_name="resnet-18", format_name="161-jpeg-q75",
                   num_classes=NUM_CLASSES)


def worker_factory(worker_id: str, results) -> ThreadWorker:
    """One warmed simulated replica per call (all on the same plan)."""
    return ThreadWorker(worker_id, SPEC.build(), results)


def main() -> None:
    # 1-2. A four-replica pool with consistent-hash routing: the same image
    #      id lands on the same replica while it stays healthy.
    with Dispatcher(worker_factory, num_workers=4,
                    router="consistent-hash") as cluster:
        futures = [cluster.submit([InferenceRequest(image_id=f"img-{i}")])
                   for i in range(8)]
        for future in futures[:3]:
            result = future.result(timeout=10.0)
            print(f"prediction {result.predictions[0]} from "
                  f"{result.worker_id} (attempt {result.attempts})")
        print()

        # 3. Failover: kill one replica while 200 requests are in flight.
        futures = [cluster.submit([InferenceRequest(image_id=f"img-{i}")])
                   for i in range(200)]
        victim = cluster.live_workers()[0]
        cluster.worker(victim).kill()
        results = [future.result(timeout=10.0) for future in futures]
        print(f"killed {victim}; all {len(results)} requests still "
              "completed")
        print(cluster.stats().describe())
        print()

    # 4. Autoscaling: a one-replica pool under a backlog grows toward the
    #    max bound, then shrinks once the queue drains.
    with Dispatcher(worker_factory, num_workers=1,
                    monitor_interval_s=0) as cluster:
        autoscaler = Autoscaler(cluster, AutoscalePolicy(
            min_workers=1, max_workers=4,
            scale_up_depth=2.0, scale_down_depth=0.25, cooldown_s=0.0,
        ))
        futures = [cluster.submit([InferenceRequest(image_id=f"x-{i}")])
                   for i in range(64)]
        backlog = cluster.backlog()
        grew = autoscaler.evaluate()
        print(f"backlog {backlog} -> scale decision {grew:+d} "
              f"({len(cluster.live_workers())} live)")
        for future in futures:
            future.result(timeout=10.0)
        cluster.drain()
        shrank = autoscaler.evaluate()
        print(f"drained -> scale decision {shrank:+d} "
              f"({len(cluster.live_workers())} live)")
        print()

    # 5. Sharded offline corpus: counts, means, and the confusion matrix
    #    merge to exactly the single-process numbers.
    examples = [LabeledExample(image_id=f"img-{i}", label=i % NUM_CLASSES)
                for i in range(2000)]
    runner = ShardedCorpusRunner(worker_factory, num_workers=4,
                                 num_classes=NUM_CLASSES, batch_size=64)
    sharded = runner.run(examples)
    single = run_single_process(examples, SPEC.build(),
                                num_classes=NUM_CLASSES, batch_size=64)
    assert np.array_equal(sharded.total.confusion, single.total.confusion)
    assert sharded.total.correct == single.total.correct
    print(sharded.describe())
    print(f"single-process makespan: {single.makespan_seconds:.3f}s -> "
          f"{sharded.makespan_seconds:.3f}s sharded "
          f"({single.makespan_seconds / sharded.makespan_seconds:.1f}x)")
    print()

    # 6. The dispatcher as a SmolServer backend: same submit() -> Future
    #    API, micro-batches now fan out across the pool.
    with Dispatcher(worker_factory, num_workers=4) as cluster:
        with SmolServer(cluster=cluster, cache_capacity=256) as server:
            futures = [server.submit(InferenceRequest(image_id=f"img-{i % 16}"))
                       for i in range(200)]
            responses = [future.result(timeout=10.0) for future in futures]
            stats = server.stats()
        print(f"served {len(responses)} requests through the cluster "
              f"({stats.cache_hits} cache hits)")
        print(stats.latency.describe())


if __name__ == "__main__":
    main()
