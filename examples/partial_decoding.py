#!/usr/bin/env python3
"""Partial and reduced-fidelity decoding example (Section 6.4).

Demonstrates, on real encoded data produced by the numpy codecs:

* macroblock ROI decoding of JPEG images -- only the blocks covering the
  central-crop region of interest are entropy-decoded and inverse-transformed;
* early-stopping decode of PNG images -- decoding stops after the raster rows
  the ROI needs;
* reduced-fidelity video decoding -- the deblocking filter is skipped for a
  cheaper decode with a small fidelity loss.

Run with:  python examples/partial_decoding.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.codecs.jpeg import JpegCodec
from repro.codecs.png import PngCodec
from repro.codecs.roi import central_crop_roi
from repro.codecs.video import VideoCodec
from repro.datasets.synthetic import SyntheticImageGenerator
from repro.datasets.video import load_video_dataset
from repro.utils.timing import wall_timer


def jpeg_roi_demo() -> None:
    generator = SyntheticImageGenerator(num_classes=2, image_size=256, seed=1)
    image = generator.generate_image(0, 0)
    codec = JpegCodec(quality=90)
    encoded = codec.encode(image)
    roi = central_crop_roi(image.resolution, crop_size=112, resize_short_side=128)
    print("JPEG macroblock ROI decoding")
    print(f"  image: {image.resolution}, encoded {encoded.compressed_bytes:,} bytes")
    with wall_timer() as full_time:
        codec.decode(encoded)
    with wall_timer() as roi_time:
        partial = codec.decode_roi(encoded, roi)
    fraction = codec.decoded_block_fraction(encoded, roi)
    print(f"  ROI covers {fraction * 100:.0f}% of macroblocks")
    print(f"  full decode:  {full_time['seconds'] * 1e3:7.1f} ms")
    print(f"  ROI decode:   {roi_time['seconds'] * 1e3:7.1f} ms "
          f"({partial.width}x{partial.height} pixels returned)")


def png_early_stop_demo() -> None:
    generator = SyntheticImageGenerator(num_classes=2, image_size=256, seed=2)
    image = generator.generate_image(1, 0)
    codec = PngCodec(strip_rows=16)
    encoded = codec.encode(image)
    roi = central_crop_roi(image.resolution, crop_size=112, resize_short_side=128)
    print()
    print("PNG early-stopping decode")
    print(f"  rows required for the central crop: {roi.bottom} / {image.height}")
    with wall_timer() as full_time:
        codec.decode(encoded)
    with wall_timer() as prefix_time:
        codec.decode_rows(encoded, roi.bottom)
    print(f"  full decode:   {full_time['seconds'] * 1e3:7.1f} ms")
    print(f"  prefix decode: {prefix_time['seconds'] * 1e3:7.1f} ms")


def deblocking_demo() -> None:
    dataset = load_video_dataset("amsterdam")
    frames = dataset.render_frames(6)
    codec = VideoCodec(quality=45, gop_size=3)
    encoded = codec.encode(frames)
    print()
    print("Reduced-fidelity video decoding (deblocking filter off)")
    with wall_timer() as with_filter:
        filtered = codec.decode(encoded, deblocking=True)
    with wall_timer() as without_filter:
        unfiltered = codec.decode(encoded, deblocking=False)
    psnr_with = float(np.mean([orig.psnr(dec) for orig, dec in zip(frames,
                                                                   filtered)]))
    psnr_without = float(np.mean([orig.psnr(dec) for orig, dec in
                                  zip(frames, unfiltered)]))
    print(f"  decode with deblocking:    {with_filter['seconds'] * 1e3:7.1f} ms, "
          f"PSNR {psnr_with:.1f} dB")
    print(f"  decode without deblocking: {without_filter['seconds'] * 1e3:7.1f} ms, "
          f"PSNR {psnr_without:.1f} dB")
    print("  Smol profiles the accuracy impact of the cheaper decode and keeps "
          "it only when the specialized/target NNs tolerate it.")


def main() -> None:
    jpeg_roi_demo()
    png_early_stop_demo()
    deblocking_demo()


if __name__ == "__main__":
    main()
