#!/usr/bin/env python3
"""Online serving walkthrough: plan once, serve forever, swap plans live.

The offline examples plan a query and blast a fixed corpus through the
engine.  This walkthrough shows the online path added by Smol-Serve:

1. Plan with the usual Smol planner.
2. Pin the selected plan in a warmed serving session.
3. Stand up a :class:`SmolServer` and submit individual requests
   (``submit() -> Future``), observing micro-batching and the prediction
   cache.
4. Drive the server with an open-loop Poisson load generator and read the
   p50/p95/p99 latency scorecard.
5. Hot-swap to a different plan (as the planner would after a constraint
   change) without dropping a request.

Run with:  python examples/online_serving.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import BatchPolicy, InferenceRequest, LoadGenerator, Smol, SmolServer
from repro.datasets.synthetic import SyntheticImageGenerator
from repro.serving import functional_session_for_plan


def main() -> None:
    # 1. Plan: highest-throughput plan meeting a 70% accuracy floor, plus a
    #    stricter alternative the server will hot-swap to later.
    smol = Smol(instance="g4dn.xlarge", dataset_name="imagenet")
    fast = smol.best_plan(accuracy_floor=0.70)
    accurate = smol.best_plan(accuracy_floor=0.75)
    print(f"fast plan:     {fast.plan.describe()}")
    print(f"accurate plan: {accurate.plan.describe()}")
    print()

    # 2. Pin the fast plan in a warmed functional session (real pixels
    #    through a real preprocessing DAG and numpy model).
    session = functional_session_for_plan(fast)

    # A small population of images; repeats are what the cache exploits.
    generator = SyntheticImageGenerator(num_classes=2, image_size=48, seed=5)
    pool = [(f"img-{i}", generator.generate_image(i % 2, i).pixels)
            for i in range(24)]

    with SmolServer(session, policy=BatchPolicy.latency(),
                    cache_capacity=512) as server:
        # 3. Submit a few requests by hand and inspect the responses.
        futures = [
            server.submit(InferenceRequest(image_id=image_id, payload=payload,
                                           format_name=fast.plan.input_format.name))
            for image_id, payload in pool[:8]
        ]
        for future in futures:
            response = future.result(timeout=30.0)
            print(f"  {response.image_id}: class {response.prediction} "
                  f"in {response.latency_s * 1000:.1f}ms "
                  f"(batch of {response.batch_size})")
        print()

        # Resubmit the same images: answered from the prediction cache.
        cached = [
            server.submit(InferenceRequest(image_id=image_id, payload=payload,
                                           format_name=fast.plan.input_format.name))
            for image_id, payload in pool[:8]
        ]
        hits = sum(1 for f in cached if f.result(timeout=30.0).cached)
        print(f"resubmitted 8 requests: {hits} served from cache")
        print()

        # 4. Open-loop Poisson load for half a second.
        generator = LoadGenerator(server, pool,
                                  format_name=fast.plan.input_format.name,
                                  seed=11)
        report = generator.run(rate_per_s=300.0, duration_s=0.5,
                               pattern="poisson")
        print(report.describe())
        print()

        # 5. Hot-swap to the more accurate plan; traffic keeps flowing.
        server.swap_plan(functional_session_for_plan(accurate))
        report = generator.run(rate_per_s=300.0, duration_s=0.5,
                               pattern="poisson")
        print(f"after swapping to {accurate.plan.describe()}:")
        print(report.describe())
        print()
        print(server.stats().describe())


if __name__ == "__main__":
    main()
