#!/usr/bin/env python3
"""Smol-Adapt walkthrough: a server that replans itself out of a slowdown.

The offline planner picks a plan once, from calibrated constants.  This
walkthrough (referenced from ``docs/adaptive.md``) shows what happens when
the world then moves -- and how the adaptive loop reacts, step by step:

1. Serve two waves of traffic on the planner's cold choice: telemetry
   reports per-stage costs, the calibrator's scales sit at 1.0, the drift
   detector stays quiet.
2. Inject a 4x decode slowdown for the live plan's rendition and warm a
   decoded rendition of a *different* format in the store.
3. Watch the loop fire: the calibrator folds the slow decode observations
   into the cost model, the store subscription flags the catalog change,
   the replanner re-prices every candidate against the observed world and
   the live catalog, and the server hot-swaps onto the recovered plan.
4. Compare against a frozen-plan run through the identical schedule: it
   stays pinned at roughly 29% of its pre-drift throughput.

Run with:  python examples/adaptive_serving.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.adapt import (                                      # noqa: E402
    ServingDriftConfig,
    run_serving_drift_scenario,
)


def main() -> None:
    config = ServingDriftConfig(drift_factor=4.0, wave_requests=192)

    print("=== frozen plan (no adaptation) " + "=" * 34)
    frozen = run_serving_drift_scenario(False, config)
    print(frozen.describe())
    print()

    print("=== adaptive (telemetry -> calibrate -> drift -> swap) " + "=" * 11)
    adaptive = run_serving_drift_scenario(True, config)
    print(adaptive.describe())
    print()

    print("wave-by-wave (modelled images/second):")
    print(f"  {'wave':>4}  {'frozen':>8}  {'adaptive':>8}  decision")
    for f, a in zip(frozen.phases, adaptive.phases):
        print(f"  {f.index:>4}  {f.throughput:>8,.0f}  "
              f"{a.throughput:>8,.0f}  {a.decision or '-'}")
    print()
    print(f"frozen recovery:   {frozen.recovery * 100:5.1f}%")
    print(f"adaptive recovery: {adaptive.recovery * 100:5.1f}% "
          f"after {adaptive.swaps} hot-swap(s): "
          f"{adaptive.initial_plan_key} -> {adaptive.final_plan_key}")


if __name__ == "__main__":
    main()
